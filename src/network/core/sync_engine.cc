#include "network/core/sync_engine.hh"

#include <algorithm>
#include <sstream>

#include "common/logging.hh"
#include "common/string_util.hh"
#include "switchsim/switch_model.hh"

namespace damq {
namespace core {

TrafficSource
SyncEngine::makeSource(const Topology &topology,
                       const SyncConfig &config)
{
    damq_assert(config.burstiness >= 1.0,
                "burstiness must be at least 1");
    if (config.burstiness > 1.0 &&
        config.offeredLoad * config.burstiness > 1.0) {
        damq_fatal("offeredLoad * burstiness must not exceed 1 "
                   "(peak rate is a probability); got ",
                   config.offeredLoad * config.burstiness);
    }
    return TrafficSource(
        makeTrafficPattern(config.traffic, topology.numEndpoints(),
                           config.hotSpotFraction,
                           config.transposeSide, config.common.seed),
        topology.numEndpoints(), config.offeredLoad,
        config.burstiness, config.meanBurstCycles);
}

SyncEngine::SyncEngine(const Topology &topology,
                       const SyncConfig &config)
    : SimEngine(config.common), topo(topology), cfg(config),
      vcAlloc(topology, config.common.vcPolicy, config.common.vcs),
      traffic(makeSource(topology, config)),
      sourceQueues(topology.numEndpoints()),
      nextSeq(topology.numEndpoints(), 0),
      perSourceLatency(topology.numEndpoints())
{
    const std::uint32_t n = topo.numSwitches();
    switches.reserve(n);
    for (SwitchId sw = 0; sw < n; ++sw) {
        switches.push_back(makeSwitchUnit(
            cfg.placement, topo.portsPerSwitch(), cfg.bufferType,
            cfg.slotsPerBuffer, cfg.arbitration,
            cfg.staleThreshold, cfg.common.vcs));
        // Registration order defines both the fault-plan component
        // handles and the watchdog's stable snapshot order, and
        // must equal the topology's flat SwitchId order.
        const std::size_t comp =
            injector.addComponent(topo.switchName(sw));
        const std::size_t wcomp =
            watchdog.addComponent(topo.switchName(sw));
        damq_assert(comp == sw && wcomp == comp,
                    "component registration order broken");
    }
    prevTransmitted.assign(n, 0);

    // Size every per-cycle scratch structure up front: at most one
    // departure per switch output exists at once, so these bounds
    // hold for the simulation's whole lifetime.
    moveScratch.reserve(static_cast<std::size_t>(n) *
                        topo.portsPerSwitch());
    sentScratch.reserve(topo.portsPerSwitch());
    pendingScratch.reserve(topo.numEndpoints());

    initTelemetry();
}

void
SyncEngine::configureTelemetry(obs::Telemetry &t)
{
    // Trace row layout is topology-defined: one process per
    // pipeline stage (Omega) or per node (grids), plus a
    // pseudo-process for the endpoints.
    endpointPid = topo.numTraceProcesses();
    obs::PacketTracer *tracer = t.trace();
    if (tracer) {
        for (std::int64_t pid = 0; pid < endpointPid; ++pid)
            tracer->setProcessName(pid, topo.traceProcessName(pid));
        tracer->setProcessName(endpointPid,
                               topo.endpointProcessName());
    }

    for (SwitchId sw = 0; sw < topo.numSwitches(); ++sw) {
        switches[sw]->forEachBuffer(
            [&](PortId port, BufferModel &buffer) {
                std::int64_t pid = 0;
                std::int64_t tid = 0;
                topo.traceRow(sw, port, pid, tid);
                t.attachProbe(buffer, topo.probeName(sw, port), pid,
                              tid);
                if (tracer)
                    tracer->setThreadName(
                        pid, tid, topo.traceThreadName(sw, port));
            });
    }

    // The time series tracks the lifetime counters plus the live
    // occupancy; gauges register on the first sample (the hooks run
    // before the row is taken) and are refreshed only when due.
    t.addSampleHook([this]() {
        obs::MetricRegistry &m = telemetry->metrics();
        m.gauge("net.generated")
            .set(static_cast<double>(counters.generated));
        m.gauge("net.injected")
            .set(static_cast<double>(counters.injected));
        m.gauge("net.delivered")
            .set(static_cast<double>(counters.delivered));
        m.gauge("net.discarded")
            .set(static_cast<double>(counters.discarded()));
        m.gauge("net.faultDropped")
            .set(static_cast<double>(counters.faultDropped));
        m.gauge("net.inFlight")
            .set(static_cast<double>(packetsInFlight()));
        m.gauge("net.sourceQueued")
            .set(static_cast<double>(packetsAtSources()));

        std::uint64_t grants = 0;
        std::uint64_t stale = 0;
        if (cfg.placement == BufferPlacement::Input) {
            for (const auto &sw : switches) {
                const auto &stats =
                    static_cast<const SwitchModel &>(*sw)
                        .arbiterStats();
                grants += stats.grantsIssued;
                stale += stats.staleOverrides;
            }
        }
        m.gauge("arb.grants").set(static_cast<double>(grants));
        m.gauge("arb.staleOverrides")
            .set(static_cast<double>(stale));
    });
}

void
SyncEngine::onMeasuredCycle()
{
    std::uint64_t queued = 0;
    for (const auto &q : sourceQueues)
        queued += q.size();
    sourceQueueSamples.add(
        static_cast<double>(queued) /
        static_cast<double>(topo.numEndpoints()));

    std::uint64_t buffered = 0;
    for (const auto &sw : switches)
        buffered += sw->totalPackets();
    switchOccupancySamples.add(
        static_cast<double>(buffered) /
        static_cast<double>(switches.size()));
}

void
SyncEngine::phaseAdvance()
{
    // Steps 1+2: every switch decides and pops its departures.
    // Back-pressure tests only look *downstream*, and deliveries
    // are deferred until every switch has transmitted, so the
    // decisions are made against a consistent start-of-cycle
    // snapshot even though the pops are interleaved.
    //
    // With per-input buffers, each downstream buffer has exactly
    // one upstream writer, so a start-of-cycle space check cannot
    // be invalidated.  The central pool and output queues are
    // shared across inputs, and several switches can commit into
    // the same downstream structure in one cycle — so the blocking
    // back-pressure test also counts the arrivals already granted
    // this cycle.  (Two outputs of one switch can never reach the
    // same downstream switch in the supported topologies, so
    // accounting between transmit() calls is exact.)
    const bool shared_structures =
        cfg.placement != BufferPlacement::Input;
    std::unordered_map<std::uint64_t, std::uint32_t> &pending =
        pendingScratch;
    pending.clear();
    auto pending_key = [&](SwitchId sw, PortId out) {
        const std::uint64_t structure =
            cfg.placement == BufferPlacement::Output ? out : 0;
        return static_cast<std::uint64_t>(sw) *
                   topo.portsPerSwitch() +
               structure;
    };

    std::vector<Move> &moves = moveScratch;
    moves.clear();
    for (SwitchId sw = 0; sw < topo.numSwitches(); ++sw) {
        // A stuck arbiter issues no grants at all this cycle.
        if (injector.arbiterStuck(sw, currentCycle))
            continue;
        auto can_send = [&, sw](PortId, QueueKey out_key,
                                const Packet &pkt) {
            if (cfg.protocol == FlowControl::Discarding)
                return true; // transmit blindly; receiver may drop
            const HopTarget next = topo.hop(sw, out_key.out);
            if (next.toSink)
                return true; // sinks always accept
            // A delayed credit makes the downstream switch report
            // "full" even when space exists: transfers stall but
            // no packet is lost.
            if (injector.creditDelayed(next.switchId, currentCycle))
                return false;
            const PortId next_out =
                topo.route(next.switchId, pkt.dest);
            // The VC the packet will occupy on this link decides
            // which downstream queue must have room.
            const VcId next_vc =
                vcAlloc.linkVc(pkt, sw, out_key.out);
            std::uint32_t held = 0;
            if (shared_structures) {
                const auto found = pending.find(
                    pending_key(next.switchId, next_out));
                if (found != pending.end())
                    held = found->second;
            }
            return switches[next.switchId]->canAccept(
                next.inputPort, QueueKey{next_out, next_vc},
                pkt.lengthSlots + held);
        };
        // When a grant-legality audit is due, split the
        // input-buffered switch's transmit into arbitrate + pop so
        // the schedule itself can be checked.
        std::vector<Packet> &sent = sentScratch;
        if (cfg.placement == BufferPlacement::Input &&
            auditor.due(currentCycle)) {
            auto *sm =
                static_cast<SwitchModel *>(switches[sw].get());
            const GrantList grants = sm->arbitrate(can_send);
            auditor.record(
                currentCycle, injector.componentName(sw),
                auditGrantLegality(
                    grants, topo.portsPerSwitch(),
                    topo.portsPerSwitch(),
                    sm->buffer(0).maxReadsPerCycle(),
                    cfg.common.vcs));
            sent = sm->popGranted(grants);
        } else {
            switches[sw]->transmitInto(can_send, sent);
        }
        for (Packet &pkt : sent) {
            if (shared_structures) {
                const HopTarget next = topo.hop(sw, pkt.outPort);
                if (!next.toSink) {
                    const PortId next_out =
                        topo.route(next.switchId, pkt.dest);
                    pending[pending_key(next.switchId, next_out)] +=
                        pkt.lengthSlots;
                }
            }
            moves.push_back(Move{sw, pkt});
        }
    }

    for (Move &move : moves) {
        // Link faults: the packet can vanish or arrive with a
        // flipped header bit.  The receiving side verifies the
        // sealed checksum before using any header field, so a
        // corrupted packet is detected and discarded — never
        // misrouted or silently delivered.
        if (injector.dropOnLink(move.sw, currentCycle,
                                move.packet)) {
            ++counters.faultDropped;
            traceLoss(move.packet, "drop@fault");
            continue;
        }
        injector.corruptOnLink(move.sw, currentCycle, move.packet);
        if (injector.enabled() && !headerIntact(move.packet)) {
            injector.recordDetectedCorruption();
            ++counters.faultDropped;
            traceLoss(move.packet, "drop@corrupt");
            continue;
        }
        const HopTarget next = topo.hop(move.sw, move.packet.outPort);
        if (next.toSink) {
            deliver(move.packet, next.sink);
            continue;
        }
        Packet pkt = move.packet;
        // The link VC must be computed from the packet's state at
        // the switch it left, before vc/inPort are rewritten for
        // the next hop.
        pkt.vc =
            vcAlloc.linkVc(move.packet, move.sw, move.packet.outPort);
        pkt.inPort = next.inputPort;
        pkt.outPort = topo.route(next.switchId, pkt.dest);
        ++pkt.hops;
        SwitchUnit &target = *switches[next.switchId];
        const bool accepted = target.tryReceive(next.inputPort, pkt);
        if (!accepted) {
            damq_assert(cfg.protocol == FlowControl::Discarding,
                        "blocking protocol transmitted into a full "
                        "buffer — back-pressure check is broken");
            ++counters.discardedInternal;
            traceLoss(pkt, "drop@internal");
        }
    }
}

void
SyncEngine::traceLoss(const Packet &pkt, const char *why)
{
    if (!telemetry)
        return;
    obs::PacketTracer *tr = telemetry->trace();
    if (!tr)
        return;
    tr->instant(why, "pkt", currentCycle, endpointPid, pkt.source);
    tr->asyncEnd("pkt", "pkt", pkt.id, currentCycle, endpointPid,
                 pkt.source);
}

void
SyncEngine::phaseInject()
{
    for (NodeId src = 0; src < topo.numEndpoints(); ++src) {
        // Drain mode makes no PRNG draws: generation is skipped
        // entirely, but blocked source queues keep retrying below.
        if (!draining && traffic.shouldGenerate(src, rng)) {
            Packet pkt;
            pkt.id = nextPacketId++;
            pkt.source = src;
            pkt.dest = traffic.destinationFor(src, rng);
            pkt.lengthSlots = 1;
            pkt.generatedAt = currentCycle;
            pkt.seq = nextSeq[src]++;
            sealHeader(pkt);
            ++counters.generated;
            if (telemetry) {
                if (obs::PacketTracer *tr = telemetry->trace())
                    tr->instant("gen", "pkt", currentCycle,
                                endpointPid, src);
            }

            if (cfg.protocol == FlowControl::Blocking) {
                sourceQueues[src].push_back(pkt);
            } else if (!tryInject(src, pkt)) {
                ++counters.discardedAtEntry;
                if (telemetry) {
                    if (obs::PacketTracer *tr = telemetry->trace())
                        tr->instant("drop@entry", "pkt",
                                    currentCycle, endpointPid, src);
                }
            }
        }

        if (cfg.protocol == FlowControl::Blocking &&
            !sourceQueues[src].empty()) {
            // The link from the source delivers at most one packet
            // per cycle, and only the head may try.
            if (tryInject(src, sourceQueues[src].front()))
                sourceQueues[src].pop_front();
        }
    }
}

bool
SyncEngine::tryInject(NodeId src, Packet pkt)
{
    const InjectPoint entry = topo.injectionPoint(src);
    pkt.outPort = topo.route(entry.switchId, pkt.dest);
    pkt.inPort = entry.port; // injected packets start on VC 0
    pkt.injectedAt = currentCycle;
    SwitchUnit &first = *switches[entry.switchId];
    if (!first.canAccept(entry.port, pkt.outPort, pkt.lengthSlots))
        return false;
    const bool accepted = first.tryReceive(entry.port, pkt);
    damq_assert(accepted, "canAccept/tryReceive disagree");
    ++counters.injected;
    if (telemetry) {
        if (obs::PacketTracer *tr = telemetry->trace())
            tr->asyncBegin("pkt", "pkt", pkt.id, currentCycle,
                           endpointPid, src,
                           detail::concat("{\"src\": ", pkt.source,
                                          ", \"dest\": ", pkt.dest,
                                          "}"));
    }
    return true;
}

void
SyncEngine::deliver(const Packet &pkt, NodeId sink)
{
    if (pkt.dest != sink) {
        ++counters.misrouted;
        damq_panic("packet ", pkt.id, " for node ", pkt.dest,
                   " delivered to node ", sink,
                   " — routing is broken");
    }
    ++counters.delivered;
    if (telemetry) {
        if (obs::PacketTracer *tr = telemetry->trace())
            tr->asyncEnd("pkt", "pkt", pkt.id, currentCycle,
                         endpointPid, sink);
    }
    if (measuring) {
        const double latency =
            static_cast<double>(currentCycle - pkt.injectedAt) *
            cfg.latencyUnitScale;
        latencyStats.add(latency);
        perSourceLatency[pkt.source].add(latency);
        hopStats.add(static_cast<double>(pkt.hops));
    }
}

void
SyncEngine::beginMeasurement()
{
    windowStart = counters;
    latencyStats.reset();
    hopStats.reset();
    sourceQueueSamples.reset();
    switchOccupancySamples.reset();
    for (auto &stats : perSourceLatency)
        stats.reset();
}

SyncResult
SyncEngine::run()
{
    runSchedule();

    SyncResult result;
    result.window = counters - windowStart;
    result.measuredCycles = common.measureCycles;
    result.offeredLoad = cfg.offeredLoad;
    const double denom = static_cast<double>(topo.numEndpoints()) *
                         static_cast<double>(common.measureCycles);
    result.deliveredThroughput =
        static_cast<double>(result.window.delivered) / denom;
    result.discardFraction =
        result.window.generated == 0
            ? 0.0
            : static_cast<double>(result.window.discarded()) /
                  static_cast<double>(result.window.generated);
    result.latency = latencyStats;
    result.hops = hopStats;
    result.avgSourceQueueLen = sourceQueueSamples.mean();
    result.avgSwitchOccupancy = switchOccupancySamples.mean();

    // Jain fairness over the per-source mean latencies.
    double sum = 0.0;
    double sum_sq = 0.0;
    std::size_t active = 0;
    double worst = 0.0;
    for (const RunningStats &stats : perSourceLatency) {
        if (stats.count() == 0)
            continue;
        const double mean = stats.mean();
        sum += mean;
        sum_sq += mean * mean;
        worst = std::max(worst, mean);
        ++active;
    }
    result.latencyFairness =
        active == 0 || sum_sq == 0.0
            ? 1.0
            : sum * sum / (static_cast<double>(active) * sum_sq);
    result.worstSourceLatency = worst;

    return result;
}

std::uint64_t
SyncEngine::packetsInFlight() const
{
    std::uint64_t total = 0;
    for (const auto &sw : switches)
        total += sw->totalPackets();
    return total;
}

std::uint64_t
SyncEngine::packetsAtSources() const
{
    std::uint64_t total = 0;
    for (const auto &q : sourceQueues)
        total += q.size();
    return total;
}

void
SyncEngine::debugValidate() const
{
    for (const auto &sw : switches)
        sw->debugValidate();
}

void
SyncEngine::phaseFaults()
{
    if (!injector.enabled())
        return;
    for (SwitchId sw = 0; sw < topo.numSwitches(); ++sw) {
        if (!injector.rollSlotLeak(sw, currentCycle))
            continue;
        // Deterministic target without an extra draw.
        const PortId input = static_cast<PortId>(
            currentCycle % topo.portsPerSwitch());
        if (switches[sw]->faultLeakSlot(input)) {
            injector.recordFault(
                FaultKind::SlotLeak, sw, currentCycle,
                detail::concat("slot lost via input ", input));
        }
    }
}

void
SyncEngine::phaseAudit()
{
    if (!auditor.due(currentCycle))
        return;
    auditor.beginAudit();
    for (SwitchId sw = 0; sw < topo.numSwitches(); ++sw) {
        auditor.record(currentCycle, injector.componentName(sw),
                       switches[sw]->checkInvariants());
        if (cfg.placement != BufferPlacement::Input)
            continue;
        // Per-source FIFO delivery order, walked in place via
        // forEachInQueue — no queue snapshot is copied.
        const auto *sm =
            static_cast<const SwitchModel *>(switches[sw].get());
        for (PortId in = 0; in < sm->numPorts(); ++in) {
            auditor.record(currentCycle,
                           injector.componentName(sw),
                           auditQueueFifoOrder(sm->buffer(in)));
        }
    }
    // End-to-end conservation: every packet that entered the fabric
    // must be delivered, discarded, removed by a fault, or still
    // buffered — nothing may vanish unaccounted.
    const std::uint64_t accounted =
        counters.delivered + counters.discardedInternal +
        counters.faultDropped + packetsInFlight();
    if (counters.injected != accounted) {
        auditor.record(
            currentCycle, cfg.accountingScope,
            {detail::concat(
                "packet accounting broken: injected ",
                counters.injected, " != delivered ",
                counters.delivered, " + discarded ",
                counters.discardedInternal, " + fault-dropped ",
                counters.faultDropped, " + in-flight ",
                packetsInFlight())});
    }
}

void
SyncEngine::phaseWatchdog()
{
    if (!watchdog.enabled())
        return;
    for (SwitchId sw = 0; sw < topo.numSwitches(); ++sw) {
        const std::uint64_t transmitted =
            switches[sw]->unitStats().transmitted;
        const bool moved = transmitted != prevTransmitted[sw];
        prevTransmitted[sw] = transmitted;
        watchdog.observe(sw, currentCycle,
                         switches[sw]->totalPackets() > 0, moved);
    }
    if (watchdog.check(currentCycle,
                       [this] { return snapshotText(); })) {
        damq_warn("deadlock watchdog fired:\n",
                  watchdog.diagnostic());
    }
}

bool
SyncEngine::drain(Cycle max_cycles)
{
    draining = true;
    for (Cycle c = 0; c < max_cycles; ++c) {
        if (packetsInFlight() == 0 && packetsAtSources() == 0)
            break;
        step();
    }
    draining = false;
    return packetsInFlight() == 0 && packetsAtSources() == 0;
}

std::string
SyncEngine::snapshotText() const
{
    std::ostringstream out;
    out << "    snapshot at cycle " << currentCycle << " (seed "
        << common.seed << ", fault seed " << common.faults.seed
        << ")\n";
    for (SwitchId id = 0; id < topo.numSwitches(); ++id) {
        const SwitchUnit &sw = *switches[id];
        if (topo.snapshotSkipsEmpty() && sw.totalPackets() == 0)
            continue; // keep the snapshot readable on big fabrics
        out << "    " << topo.switchName(id) << ": "
            << sw.totalPackets() << " packets in "
            << sw.totalUsedSlots() << " slots";
        if (cfg.placement == BufferPlacement::Input) {
            const auto *sm = static_cast<const SwitchModel *>(&sw);
            const VcId vcs = cfg.common.vcs;
            for (PortId in = 0; in < sm->numPorts(); ++in) {
                for (PortId o = 0; o < sm->numPorts(); ++o) {
                    for (VcId v = 0; v < vcs; ++v) {
                        const Packet *head =
                            sm->buffer(in).peek(QueueKey{o, v});
                        if (!head)
                            continue;
                        out << " in" << in << "->out" << o;
                        if (vcs > 1)
                            out << ".vc" << v;
                        out << " head dest " << head->dest;
                    }
                }
            }
        }
        out << "\n";
    }
    return out.str();
}

} // namespace core
} // namespace damq

#include "network/core/sync_engine.hh"

#include <algorithm>
#include <sstream>

#include "common/logging.hh"
#include "common/string_util.hh"
#include "switchsim/switch_model.hh"

namespace damq {
namespace core {

TrafficSource
SyncEngine::makeSource(const Topology &topology,
                       const SyncConfig &config)
{
    damq_assert(config.burstiness >= 1.0,
                "burstiness must be at least 1");
    // The legacy burstiness/meanBurstCycles fields are a deprecated
    // alias for the two-state OnOff injection process: when they are
    // set and no explicit workload was chosen, rewrite the workload
    // so the historical burst source (same draw order, bit for bit)
    // comes out of the shared factory.  All parameter validation —
    // including the peak-rate check that used to live here — happens
    // in makeInjectionProcess, the single construction path.
    WorkloadConfig workload = config.common.workload;
    if (workload.kind == WorkloadKind::Geometric &&
        config.burstiness > 1.0) {
        workload.kind = WorkloadKind::OnOff;
        workload.burstiness = config.burstiness;
        workload.meanBurstCycles = config.meanBurstCycles;
    }
    return TrafficSource(
        makeTrafficPattern(config.traffic, topology.numEndpoints(),
                           config.hotSpotFraction,
                           config.transposeSide, config.common.seed),
        topology.numEndpoints(), config.offeredLoad, workload,
        config.trafficClasses);
}

unsigned
SyncEngine::effectiveShards(const Topology &topology,
                            const SyncConfig &config)
{
    std::uint32_t shards =
        config.common.shards == 0 ? 1 : config.common.shards;
    if (shards > topology.numSwitches()) {
        damq_fatal("--shards ", shards, " exceeds the topology's ",
                   topology.numSwitches(), " switches (",
                   topology.numEndpoints(),
                   " endpoints); each shard needs at least one "
                   "switch to own");
    }
    if (shards > 1 && config.placement != BufferPlacement::Input) {
        damq_fatal("--shards > 1 requires input-buffered placement "
                   "(", bufferPlacementName(config.placement),
                   " placement shares one structure across inputs, "
                   "which serializes the advance)");
    }
    if (shards > 1 && config.common.telemetry.enabled()) {
        damq_warn("telemetry probes run inside the buffer hot "
                  "path; degrading --shards ", shards, " to 1");
        shards = 1;
    }
    return shards;
}

SyncEngine::SyncEngine(const Topology &topology,
                       const SyncConfig &config)
    : SimEngine(config.common), topo(topology), cfg(config),
      vcAlloc(topology, config.common.vcPolicy, config.common.vcs),
      traffic(makeSource(topology, config)),
      sourceQueues(topology.numEndpoints()),
      nextSeq(topology.numEndpoints(), 0),
      latencyHist(config.latencyUnitScale, 4096),
      perSourceLatency(topology.numEndpoints())
{
    // Validates the shard request (and spawns the workers) before
    // any heavyweight construction.
    shardPool = std::make_unique<ShardRuntime>(
        effectiveShards(topology, config));

    const std::uint32_t n = topo.numSwitches();
    portCount = topo.portsPerSwitch();
    const bool input = cfg.placement == BufferPlacement::Input;
    if (cfg.trafficClasses < 1 ||
        cfg.trafficClasses > kMaxTrafficClasses) {
        damq_fatal("trafficClasses must be in [1, ",
                   kMaxTrafficClasses, "], got ",
                   cfg.trafficClasses);
    }
    if (cfg.trafficClasses > 1)
        e2eClassHist.resize(cfg.trafficClasses);
    if (traffic.process().closedLoop() &&
        cfg.protocol == FlowControl::Discarding) {
        damq_fatal("the ", traffic.process().name(),
                   " workload is a closed loop (deliveries schedule "
                   "replies) and needs a lossless protocol; "
                   "discarding flow control would strand the "
                   "outstanding-request window");
    }
    switches.reserve(n);
    if (input) {
        // One contiguous vector of concrete switches: the hot loop
        // indexes values, not heap objects behind interface
        // pointers.  Reserved once — SwitchModel addresses must
        // stay stable behind the `switches` view.
        switchStore.reserve(n);
        for (SwitchId sw = 0; sw < n; ++sw) {
            switchStore.emplace_back(
                portCount, cfg.bufferType, cfg.slotsPerBuffer,
                cfg.arbitration, cfg.staleThreshold,
                cfg.common.vcs, cfg.sharing);
        }
        for (SwitchModel &sm : switchStore)
            switches.push_back(&sm);
    } else {
        switchHeap.reserve(n);
        for (SwitchId sw = 0; sw < n; ++sw) {
            switchHeap.push_back(makeSwitchUnit(
                cfg.placement, portCount, cfg.bufferType,
                cfg.slotsPerBuffer, cfg.arbitration,
                cfg.staleThreshold, cfg.common.vcs, cfg.sharing));
            switches.push_back(switchHeap.back().get());
        }
    }
    // Delay-driven sharing reads the head packet's wait age at
    // admission time; hand every buffer a stable view of the
    // engine's clock.  Static policies never dereference it.
    for (SwitchUnit *unit : switches) {
        unit->forEachBuffer([this](PortId, BufferModel &buf) {
            buf.attachAdmissionClock(&currentCycle);
        });
    }
    for (SwitchId sw = 0; sw < n; ++sw) {
        // Registration order defines both the fault-plan component
        // handles and the watchdog's stable snapshot order, and
        // must equal the topology's flat SwitchId order.
        const std::size_t comp =
            injector.addComponent(topo.switchName(sw));
        const std::size_t wcomp =
            watchdog.addComponent(topo.switchName(sw));
        damq_assert(comp == sw && wcomp == comp,
                    "component registration order broken");
    }
    prevTransmitted.assign(n, 0);

    buildChannelTables();

    // The flow-control scheme validates the switching × protocol
    // combination (and upgrades Blocking to Credit at flit
    // granularity, where "blocked" is precisely "out of credits").
    scheme = FlowControlScheme::make(cfg.switching, cfg.protocol);
    cfg.protocol = scheme->protocol();
    if (scheme->flitLevel())
        setupFlitState();

    // Contiguous shard plan plus per-shard scratch.  Every
    // per-cycle structure is sized up front: at most one departure
    // per switch output exists at once, so these bounds hold for
    // the simulation's whole lifetime.
    {
        const unsigned shard_count = shardPool->shards();
        std::vector<std::uint32_t> inject_sw(topo.numEndpoints());
        for (NodeId src = 0; src < topo.numEndpoints(); ++src)
            inject_sw[src] = topo.injectionPoint(src).switchId;
        plan = ShardPlan::build(n, shard_count, inject_sw);
        shardScratch = std::vector<ShardScratch>(shard_count);
        for (unsigned s = 0; s < shard_count; ++s) {
            ShardScratch &sc = shardScratch[s];
            sc.moves.reserve(static_cast<std::size_t>(
                                 plan.begin[s + 1] - plan.begin[s]) *
                             portCount);
            sc.sent.reserve(portCount);
            // Built once: binding the current switch through
            // arbSwitch keeps the capture small enough for the
            // std::function small-object store, so arbitration
            // never constructs a function per switch.
            if (flit) {
                sc.canSend = [this, s](PortId, QueueKey out_key,
                                       const Packet &pkt) {
                    return flitCanSendHead(
                        shardScratch[s].arbSwitch, out_key, pkt);
                };
            } else {
                sc.canSend = [this, s](PortId, QueueKey out_key,
                                       const Packet &pkt) {
                    return canSendFrom(shardScratch[s].arbSwitch,
                                       out_key, pkt);
                };
            }
        }
        if (input) {
            grantStore.resize(n);
            for (GrantList &grants : grantStore)
                grants.reserve(portCount);
        }
        stagedHas.assign(topo.numEndpoints(), 0);
        stagedPkt.resize(topo.numEndpoints());
    }

    moveScratch.reserve(static_cast<std::size_t>(n) * portCount);
    sentScratch.reserve(portCount);
    pendingScratch.reserve(topo.numEndpoints());

    // Register the flat link numbering with the injector so its
    // hard-fault plan (forced-down links/routers) and the recovery
    // layer agree on link ids.  Eligibility comes from the topology
    // (delivery links to sinks are excluded by default).
    {
        std::vector<std::uint8_t> eligible(topo.numLinks(), 0);
        std::vector<std::size_t> reverse(
            topo.numLinks(), FaultInjector::kNoReverseLink);
        for (SwitchId sw = 0; sw < n; ++sw) {
            for (PortId out = 0; out < topo.portsPerSwitch(); ++out) {
                if (!topo.hasLink(sw, out))
                    continue; // mesh edge: no such link
                const LinkId link =
                    linkIdOf(sw, out, topo.portsPerSwitch());
                eligible[link] = topo.linkFaultEligible(sw, out);
                // Physical pairing: on a duplex fabric a frame
                // over (sw, out) arrives at the input port whose
                // same-numbered output leads straight back.  Only
                // verified reciprocity pairs up — a unidirectional
                // fabric (the Omega stages) pairs nothing.
                const HopTarget next = topo.hop(sw, out);
                if (next.toSink ||
                    !topo.hasLink(next.switchId, next.inputPort))
                    continue;
                const HopTarget back =
                    topo.hop(next.switchId, next.inputPort);
                if (!back.toSink && back.switchId == sw &&
                    back.inputPort == out)
                    reverse[link] =
                        linkIdOf(next.switchId, next.inputPort,
                                 topo.portsPerSwitch());
            }
        }
        injector.configureLinks(topo.numLinks(),
                                topo.portsPerSwitch(), eligible,
                                reverse);
    }

    // Recovery protocol state exists only when the policy asks for
    // it; with RecoveryPolicy::None nothing below is allocated and
    // the engine's hot path is byte-identical to pre-recovery runs.
    if (cfg.common.recovery.enabled()) {
        linkLayer = std::make_unique<LinkLayer>(cfg.common.recovery,
                                                topo.numLinks());
        linkUsed.assign(topo.numLinks(), 0);
        linksUsedScratch.reserve(topo.numLinks());
        if (cfg.common.recovery.reroute()) {
            if (cfg.placement != BufferPlacement::Input) {
                damq_fatal("recovery policy retransmit+reroute "
                           "requires input buffering (re-homing "
                           "pops the per-output queues held at the "
                           "inputs)");
            }
            faultRouter = std::make_unique<FaultRouter>(
                topo, linkLayer->linkMask());
        }
    }

    initTelemetry();
}

void
SyncEngine::buildChannelTables()
{
    const std::uint32_t links = topo.numLinks();
    chanToSink.assign(links, 0);
    chanSink.assign(links, 0);
    chanNextSwitch.assign(links, 0);
    chanNextInput.assign(links, 0);
    chanDateline.assign(links, 0);
    for (SwitchId sw = 0; sw < topo.numSwitches(); ++sw) {
        for (PortId out = 0; out < portCount; ++out) {
            if (!topo.hasLink(sw, out))
                continue; // never granted: routing avoids the edge
            const LinkId link = linkIdOf(sw, out, portCount);
            const HopTarget next = topo.hop(sw, out);
            chanToSink[link] = next.toSink ? 1 : 0;
            if (next.toSink) {
                chanSink[link] = next.sink;
            } else {
                chanNextSwitch[link] = next.switchId;
                chanNextInput[link] = next.inputPort;
            }
            chanDateline[link] =
                topo.hopCrossesDateline(sw, out) ? 1 : 0;
        }
    }
    portDim.assign(portCount, -1);
    for (PortId port = 0; port < portCount; ++port)
        portDim[port] = topo.portDimension(port);
    numVcs = cfg.common.vcs;
    vcPolicyNone = cfg.common.vcPolicy == VcPolicy::None;
}

void
SyncEngine::configureTelemetry(obs::Telemetry &t)
{
    // Trace row layout is topology-defined: one process per
    // pipeline stage (Omega) or per node (grids), plus a
    // pseudo-process for the endpoints.
    endpointPid = topo.numTraceProcesses();
    obs::PacketTracer *tracer = t.trace();
    if (tracer) {
        for (std::int64_t pid = 0; pid < endpointPid; ++pid)
            tracer->setProcessName(pid, topo.traceProcessName(pid));
        tracer->setProcessName(endpointPid,
                               topo.endpointProcessName());
    }

    for (SwitchId sw = 0; sw < topo.numSwitches(); ++sw) {
        switches[sw]->forEachBuffer(
            [&](PortId port, BufferModel &buffer) {
                std::int64_t pid = 0;
                std::int64_t tid = 0;
                topo.traceRow(sw, port, pid, tid);
                t.attachProbe(buffer, topo.probeName(sw, port), pid,
                              tid);
                if (tracer)
                    tracer->setThreadName(
                        pid, tid, topo.traceThreadName(sw, port));
            });
    }

    // The time series tracks the lifetime counters plus the live
    // occupancy; gauges register on the first sample (the hooks run
    // before the row is taken) and are refreshed only when due.
    t.addSampleHook([this]() {
        obs::MetricRegistry &m = telemetry->metrics();
        m.gauge("net.generated")
            .set(static_cast<double>(counters.generated));
        m.gauge("net.injected")
            .set(static_cast<double>(counters.injected));
        m.gauge("net.delivered")
            .set(static_cast<double>(counters.delivered));
        m.gauge("net.discarded")
            .set(static_cast<double>(counters.discarded()));
        m.gauge("net.faultDropped")
            .set(static_cast<double>(counters.faultDropped));
        m.gauge("net.inFlight")
            .set(static_cast<double>(packetsInFlight()));
        m.gauge("net.sourceQueued")
            .set(static_cast<double>(packetsAtSources()));

        std::uint64_t grants = 0;
        std::uint64_t stale = 0;
        if (cfg.placement == BufferPlacement::Input) {
            for (const auto &sw : switches) {
                const auto &stats =
                    static_cast<const SwitchModel &>(*sw)
                        .arbiterStats();
                grants += stats.grantsIssued;
                stale += stats.staleOverrides;
            }
        }
        m.gauge("arb.grants").set(static_cast<double>(grants));
        m.gauge("arb.staleOverrides")
            .set(static_cast<double>(stale));

        if (linkLayer) {
            const RecoveryStats &rs = linkLayer->stats();
            m.gauge("net.retransmits")
                .set(static_cast<double>(rs.retransmits));
            m.gauge("net.recovered")
                .set(static_cast<double>(rs.packetsRecovered));
            m.gauge("net.rerouted")
                .set(static_cast<double>(rs.packetsRerouted));
            m.gauge("net.deadLinks")
                .set(static_cast<double>(
                    linkLayer->linkMask().deadLinks()));
        }
    });
}

void
SyncEngine::onMeasuredCycle()
{
    std::uint64_t queued = 0;
    for (const auto &q : sourceQueues)
        queued += q.size();
    sourceQueueSamples.add(
        static_cast<double>(queued) /
        static_cast<double>(topo.numEndpoints()));

    std::uint64_t buffered = 0;
    for (const auto &sw : switches)
        buffered += sw->totalPackets();
    switchOccupancySamples.add(
        static_cast<double>(buffered) /
        static_cast<double>(switches.size()));
}

void
SyncEngine::phaseAdvance()
{
    if (cfg.placement == BufferPlacement::Input)
        phaseAdvanceInput();
    else
        phaseAdvanceShared();
}

void
SyncEngine::phaseAdvanceInput()
{
    if (linkLayer) {
        // Protocol work precedes fresh arbitration: dead links are
        // probed for revival, due retransmissions claim their
        // links, and re-homed packets try to re-enter the fabric.
        // All of it runs on the coordinator — it is rare-event
        // work that mutates global link-layer state.
        for (const LinkId link : linksUsedScratch)
            linkUsed[link] = 0;
        linksUsedScratch.clear();
        const std::uint64_t mask_version =
            linkLayer->linkMask().version();
        applyDeadLinks();
        probeDeadLinks();
        if (faultRouter &&
            linkLayer->linkMask().version() != mask_version)
            rekeyQueuedPackets();
        processRetries();
        processRehomes();
    }

    if (flit) {
        runAdvancePhases(flitAdvance);
        return;
    }
    runAdvancePhases(packetAdvance);
}

void
SyncEngine::runAdvancePhases(AdvancePhase &phase)
{
    // A1: every switch arbitrates against the start-of-cycle
    // snapshot.  The phase only *reads* buffer state (its own
    // queues, downstream canAccept) and the fault hooks pre-rolled
    // by phaseFaults; the sole mutation is each switch's own
    // arbiter fairness state — so shards share nothing writable.
    shardPool->run(
        [&phase](unsigned shard) { phase.arbitrate(shard); });

    // When a grant-legality audit is due, the coordinator checks
    // the schedules before they are consumed (ascending id, same
    // order the sequential engine recorded in).
    if (auditor.due(currentCycle))
        phase.auditGrants();

    // A2: granted sends execute on their (shard-owned) buffers
    // into per-shard move lists.  Between A1's capacity checks and
    // A3's receives only removals happen, so downstream space can
    // only grow — a start-of-cycle "accepts" verdict cannot sour.
    shardPool->run([&phase](unsigned shard) { phase.pop(shard); });

    // A3: apply the moves.  Concatenating the shard lists in shard
    // order reproduces the sequential ascending-SwitchId move
    // order.
    if (phase.coordinatorExchange()) {
        phase.exchangeSerial();
        return;
    }
    shardPool->run([&phase](unsigned shard) { phase.exchange(shard); });
    phase.finishExchange();
}

void
SyncEngine::auditGrantsNow()
{
    for (SwitchId sw = 0; sw < topo.numSwitches(); ++sw) {
        auditor.record(
            currentCycle, injector.componentName(sw),
            auditGrantLegality(
                grantStore[sw], portCount, portCount,
                switchStore[sw].buffer(0).maxReadsPerCycle(),
                cfg.common.vcs));
    }
}

void
SyncEngine::exchangeMovesSerial()
{
    // Per-packet fault draws (drop/corrupt) and link-layer
    // protocol state are global and order-sensitive: apply the
    // global move list on the coordinator, exactly as the
    // sequential engine does.
    {
        const bool hard_faults = common.faults.hardFaultsEnabled();
        for (unsigned s = 0; s < shardPool->shards(); ++s) {
            for (Move &move : shardScratch[s].moves) {
                if (linkLayer) {
                    // Recovery on: the frame crosses under the
                    // link-level protocol (CRC, same-cycle
                    // ack/nack, retransmission).
                    const LinkId link =
                        linkIdOf(move.sw, move.packet.outPort,
                                 portCount);
                    wireCross(move.sw, move.packet,
                              linkLayer->assignSeq(link),
                              /*is_retry=*/false);
                    continue;
                }
                // Hard faults without recovery: every frame onto a
                // forced-down link (or into a frozen router) is
                // lost.
                if (hard_faults &&
                    hardFaultLoss(move.sw, move.packet.outPort)) {
                    ++counters.faultDropped;
                    traceLoss(move.packet, "drop@linkdown");
                    continue;
                }
                // Link faults: the packet can vanish or arrive
                // with a flipped header bit.  The receiving side
                // verifies the sealed checksum before using any
                // header field, so a corrupted packet is detected
                // and discarded — never misrouted or silently
                // delivered.
                if (injector.dropOnLink(move.sw, currentCycle,
                                        move.packet)) {
                    ++counters.faultDropped;
                    traceLoss(move.packet, "drop@fault");
                    continue;
                }
                injector.corruptOnLink(move.sw, currentCycle,
                                       move.packet);
                if (!headerIntact(move.packet)) {
                    injector.recordDetectedCorruption();
                    ++counters.faultDropped;
                    traceLoss(move.packet, "drop@corrupt");
                    continue;
                }
                const HopTarget next =
                    topo.hop(move.sw, move.packet.outPort);
                if (next.toSink) {
                    deliver(move.packet, next.sink);
                    continue;
                }
                Packet pkt = move.packet;
                // The link VC must be computed from the packet's
                // state at the switch it left, before vc/inPort
                // are rewritten for the next hop.
                pkt.vc = vcAlloc.linkVc(move.packet, move.sw,
                                        move.packet.outPort);
                pkt.inPort = next.inputPort;
                pkt.outPort = topo.route(next.switchId, pkt.dest);
                ++pkt.hops;
                // Blocking hops were admitted at grant time (the
                // arbiter's canSendFrom check); only the static
                // space rule is re-verified at commit.  Discarding
                // hops get no upstream check, so the receive IS the
                // admission point and the full policy runs.
                const bool accepted =
                    cfg.protocol == FlowControl::Blocking
                        ? switches[next.switchId]->receiveGranted(
                              next.inputPort, pkt)
                        : switches[next.switchId]->tryReceive(
                              next.inputPort, pkt);
                if (!accepted) {
                    damq_assert(
                        cfg.protocol == FlowControl::Discarding,
                        "blocking protocol transmitted into a full "
                        "buffer — back-pressure check is broken");
                    ++counters.discardedInternal;
                    traceLoss(pkt, "drop@internal");
                }
            }
        }
    }
}

void
SyncEngine::finishMovesExchange()
{
    // A3b: sink deliveries and counter sums stay on the
    // coordinator, walked in global move order — deliver()'s
    // Welford statistics are order-sensitive floating point, and
    // this order is the sequential engine's.
    for (unsigned s = 0; s < shardPool->shards(); ++s) {
        ShardScratch &sc = shardScratch[s];
        counters.discardedInternal += sc.discardedInternal;
        for (const Move &move : sc.moves) {
            const LinkId link =
                move.sw * portCount + move.packet.outPort;
            if (chanToSink[link])
                deliver(move.packet, chanSink[link]);
        }
    }
}

bool
SyncEngine::canSendFrom(SwitchId sw, QueueKey out_key,
                        const Packet &pkt)
{
    const LinkId link = sw * portCount + out_key.out;
    if (linkLayer) {
        // Stop-and-wait: a link holding an unacked frame, a
        // declared-dead link, or a link a retransmission used this
        // cycle admits no fresh frame.
        if (!linkLayer->canSendFresh(link) || linkUsed[link])
            return false;
    }
    if (cfg.protocol == FlowControl::Discarding)
        return true; // transmit blindly; receiver may drop
    if (chanToSink[link])
        return true; // sinks always accept
    const SwitchId next_sw = chanNextSwitch[link];
    // A delayed credit makes the downstream switch report "full"
    // even when space exists: transfers stall but no packet is
    // lost.  (Pre-rolled in phaseFaults — a pure read here.)
    if (injector.creditDelayed(next_sw, currentCycle))
        return false;
    const PortId next_out =
        routeAfterHop(sw, out_key.out, next_sw, pkt);
    if (next_out == kInvalidPort)
        return false; // dest unroutable from downstream
    // The VC the packet will occupy on this link decides which
    // downstream queue must have room.
    const VcId next_vc = linkVcFlat(pkt, link, out_key.out);
    return switchStore[next_sw].canAcceptClass(
        chanNextInput[link], QueueKey{next_out, next_vc},
        pkt.lengthSlots, pkt.trafficClass);
}

void
SyncEngine::advanceArbitrate(unsigned shard)
{
    ShardScratch &sc = shardScratch[shard];
    const bool hard_faults = common.faults.hardFaultsEnabled();
    for (SwitchId sw = plan.begin[shard]; sw < plan.begin[shard + 1];
         ++sw) {
        GrantList &grants = grantStore[sw];
        grants.clear();
        // A stuck arbiter issues no grants at all this cycle;
        // neither does a router frozen by a hard fault.  Both
        // hooks are pre-rolled in phaseFaults, so these queries
        // are pure reads.
        if (injector.arbiterStuck(sw, currentCycle))
            continue;
        if (hard_faults &&
            injector.routerForcedDown(sw, currentCycle))
            continue;
        sc.arbSwitch = sw;
        switchStore[sw].arbitrateInto(sc.canSend, grants);
    }
}

void
SyncEngine::advancePop(unsigned shard)
{
    ShardScratch &sc = shardScratch[shard];
    sc.moves.clear();
    for (SwitchId sw = plan.begin[shard]; sw < plan.begin[shard + 1];
         ++sw) {
        const GrantList &grants = grantStore[sw];
        if (grants.empty())
            continue;
        switchStore[sw].popGrantedInto(grants, sc.sent);
        for (Packet &pkt : sc.sent)
            sc.moves.push_back(Move{sw, pkt});
    }
}

void
SyncEngine::advanceReceive(unsigned shard)
{
    ShardScratch &sc = shardScratch[shard];
    sc.discardedInternal = 0;
    const SwitchId begin_sw = plan.begin[shard];
    const SwitchId end_sw = plan.begin[shard + 1];
    // Every shard scans the full move list and applies only the
    // hops that land on a switch it owns; the coordinator picks up
    // the sink deliveries afterwards.
    for (unsigned s = 0; s < plan.shards(); ++s) {
        for (const Move &move : shardScratch[s].moves) {
            const LinkId link =
                move.sw * portCount + move.packet.outPort;
            if (chanToSink[link])
                continue;
            const SwitchId next_sw = chanNextSwitch[link];
            if (next_sw < begin_sw || next_sw >= end_sw)
                continue;
            Packet pkt = move.packet;
            // The link VC must be computed from the packet's state
            // at the switch it left, before vc/inPort are
            // rewritten for the next hop.
            pkt.vc = linkVcFlat(move.packet, link,
                                move.packet.outPort);
            pkt.inPort = chanNextInput[link];
            pkt.outPort = topo.route(next_sw, pkt.dest);
            ++pkt.hops;
            // Same grant/commit split as the single-shard path:
            // blocking hops re-verify only the static space rule.
            const bool accepted =
                cfg.protocol == FlowControl::Blocking
                    ? switchStore[next_sw].receiveGranted(pkt.inPort,
                                                          pkt)
                    : switchStore[next_sw].tryReceive(pkt.inPort,
                                                      pkt);
            if (!accepted) {
                damq_assert(
                    cfg.protocol == FlowControl::Discarding,
                    "blocking protocol transmitted into a full "
                    "buffer — back-pressure check is broken");
                ++sc.discardedInternal;
                traceLoss(pkt, "drop@internal");
            }
        }
    }
}

void
SyncEngine::phaseAdvanceShared()
{
    // Central-pool and output-queued switches share one structure
    // across inputs, and several switches can commit into the same
    // downstream structure in one cycle — so the blocking
    // back-pressure test also counts the arrivals already granted
    // this cycle.  (Two outputs of one switch can never reach the
    // same downstream switch in the supported topologies, so
    // accounting between transmit() calls is exact.)  This path is
    // single-shard by construction (effectiveShards rejects more).
    const bool hard_faults = common.faults.hardFaultsEnabled();
    std::unordered_map<std::uint64_t, std::uint32_t> &pending =
        pendingScratch;
    pending.clear();
    auto pending_key = [&](SwitchId sw, PortId out) {
        const std::uint64_t structure =
            cfg.placement == BufferPlacement::Output ? out : 0;
        return static_cast<std::uint64_t>(sw) *
                   topo.portsPerSwitch() +
               structure;
    };

    std::vector<Move> &moves = moveScratch;
    moves.clear();
    for (SwitchId sw = 0; sw < topo.numSwitches(); ++sw) {
        // A stuck arbiter issues no grants at all this cycle.
        if (injector.arbiterStuck(sw, currentCycle))
            continue;
        // Neither does a router frozen by a hard fault.
        if (hard_faults &&
            injector.routerForcedDown(sw, currentCycle))
            continue;
        auto can_send = [&, sw](PortId, QueueKey out_key,
                                const Packet &pkt) {
            if (cfg.protocol == FlowControl::Discarding)
                return true; // transmit blindly; receiver may drop
            const HopTarget next = topo.hop(sw, out_key.out);
            if (next.toSink)
                return true; // sinks always accept
            if (injector.creditDelayed(next.switchId, currentCycle))
                return false;
            const PortId next_out = routeAfterHop(
                sw, out_key.out, next.switchId, pkt);
            if (next_out == kInvalidPort)
                return false; // dest unroutable from downstream
            const VcId next_vc =
                vcAlloc.linkVc(pkt, sw, out_key.out);
            std::uint32_t held = 0;
            const auto found = pending.find(
                pending_key(next.switchId, next_out));
            if (found != pending.end())
                held = found->second;
            return switches[next.switchId]->canAcceptClass(
                next.inputPort, QueueKey{next_out, next_vc},
                pkt.lengthSlots + held, pkt.trafficClass);
        };
        std::vector<Packet> &sent = sentScratch;
        switches[sw]->transmitInto(can_send, sent);
        for (Packet &pkt : sent) {
            const HopTarget next = topo.hop(sw, pkt.outPort);
            if (!next.toSink) {
                const PortId next_out = routeAfterHop(
                    sw, pkt.outPort, next.switchId, pkt);
                if (next_out != kInvalidPort)
                    pending[pending_key(next.switchId, next_out)] +=
                        pkt.lengthSlots;
            }
            moves.push_back(Move{sw, pkt});
        }
    }

    for (Move &move : moves) {
        if (hard_faults &&
            hardFaultLoss(move.sw, move.packet.outPort)) {
            ++counters.faultDropped;
            traceLoss(move.packet, "drop@linkdown");
            continue;
        }
        if (injector.dropOnLink(move.sw, currentCycle,
                                move.packet)) {
            ++counters.faultDropped;
            traceLoss(move.packet, "drop@fault");
            continue;
        }
        injector.corruptOnLink(move.sw, currentCycle, move.packet);
        if (injector.enabled() && !headerIntact(move.packet)) {
            injector.recordDetectedCorruption();
            ++counters.faultDropped;
            traceLoss(move.packet, "drop@corrupt");
            continue;
        }
        const HopTarget next = topo.hop(move.sw, move.packet.outPort);
        if (next.toSink) {
            deliver(move.packet, next.sink);
            continue;
        }
        Packet pkt = move.packet;
        pkt.vc =
            vcAlloc.linkVc(move.packet, move.sw, move.packet.outPort);
        pkt.inPort = next.inputPort;
        pkt.outPort = topo.route(next.switchId, pkt.dest);
        ++pkt.hops;
        SwitchUnit &target = *switches[next.switchId];
        const bool accepted = target.tryReceive(next.inputPort, pkt);
        if (!accepted) {
            damq_assert(cfg.protocol == FlowControl::Discarding,
                        "blocking protocol transmitted into a full "
                        "buffer — back-pressure check is broken");
            ++counters.discardedInternal;
            traceLoss(pkt, "drop@internal");
        }
    }
}

PortId
SyncEngine::routeFor(SwitchId sw, const Packet &pkt)
{
    return faultRouter
               ? faultRouter->nextHop(sw, pkt.dest, pkt.routeDown)
                     .port
               : topo.route(sw, pkt.dest);
}

PortId
SyncEngine::routeAfterHop(SwitchId sw, PortId out, SwitchId next_sw,
                          const Packet &pkt)
{
    if (!faultRouter)
        return topo.route(next_sw, pkt.dest);
    const bool down = pkt.routeDown || faultRouter->downHop(sw, out);
    return faultRouter->nextHop(next_sw, pkt.dest, down).port;
}

bool
SyncEngine::hardFaultLoss(SwitchId sw, PortId out)
{
    const LinkId link = linkIdOf(sw, out, topo.portsPerSwitch());
    if (injector.linkForcedDown(link, currentCycle))
        return true;
    const HopTarget next = topo.hop(sw, out);
    return !next.toSink &&
           injector.routerForcedDown(next.switchId, currentCycle);
}

bool
SyncEngine::wireCross(SwitchId sw, const Packet &pristine,
                      std::uint32_t seq, bool is_retry)
{
    const PortId out = pristine.outPort;
    const LinkId link = linkIdOf(sw, out, topo.portsPerSwitch());
    const HopTarget next = topo.hop(sw, out);
    RecoveryStats &rs = linkLayer->stats();
    ++rs.framesSent;
    if (is_retry)
        ++rs.retransmits;

    // A hard fault loses the frame outright; so does a transient
    // drop.  Either way no ack comes back and the sender times out.
    bool lost = false;
    if (common.faults.hardFaultsEnabled()) {
        lost = injector.linkForcedDown(link, currentCycle) ||
               (!next.toSink && injector.routerForcedDown(
                                    next.switchId, currentCycle));
    }
    if (!lost)
        lost = injector.dropOnLink(sw, currentCycle, pristine);
    if (lost) {
        frameFailed(sw, link, pristine, seq, is_retry,
                    /*nacked=*/false);
        return false;
    }

    // The receiver sees the wire copy; a corrupted frame fails the
    // CRC check there and is nacked within the transfer cycle.
    Packet wire = pristine;
    injector.corruptOnLink(sw, currentCycle, wire);
    if (linkFrameCrc(wire, seq) != linkFrameCrc(pristine, seq)) {
        injector.recordDetectedCorruption();
        frameFailed(sw, link, pristine, seq, is_retry,
                    /*nacked=*/true);
        return false;
    }

    // Acked.  The CRC catches every single-bit flip (the fault
    // model's whole repertoire), so an accepted frame is pristine.
    linkLayer->onAck(link);
    if (is_retry) {
        // The link carried this retransmission; no fresh frame may
        // use it again this cycle.
        linkUsed[link] = 1;
        linksUsedScratch.push_back(link);
    }

    if (next.toSink) {
        deliver(pristine, next.sink);
        return true;
    }
    Packet pkt = pristine;
    pkt.vc = vcAlloc.linkVc(pristine, sw, out);
    pkt.inPort = next.inputPort;
    if (faultRouter && faultRouter->active()) {
        pkt.routeDown =
            pristine.routeDown || faultRouter->downHop(sw, out);
        const FaultRouter::Hop onward = faultRouter->nextHop(
            next.switchId, pkt.dest, pkt.routeDown);
        pkt.outPort = onward.port;
        if (pkt.outPort == kInvalidPort) {
            // Reachability collapsed while the frame was in
            // flight: the wire worked (the ack above stands), but
            // no legal route onward exists — charge the loss to
            // the faults.
            ++counters.faultDropped;
            traceLoss(pkt, "drop@unroutable");
            return true;
        }
        if (pkt.routeDown && !onward.down) {
            // The frame's descent chain vanished while it was in
            // flight (epoch change): it must restart as a climber,
            // but climbing out of a down-link's buffer is the one
            // dependency edge the up*-down* order forbids.  It
            // re-enters through the local injection buffer via the
            // re-home queue instead.
            ++pkt.hops;
            rehomeQueue.push_back(Rehome{next.switchId, pkt});
            return true;
        }
    } else {
        pkt.outPort = routeFor(next.switchId, pkt);
    }
    ++pkt.hops;
    SwitchUnit &target = *switches[next.switchId];
    const bool accepted = target.tryReceive(next.inputPort, pkt);
    if (!accepted) {
        damq_assert(cfg.protocol == FlowControl::Discarding,
                    "blocking protocol transmitted into a full "
                    "buffer — back-pressure check is broken");
        ++counters.discardedInternal;
        traceLoss(pkt, "drop@internal");
    }
    return true;
}

void
SyncEngine::frameFailed(SwitchId sw, LinkId link,
                        const Packet &pristine, std::uint32_t seq,
                        bool is_retry, bool nacked)
{
    if (!is_retry)
        linkLayer->holdFrame(link, pristine, seq, currentCycle);
    if (linkLayer->onFail(link, nacked, currentCycle) ==
        LinkLayer::Verdict::DeclareDead) {
        // Deferred to next cycle's pre-pass: declaring now would
        // change the routing function mid-cycle, after this
        // cycle's capacity checks already ran against it.
        deadPending.push_back(DeadLink{sw, link});
    }
}

void
SyncEngine::applyDeadLinks()
{
    for (const DeadLink &dead : deadPending)
        handleDeadLink(dead.sw, dead.link);
    deadPending.clear();
}

void
SyncEngine::handleDeadLink(SwitchId sw, LinkId link)
{
    linkLayer->declareDead(link);
    Packet victim = linkLayer->takePending(link);
    if (faultRouter) {
        // Re-home the stranded frame and everything queued behind
        // it; their detours are computed when they re-enter.
        rehomeQueue.push_back(Rehome{sw, victim});
        rehomeQueuedPackets(
            sw, static_cast<PortId>(link % topo.portsPerSwitch()));
    } else {
        // Retransmit-only: the stranded frame is charged to the
        // fault counters.  Packets queued behind the dead output
        // stay blocked — the watchdog will diagnose the partition.
        ++counters.faultDropped;
        ++linkLayer->stats().packetsLostAfterRetry;
        traceLoss(victim, "drop@deadlink");
    }
}

void
SyncEngine::rehomeQueuedPackets(SwitchId sw, PortId out)
{
    auto *sm = static_cast<SwitchModel *>(switches[sw]);
    for (PortId in = 0; in < sm->numPorts(); ++in) {
        BufferModel &buf = sm->buffer(in);
        for (VcId vc = 0; vc < cfg.common.vcs; ++vc) {
            const QueueKey key{out, vc};
            while (buf.peek(key) != nullptr)
                rehomeQueue.push_back(Rehome{sw, buf.pop(key)});
        }
    }
}

void
SyncEngine::rekeyQueuedPackets()
{
    // Every packet restarts as a climber: its old phase bit and
    // queue key both belong to routes of the previous epoch, and a
    // standing restart (fresh up*-then-down* route from the buffer
    // it already sits in) is legal from scratch.  Packets whose
    // key survives the change are re-pushed in order; the rest
    // join the re-home queue and re-enter via processRehomes().
    std::vector<Packet> keep;
    for (SwitchId sw = 0; sw < topo.numSwitches(); ++sw) {
        auto *sm = static_cast<SwitchModel *>(switches[sw]);
        for (PortId in = 0; in < sm->numPorts(); ++in) {
            BufferModel &buf = sm->buffer(in);
            for (PortId out = 0; out < sm->numPorts(); ++out) {
                for (VcId vc = 0; vc < cfg.common.vcs; ++vc) {
                    const QueueKey key{out, vc};
                    if (buf.peek(key) == nullptr)
                        continue;
                    keep.clear();
                    while (buf.peek(key) != nullptr) {
                        Packet pkt = buf.pop(key);
                        pkt.routeDown = false;
                        const PortId want = routeFor(sw, pkt);
                        // Keeping the packet in place requires both
                        // that the new routing still picks this
                        // output and that waiting for it from this
                        // buffer is not a down→up turn of the new
                        // orientation; everything else re-enters
                        // through the local buffer.
                        if (want == out &&
                            !faultRouter->illegalTurn(sw, in, out))
                            keep.push_back(pkt);
                        else if (want == kInvalidPort) {
                            // Cut off from its sink by the change.
                            ++counters.faultDropped;
                            traceLoss(pkt, "drop@unroutable");
                        } else
                            rehomeQueue.push_back(Rehome{sw, pkt});
                    }
                    for (const Packet &pkt : keep) {
                        // Refill in arrival order.  The pops above
                        // freed at least these slots, but the
                        // escape-slot reservation can still refuse
                        // a refill on the margin — those packets
                        // re-enter through the re-home queue.
                        if (buf.canAcceptClass(key, pkt.lengthSlots,
                                               pkt.trafficClass))
                            buf.push(pkt);
                        else
                            rehomeQueue.push_back(Rehome{sw, pkt});
                    }
                }
            }
        }
    }
}

void
SyncEngine::processRetries()
{
    if (linkLayer->pendingLinks() == 0)
        return;
    const std::uint32_t ports = topo.portsPerSwitch();
    for (LinkId link = 0; link < topo.numLinks(); ++link) {
        if (!linkLayer->retryDue(link, currentCycle))
            continue;
        const SwitchId sw = link / ports;
        const Packet &pristine = linkLayer->pendingPacket(link);
        // Mirror can_send: a retransmission into a full downstream
        // buffer waits for room without consuming an attempt (the
        // failure streak tracks the *wire*, not back-pressure).
        const HopTarget next = topo.hop(sw, pristine.outPort);
        if (cfg.protocol != FlowControl::Discarding &&
            !next.toSink) {
            if (injector.creditDelayed(next.switchId, currentCycle))
                continue;
            // A frame whose arrival will not enter a buffer — the
            // destination became unroutable (dropped on arrival)
            // or its descent chain vanished (diverted to the
            // re-home queue) — needs no downstream space, and
            // holding it would block the link indefinitely.
            bool needs_space = true;
            PortId next_out = kInvalidPort;
            if (faultRouter && faultRouter->active()) {
                const bool went_down =
                    pristine.routeDown ||
                    faultRouter->downHop(sw, pristine.outPort);
                const FaultRouter::Hop onward = faultRouter->nextHop(
                    next.switchId, pristine.dest, went_down);
                next_out = onward.port;
                needs_space = next_out != kInvalidPort &&
                              !(went_down && !onward.down);
            } else {
                next_out = routeAfterHop(
                    sw, pristine.outPort, next.switchId, pristine);
            }
            if (needs_space) {
                const VcId next_vc =
                    vcAlloc.linkVc(pristine, sw, pristine.outPort);
                if (!switches[next.switchId]->canAcceptClass(
                        next.inputPort, QueueKey{next_out, next_vc},
                        pristine.lengthSlots, pristine.trafficClass))
                    continue;
            }
        }
        wireCross(sw, pristine, linkLayer->pendingSeq(link),
                  /*is_retry=*/true);
    }
}

void
SyncEngine::processRehomes()
{
    if (rehomeQueue.empty())
        return;
    // One bounded pass: whatever cannot re-enter yet stays queued
    // (and counts as in-flight for the packet accounting).
    for (std::size_t n = rehomeQueue.size(); n > 0; --n) {
        Rehome item = rehomeQueue.front();
        rehomeQueue.pop_front();
        Packet &pkt = item.pkt;
        // Re-homing is a standing restart: the packet's old phase
        // belonged to routes through the now-dead link, and a fresh
        // up*-then-down* route from here is legal from scratch.
        pkt.routeDown = false;
        const PortId detour = routeFor(item.sw, pkt);
        if (detour == kInvalidPort) {
            // The failures cut this packet off from its sink.
            ++counters.faultDropped;
            ++linkLayer->stats().packetsLostAfterRetry;
            traceLoss(pkt, "drop@unroutable");
            continue;
        }
        const LinkId link =
            linkIdOf(item.sw, detour, topo.portsPerSwitch());
        auto *sm = static_cast<SwitchModel *>(switches[item.sw]);
        // Re-entry goes through the local injection buffer when
        // the switch has one: no fabric link feeds that buffer, so
        // a displaced packet waiting there can never extend a
        // channel-dependency chain — re-entry cannot close a
        // deadlock cycle no matter which output it waits for.  The
        // packet keeps its VC.
        const PortId local = topo.localInputPort(item.sw);
        const PortId entry =
            local != kInvalidPort ? local : pkt.inPort;
        if (linkLayer->linkMask().linkUp(link) &&
            sm->canAcceptClass(entry, QueueKey{detour, pkt.vc},
                               pkt.lengthSlots, pkt.trafficClass)) {
            pkt.outPort = detour;
            pkt.inPort = entry;
            const bool ok = sm->tryReceive(entry, pkt);
            damq_assert(ok, "canAccept/tryReceive disagree on a "
                            "re-homed packet");
            ++linkLayer->stats().packetsRerouted;
        } else {
            rehomeQueue.push_back(item);
        }
    }
}

void
SyncEngine::probeDeadLinks()
{
    if (!linkLayer->probeDue(currentCycle))
        return;
    const std::uint32_t ports = topo.portsPerSwitch();
    // Reviving inside the visit is safe: the mask's storage does
    // not move, and clearing the current bit never hides later
    // dead links from the ascending walk.
    linkLayer->linkMask().forEachDeadLink([&](LinkId link) {
        if (injector.linkForcedDown(link, currentCycle))
            return; // episode still running
        const HopTarget next = topo.hop(link / ports, link % ports);
        if (!next.toSink && injector.routerForcedDown(
                                next.switchId, currentCycle))
            return; // receiver still frozen
        linkLayer->revive(link);
    });
}

void
SyncEngine::traceLoss(const Packet &pkt, const char *why)
{
    if (!telemetry)
        return;
    obs::PacketTracer *tr = telemetry->trace();
    if (!tr)
        return;
    tr->instant(why, "pkt", currentCycle, endpointPid, pkt.source);
    tr->asyncEnd("pkt", "pkt", pkt.id, currentCycle, endpointPid,
                 pkt.source);
}

void
SyncEngine::phaseInject()
{
    // I1 (coordinator): every PRNG draw of the phase — the
    // generation Bernoulli/burst draws and the destination draw —
    // happens here, in ascending source order.  The draws read no
    // network state, so hoisting them out of the injection pass
    // preserves the per-source-per-cycle draw-order contract
    // exactly; the generated packets wait in per-source staging
    // slots for the owning shard.
    for (NodeId src = 0; src < topo.numEndpoints(); ++src) {
        stagedHas[src] = 0;
        // Drain mode makes no PRNG draws: new generation is skipped
        // entirely (closed-loop processes may still flush replies
        // they already owe — also draw-free), and blocked source
        // queues keep retrying in I2.
        const bool offered = draining
                                 ? traffic.drainPending(src,
                                                        currentCycle)
                                 : traffic.shouldGenerate(
                                       src, currentCycle, rng);
        if (!offered)
            continue;
        Packet pkt;
        pkt.id = nextPacketId++;
        pkt.source = src;
        // The process may pin the destination (replies go home,
        // traces replay verbatim); only the pattern draws from the
        // PRNG, so pinned destinations cost no draw.
        pkt.dest = traffic.destinationFor(src, rng);
        pkt.kind = traffic.stagedKind();
        // At flit granularity a packet is flitsPerPacket flits of
        // one slot each; the source NI assembles whole packets, so
        // injection stays packet-granular (flitsArrived = 0 is the
        // "all arrived" sentinel).
        pkt.lengthSlots = flit ? cfg.flitsPerPacket : 1;
        pkt.generatedAt = currentCycle;
        pkt.seq = nextSeq[src]++;
        // Deterministic class assignment — no RNG draw (draw order
        // is a bit-identity contract), and class 0 everywhere when
        // classes are off, leaving historical runs untouched.
        pkt.trafficClass =
            cfg.trafficClasses > 1
                ? static_cast<std::uint8_t>(src % cfg.trafficClasses)
                : 0;
        sealHeader(pkt);
        ++counters.generated;
        if (telemetry) {
            if (obs::PacketTracer *tr = telemetry->trace())
                tr->instant("gen", "pkt", currentCycle,
                            endpointPid, src);
        }
        if (injectionRecord) {
            injectionRecord->push_back(
                WorkloadTraceEntry{currentCycle, src, pkt.dest});
        }
        stagedPkt[src] = pkt;
        stagedHas[src] = 1;
    }

    // I2: each shard injects at the sources whose injection switch
    // it owns, so every buffer touched is shard-local.
    shardPool->run([this](unsigned shard) { injectShard(shard); });

    for (unsigned s = 0; s < shardPool->shards(); ++s) {
        const ShardScratch &sc = shardScratch[s];
        counters.injected += sc.injected;
        counters.discardedAtEntry += sc.discardedAtEntry;
        counters.faultDropped += sc.faultDropped;
    }
}

void
SyncEngine::injectShard(unsigned shard)
{
    ShardScratch &sc = shardScratch[shard];
    sc.injected = 0;
    sc.discardedAtEntry = 0;
    sc.faultDropped = 0;
    // Credit and on-off flow control never drop at entry either:
    // a source that cannot inject queues up, exactly as blocking.
    const bool blocking = cfg.protocol != FlowControl::Discarding;
    for (const NodeId src : plan.sources[shard]) {
        if (stagedHas[src]) {
            const Packet &pkt = stagedPkt[src];
            if (blocking) {
                sourceQueues[src].push_back(pkt);
            } else if (!tryInject(src, pkt, sc)) {
                ++sc.discardedAtEntry;
                if (telemetry) {
                    if (obs::PacketTracer *tr = telemetry->trace())
                        tr->instant("drop@entry", "pkt",
                                    currentCycle, endpointPid, src);
                }
            }
        }

        if (blocking && !sourceQueues[src].empty()) {
            // The link from the source delivers at most one packet
            // per cycle, and only the head may try.
            if (tryInject(src, sourceQueues[src].front(), sc))
                sourceQueues[src].pop_front();
        }
    }
}

bool
SyncEngine::tryInject(NodeId src, Packet pkt, ShardScratch &sc)
{
    const InjectPoint entry = topo.injectionPoint(src);
    // A frozen router grants no credit to its host link either.
    if (common.faults.hardFaultsEnabled() &&
        injector.routerForcedDown(entry.switchId, currentCycle))
        return false;
    pkt.outPort = routeFor(entry.switchId, pkt);
    if (pkt.outPort == kInvalidPort) {
        // The destination is unroutable from here (partitioned
        // fabric).  Consume the packet into the fault accounting
        // rather than blocking the source queue forever.
        ++sc.injected;
        ++sc.faultDropped;
        traceLoss(pkt, "drop@unroutable");
        return true;
    }
    pkt.inPort = entry.port; // injected packets start on VC 0
    pkt.injectedAt = currentCycle;
    SwitchUnit &first = *switches[entry.switchId];
    if (!first.canAcceptClass(entry.port, pkt.outPort,
                              pkt.lengthSlots, pkt.trafficClass))
        return false;
    const bool accepted = first.tryReceive(entry.port, pkt);
    damq_assert(accepted, "canAccept/tryReceive disagree");
    ++sc.injected;
    if (telemetry) {
        if (obs::PacketTracer *tr = telemetry->trace())
            tr->asyncBegin("pkt", "pkt", pkt.id, currentCycle,
                           endpointPid, src,
                           detail::concat("{\"src\": ", pkt.source,
                                          ", \"dest\": ", pkt.dest,
                                          "}"));
    }
    return true;
}

void
SyncEngine::deliver(const Packet &pkt, NodeId sink)
{
    if (pkt.dest != sink) {
        ++counters.misrouted;
        damq_panic("packet ", pkt.id, " for node ", pkt.dest,
                   " delivered to node ", sink,
                   " — routing is broken");
    }
    ++counters.delivered;
    if (telemetry) {
        if (obs::PacketTracer *tr = telemetry->trace())
            tr->asyncEnd("pkt", "pkt", pkt.id, currentCycle,
                         endpointPid, sink);
    }
    // Closed-loop state transitions (reply scheduling, window
    // slots) must see *every* delivery, warmup and drain included;
    // deliver() runs on the coordinator in global move order, so
    // the callback inherits the bit-identity argument.
    traffic.onDelivered(pkt, currentCycle);
    if (measuring) {
        const double latency =
            static_cast<double>(currentCycle - pkt.injectedAt) *
            cfg.latencyUnitScale;
        latencyStats.add(latency);
        latencyHist.add(latency);
        perSourceLatency[pkt.source].add(latency);
        hopStats.add(static_cast<double>(pkt.hops));
        // End-to-end latency counts from generation, so the source
        // queue wait under back-pressure is included — that is the
        // tail the percentiles exist to expose.
        const double e2e =
            static_cast<double>(currentCycle - pkt.generatedAt) *
            cfg.latencyUnitScale;
        e2eHist.add(e2e);
        if (!e2eClassHist.empty())
            e2eClassHist[pkt.trafficClass].add(e2e);
    }
}

void
SyncEngine::beginMeasurement()
{
    windowStart = counters;
    latencyStats.reset();
    latencyHist.reset();
    e2eHist.reset();
    for (TailHistogram &hist : e2eClassHist)
        hist.reset();
    hopStats.reset();
    sourceQueueSamples.reset();
    switchOccupancySamples.reset();
    for (auto &stats : perSourceLatency)
        stats.reset();
}

void
SyncEngine::runBatchSchedule()
{
    // Batch mode ignores the warmup/measure split: the metric *is*
    // the time to absorb the whole batch, so measurement starts at
    // cycle 0 and the schedule ends when the batch has drained (the
    // configured warmup+measure total serves as the cycle budget —
    // a wedged run still terminates and the watchdog reports it).
    measuring = true;
    beginMeasurement();
    const Cycle budget = common.warmupCycles + common.measureCycles;
    batchCycles = 0;
    while (batchCycles < budget) {
        step();
        ++batchCycles;
        if (traffic.exhausted() && packetsInFlight() == 0 &&
            packetsAtSources() == 0 && traffic.pendingOffers() == 0)
            break;
    }
    measuring = false;
    if (telemetry)
        telemetry->writeFiles();
}

SyncResult
SyncEngine::run()
{
    const bool batch =
        cfg.common.workload.kind == WorkloadKind::Batch;
    if (batch)
        runBatchSchedule();
    else
        runSchedule();
    const Cycle window = batch ? batchCycles : common.measureCycles;

    SyncResult result;
    result.window = counters - windowStart;
    result.measuredCycles = window;
    result.offeredLoad = cfg.offeredLoad;
    const double denom = static_cast<double>(topo.numEndpoints()) *
                         static_cast<double>(window);
    result.deliveredThroughput =
        static_cast<double>(result.window.delivered) / denom;
    result.discardFraction =
        result.window.generated == 0
            ? 0.0
            : static_cast<double>(result.window.discarded()) /
                  static_cast<double>(result.window.generated);
    result.latency = latencyStats;
    result.latencyP50 = latencyHist.quantile(0.5);
    result.latencyP99 = latencyHist.quantile(0.99);
    result.e2eLatencyP50 = e2eHist.quantile(0.5);
    result.e2eLatencyP99 = e2eHist.quantile(0.99);
    result.e2eLatencyP999 = e2eHist.quantile(0.999);
    result.e2eSamples = e2eHist.count();
    for (std::uint32_t cls = 0; cls < e2eClassHist.size(); ++cls) {
        const TailHistogram &hist = e2eClassHist[cls];
        result.classLatency.push_back(SyncResult::ClassTail{
            cls, hist.count(), hist.quantile(0.5),
            hist.quantile(0.99), hist.quantile(0.999)});
    }
    result.hops = hopStats;
    result.avgSourceQueueLen = sourceQueueSamples.mean();
    result.avgSwitchOccupancy = switchOccupancySamples.mean();

    // Jain fairness over the per-source mean latencies.
    double sum = 0.0;
    double sum_sq = 0.0;
    std::size_t active = 0;
    double worst = 0.0;
    for (const RunningStats &stats : perSourceLatency) {
        if (stats.count() == 0)
            continue;
        const double mean = stats.mean();
        sum += mean;
        sum_sq += mean * mean;
        worst = std::max(worst, mean);
        ++active;
    }
    result.latencyFairness =
        active == 0 || sum_sq == 0.0
            ? 1.0
            : sum * sum / (static_cast<double>(active) * sum_sq);
    result.worstSourceLatency = worst;

    return result;
}

std::uint64_t
SyncEngine::packetsInFlight() const
{
    std::uint64_t total = 0;
    if (flit) {
        // A packet streaming across k hops holds k+1 records; at
        // any phase boundary exactly one of them — the one holding
        // the tail flit — is fully arrived, so the conservation
        // identity sums those.
        for (const SwitchModel &sm : switchStore)
            for (PortId in = 0; in < portCount; ++in)
                total += sm.buffer(in).fullyResidentPackets();
        return total;
    }
    for (const auto &sw : switches)
        total += sw->totalPackets();
    // Unacked frames in retransmit buffers and displaced packets
    // awaiting their detour are still inside the fabric.
    if (linkLayer)
        total += linkLayer->packetsHeld();
    total += rehomeQueue.size();
    return total;
}

std::uint64_t
SyncEngine::packetsAtSources() const
{
    std::uint64_t total = 0;
    for (const auto &q : sourceQueues)
        total += q.size();
    return total;
}

void
SyncEngine::debugValidate() const
{
    for (const auto &sw : switches)
        sw->debugValidate();
}

void
SyncEngine::phaseFaults()
{
    if (!injector.enabled())
        return;
    // Roll every hard-fault episode in fixed id order, so the draw
    // sequence never depends on which links traffic happens to use.
    if (common.faults.routerDownRate > 0.0) {
        for (SwitchId sw = 0; sw < topo.numSwitches(); ++sw)
            injector.routerForcedDown(sw, currentCycle);
    }
    if (common.faults.linkDownRate > 0.0) {
        for (LinkId link = 0; link < topo.numLinks(); ++link)
            injector.linkForcedDown(link, currentCycle);
    }
    // Pre-roll the remaining memoized per-switch hooks the same
    // way.  The sharded arbitration phase queries arbiterStuck and
    // creditDelayed concurrently, so every same-cycle draw must
    // happen here — after this pass those queries are pure reads.
    if (common.faults.arbiterStuckRate > 0.0) {
        for (SwitchId sw = 0; sw < topo.numSwitches(); ++sw)
            injector.arbiterStuck(sw, currentCycle);
    }
    if (common.faults.creditDelayRate > 0.0) {
        for (SwitchId sw = 0; sw < topo.numSwitches(); ++sw)
            injector.creditDelayed(sw, currentCycle);
    }
    for (SwitchId sw = 0; sw < topo.numSwitches(); ++sw) {
        if (!injector.rollSlotLeak(sw, currentCycle))
            continue;
        // Deterministic target without an extra draw.
        const PortId input = static_cast<PortId>(
            currentCycle % topo.portsPerSwitch());
        if (switches[sw]->faultLeakSlot(input)) {
            injector.recordFault(
                FaultKind::SlotLeak, sw, currentCycle,
                detail::concat("slot lost via input ", input));
        }
    }
}

void
SyncEngine::phaseAudit()
{
    if (!auditor.due(currentCycle))
        return;
    auditor.beginAudit();
    for (SwitchId sw = 0; sw < topo.numSwitches(); ++sw) {
        auditor.record(currentCycle, injector.componentName(sw),
                       switches[sw]->checkInvariants());
        if (cfg.placement != BufferPlacement::Input)
            continue;
        // Rerouting legitimately reorders: a re-homed packet jumps
        // to another queue, and detoured packets can overtake
        // same-source packets on the original path — so the
        // per-source FIFO audit only applies without reroute.
        if (faultRouter)
            continue;
        // Per-source FIFO delivery order, walked in place via
        // forEachInQueue — no queue snapshot is copied.
        const auto *sm =
            static_cast<const SwitchModel *>(switches[sw]);
        for (PortId in = 0; in < sm->numPorts(); ++in) {
            auditor.record(currentCycle,
                           injector.componentName(sw),
                           auditQueueFifoOrder(sm->buffer(in)));
        }
    }
    // Flit-layer invariants: streams release their wire and VC at
    // the tail, credits respect their caps and account for every
    // used slot, and no two packets interleave in one buffer.
    if (flit)
        auditor.record(currentCycle, "flit", flitCheckInvariants());
    // End-to-end conservation: every packet that entered the fabric
    // must be delivered, discarded, removed by a fault, or still
    // buffered — nothing may vanish unaccounted.
    const std::uint64_t accounted =
        counters.delivered + counters.discardedInternal +
        counters.faultDropped + packetsInFlight();
    if (counters.injected != accounted) {
        auditor.record(
            currentCycle, cfg.accountingScope,
            {detail::concat(
                "packet accounting broken: injected ",
                counters.injected, " != delivered ",
                counters.delivered, " + discarded ",
                counters.discardedInternal, " + fault-dropped ",
                counters.faultDropped, " + in-flight ",
                packetsInFlight())});
    }
}

void
SyncEngine::phaseWatchdog()
{
    if (!watchdog.enabled())
        return;
    const bool hard_faults = common.faults.hardFaultsEnabled();
    for (SwitchId sw = 0; sw < topo.numSwitches(); ++sw) {
        // Flit motion is finer than pops: a long packet streaming
        // body flits is progress even though nothing popped yet.
        const std::uint64_t transmitted =
            flit ? flit->sends[sw]
                 : switches[sw]->unitStats().transmitted;
        const bool moved = transmitted != prevTransmitted[sw];
        prevTransmitted[sw] = transmitted;
        bool has_work = switches[sw]->totalPackets() > 0;
        // A router frozen by an injected hard fault is stalled by
        // design, not deadlocked — don't let it trip the watchdog.
        if (has_work && hard_faults &&
            injector.routerForcedDown(sw, currentCycle))
            has_work = false;
        watchdog.observe(sw, currentCycle, has_work, moved);
    }
    if (watchdog.check(currentCycle,
                       [this] { return snapshotText(); })) {
        damq_warn("deadlock watchdog fired:\n",
                  watchdog.diagnostic());
    }
}

FaultReport
SyncEngine::faultReport() const
{
    FaultReport report = SimEngine::faultReport();
    if (linkLayer)
        linkLayer->fillReport(report);
    if (flit) {
        report.creditsIssued = flit->creditsIssued;
        report.creditsReturned = flit->creditsReturned;
    }
    return report;
}

bool
SyncEngine::drain(Cycle max_cycles)
{
    draining = true;
    for (Cycle c = 0; c < max_cycles; ++c) {
        // Pending closed-loop replies are offers no in-network
        // packet represents yet; the drain is not done until the
        // loop has closed on them too.
        if (packetsInFlight() == 0 && packetsAtSources() == 0 &&
            traffic.pendingOffers() == 0)
            break;
        step();
    }
    draining = false;
    return packetsInFlight() == 0 && packetsAtSources() == 0 &&
           traffic.pendingOffers() == 0;
}

std::string
SyncEngine::snapshotText() const
{
    std::ostringstream out;
    out << "    snapshot at cycle " << currentCycle << " (seed "
        << common.seed << ", fault seed " << common.faults.seed
        << ")\n";
    for (SwitchId id = 0; id < topo.numSwitches(); ++id) {
        const SwitchUnit &sw = *switches[id];
        if (topo.snapshotSkipsEmpty() && sw.totalPackets() == 0)
            continue; // keep the snapshot readable on big fabrics
        out << "    " << topo.switchName(id) << ": "
            << sw.totalPackets() << " packets in "
            << sw.totalUsedSlots() << " slots";
        if (cfg.placement == BufferPlacement::Input) {
            const auto *sm = static_cast<const SwitchModel *>(&sw);
            const VcId vcs = cfg.common.vcs;
            for (PortId in = 0; in < sm->numPorts(); ++in) {
                for (PortId o = 0; o < sm->numPorts(); ++o) {
                    for (VcId v = 0; v < vcs; ++v) {
                        const Packet *head =
                            sm->buffer(in).peek(QueueKey{o, v});
                        if (!head)
                            continue;
                        out << " in" << in << "->out" << o;
                        if (vcs > 1)
                            out << ".vc" << v;
                        out << " head dest " << head->dest;
                    }
                }
            }
        }
        out << "\n";
    }
    return out.str();
}

} // namespace core
} // namespace damq

/**
 * @file
 * The Topology interface of the shared simulation core.
 *
 * A topology describes the node/channel graph a synchronized
 * simulator runs on, in flattened form: switches are numbered
 * 0..numSwitches()-1 (SwitchId), every switch has the same degree,
 * and three functions tie the graph together:
 *
 *  - route(sw, dest): the output port a packet for @p dest takes at
 *    switch @p sw (the routing function — digit-controlled for the
 *    Omega network, dimension-order for mesh/torus grids);
 *  - hop(sw, out): where a packet leaving @p sw through @p out
 *    lands — either another switch's input port or an endpoint sink;
 *  - injectionPoint(src): the (switch, input port) where endpoint
 *    @p src offers new packets to the fabric.
 *
 * The flat SwitchId ordering is load-bearing: it defines the
 * fault-injector / watchdog component registration order, the
 * deterministic snapshot order, and the telemetry probe order, so
 * adapters must number switches the same way the pre-core
 * simulators iterated them (stage-major for the Omega network,
 * row-major for grids).
 *
 * The naming hooks (switchName, probeName, trace*) keep the
 * per-topology diagnostic vocabulary ("stage0.sw3" vs "node12",
 * trace row layout) byte-identical to the pre-core simulators.
 */

#ifndef DAMQ_NETWORK_CORE_TOPOLOGY_HH
#define DAMQ_NETWORK_CORE_TOPOLOGY_HH

#include <cstdint>
#include <string>

#include "common/types.hh"

namespace damq {
namespace core {

/** Flat switch index inside a topology. */
using SwitchId = std::uint32_t;

/** Where a packet leaving a switch output lands. */
struct HopTarget
{
    bool toSink = false;       ///< true: delivered to an endpoint
    NodeId sink = kInvalidNode;///< the endpoint (when toSink)
    SwitchId switchId = 0;     ///< next switch (when !toSink)
    PortId inputPort = 0;      ///< its input port (when !toSink)
};

/** Where an endpoint's packets enter the fabric. */
struct InjectPoint
{
    SwitchId switchId = 0;
    PortId port = 0;
};

/** Immutable node/channel graph plus its routing function. */
class Topology
{
  public:
    virtual ~Topology() = default;

    /** Number of switches in the fabric. */
    virtual std::uint32_t numSwitches() const = 0;

    /** Uniform switch degree (ports per switch). */
    virtual std::uint32_t portsPerSwitch() const = 0;

    /** Number of endpoints (sources == sinks). */
    virtual std::uint32_t numEndpoints() const = 0;

    /** Output port at @p sw for a packet destined to @p dest. */
    virtual PortId route(SwitchId sw, NodeId dest) const = 0;

    /** Channel fed by output @p out of switch @p sw. */
    virtual HopTarget hop(SwitchId sw, PortId out) const = 0;

    /** Entry channel of endpoint @p src. */
    virtual InjectPoint injectionPoint(NodeId src) const = 0;

    /** Diagnostic name of @p sw ("stage1.sw3", "node12", ...). */
    virtual std::string switchName(SwitchId sw) const = 0;

    // --- Link-state surface -----------------------------------------
    // The recovery layer's link-state mask (link_state.hh) indexes
    // links flat as sw * portsPerSwitch() + out; these helpers tie
    // that numbering to the topology so the fault injector, the
    // link layer, and the fault-tolerant router all agree on it.

    /** Number of flat link ids (every output of every switch). */
    std::uint32_t numLinks() const
    {
        return numSwitches() * portsPerSwitch();
    }

    /**
     * Whether output @p out of switch @p sw is wired to anything.
     * Regular topologies keep the default (every port exists); a
     * non-wraparound grid overrides it for its edge ports, whose
     * hop() would be meaningless.
     */
    virtual bool hasLink(SwitchId /*sw*/, PortId /*out*/) const
    {
        return true;
    }

    /**
     * Whether the link out of @p sw through @p out may be forced
     * down by a hard fault.  Delivery links to sinks are excluded
     * by default: a failed-link-fraction sweep measures the fabric,
     * not the hosts' exit channels (which have no detour anyway).
     */
    virtual bool linkFaultEligible(SwitchId sw, PortId out) const
    {
        return hasLink(sw, out) && !hop(sw, out).toSink;
    }

    /**
     * Input port of @p sw that no fabric link feeds (the local
     * injection port), or kInvalidPort when the switch has none.
     * Fault-tolerant rerouting re-enters displaced packets through
     * this buffer: a buffer no link feeds cannot extend a channel-
     * dependency chain, so re-entry there can never close a
     * deadlock cycle (see network/core/fault_router.hh).
     */
    virtual PortId localInputPort(SwitchId /*sw*/) const
    {
        return kInvalidPort;
    }

    // --- Virtual-channel geometry -----------------------------------
    // The dateline VC policy needs to know which ports travel along
    // which ring and where each ring's wraparound link sits.
    // Topologies without rings keep the defaults (no dimensions, no
    // datelines), which makes every VC policy degenerate to VC 0.

    /**
     * Ring dimension that port @p port travels along (0 = X, 1 = Y,
     * ...), or -1 when the port is not part of a ring (delivery
     * ports, Omega-stage links).
     */
    virtual int portDimension(PortId /*port*/) const { return -1; }

    /**
     * Whether the channel out of @p sw through @p out is a ring's
     * wraparound ("dateline") link.  Always false on topologies
     * without wraparound channels.
     */
    virtual bool hopCrossesDateline(SwitchId /*sw*/,
                                    PortId /*out*/) const
    {
        return false;
    }

    /** Whether diagnostic snapshots omit empty switches. */
    virtual bool snapshotSkipsEmpty() const { return false; }

    // --- Trace/probe row layout -------------------------------------
    // Chrome-trace rows are (process, thread) pairs; each topology
    // groups its buffers its own way (Omega: one process per stage,
    // grids: one process per node).  The endpoint pseudo-process is
    // always pid == numTraceProcesses().

    /** Trace processes used for switches (endpoints come after). */
    virtual std::int64_t numTraceProcesses() const = 0;

    /** Display name of trace process @p pid. */
    virtual std::string traceProcessName(std::int64_t pid) const = 0;

    /** Display name of the endpoint pseudo-process. */
    virtual const char *endpointProcessName() const = 0;

    /** Trace (pid, tid) of input buffer @p port of switch @p sw. */
    virtual void traceRow(SwitchId sw, PortId port, std::int64_t &pid,
                          std::int64_t &tid) const = 0;

    /** Thread display name of that buffer's trace row. */
    virtual std::string traceThreadName(SwitchId sw,
                                        PortId port) const = 0;

    /** Metrics-probe name of that buffer ("s0.sw3.in1", ...). */
    virtual std::string probeName(SwitchId sw, PortId port) const = 0;
};

} // namespace core
} // namespace damq

#endif // DAMQ_NETWORK_CORE_TOPOLOGY_HH

#include "network/core/sim_types.hh"

#include "common/enum_parse.hh"
#include "common/logging.hh"

namespace damq {

namespace {

/** Canonical spellings first; short aliases parse but never print. */
constexpr EnumName<FlowControl> kFlowControlNames[] = {
    {FlowControl::Discarding, "discarding"},
    {FlowControl::Blocking, "blocking"},
    {FlowControl::Credit, "credit"},
    {FlowControl::OnOff, "on-off"},
    {FlowControl::Discarding, "discard"},
    {FlowControl::Blocking, "block"},
    {FlowControl::OnOff, "onoff"},
};

} // namespace

const char *
flowControlName(FlowControl protocol)
{
    if (const char *name = enumValueName(protocol, kFlowControlNames))
        return name;
    damq_panic("unknown FlowControl ", static_cast<int>(protocol));
}

std::optional<FlowControl>
tryFlowControlFromString(const std::string &name)
{
    return parseEnumName(std::string_view(name), kFlowControlNames);
}

NetworkCounters
NetworkCounters::operator-(const NetworkCounters &rhs) const
{
    NetworkCounters out;
    out.generated = generated - rhs.generated;
    out.injected = injected - rhs.injected;
    out.delivered = delivered - rhs.delivered;
    out.discardedAtEntry = discardedAtEntry - rhs.discardedAtEntry;
    out.discardedInternal = discardedInternal - rhs.discardedInternal;
    out.misrouted = misrouted - rhs.misrouted;
    out.faultDropped = faultDropped - rhs.faultDropped;
    return out;
}

} // namespace damq

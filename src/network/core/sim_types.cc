#include "network/core/sim_types.hh"

#include "common/logging.hh"
#include "common/string_util.hh"

namespace damq {

const char *
flowControlName(FlowControl protocol)
{
    switch (protocol) {
      case FlowControl::Discarding: return "discarding";
      case FlowControl::Blocking: return "blocking";
    }
    damq_panic("unknown FlowControl ", static_cast<int>(protocol));
}

std::optional<FlowControl>
tryFlowControlFromString(const std::string &name)
{
    const std::string lower = toLower(name);
    if (lower == "discarding" || lower == "discard")
        return FlowControl::Discarding;
    if (lower == "blocking" || lower == "block")
        return FlowControl::Blocking;
    return std::nullopt;
}

FlowControl
flowControlFromString(const std::string &name)
{
    if (const auto protocol = tryFlowControlFromString(name))
        return *protocol;
    damq_fatal("unknown flow control '", name,
               "' (expected discarding|blocking)");
}

NetworkCounters
NetworkCounters::operator-(const NetworkCounters &rhs) const
{
    NetworkCounters out;
    out.generated = generated - rhs.generated;
    out.injected = injected - rhs.injected;
    out.delivered = delivered - rhs.delivered;
    out.discardedAtEntry = discardedAtEntry - rhs.discardedAtEntry;
    out.discardedInternal = discardedInternal - rhs.discardedInternal;
    out.misrouted = misrouted - rhs.misrouted;
    out.faultDropped = faultDropped - rhs.faultDropped;
    return out;
}

} // namespace damq

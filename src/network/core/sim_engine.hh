/**
 * @file
 * SimEngine: the canonical cycle loop and run harness shared by
 * every network simulator.
 *
 * Each of the repo's simulators used to own a private copy of the
 * same skeleton: a seeded PRNG, the fault-injection subsystem
 * (injector + periodic invariant auditor + deadlock watchdog), the
 * optional telemetry bundle with its beginCycle/endCycle protocol,
 * a step() that sequences the cycle's phases, and a run() that
 * executes the SimCommonConfig warmup/measure schedule.  That
 * skeleton now lives here, exactly once.
 *
 * A cycle always advances as:
 *
 *     ++cycle
 *     telemetry beginCycle
 *     phaseFaults()     — structural fault injection
 *     phaseAdvance()    — route/arbitrate + move traffic forward
 *     phaseInject()     — sources generate and inject
 *     phaseAudit()      — periodic invariant audit
 *     phaseWatchdog()   — deadlock watchdog bookkeeping
 *     telemetry endCycle
 *     onMeasuredCycle() — per-cycle sampling inside the window
 *
 * Derived engines override only the phases they model; unused
 * phases default to no-ops.  The fault/telemetry members are
 * constructed from SimCommonConfig, so a config with everything off
 * costs only null-pointer branches — the byte-identity baselines
 * depend on that.
 *
 * Derived constructors must call initTelemetry() as their last
 * statement (the configureTelemetry() hook is virtual and cannot
 * run from this base constructor).
 */

#ifndef DAMQ_NETWORK_CORE_SIM_ENGINE_HH
#define DAMQ_NETWORK_CORE_SIM_ENGINE_HH

#include <memory>

#include "common/random.hh"
#include "common/types.hh"
#include "fault/fault_injector.hh"
#include "fault/invariant_auditor.hh"
#include "fault/watchdog.hh"
#include "network/sim_common.hh"
#include "obs/telemetry.hh"

namespace damq {
namespace core {

/** Canonical cycle loop + warmup/measure harness (see file docs). */
class SimEngine
{
  public:
    virtual ~SimEngine() = default;

    /** Advance one cycle through the canonical phase sequence. */
    void step();

    /** Current cycle (clock, for clock-granularity engines). */
    Cycle now() const { return currentCycle; }

    /** Injection/detection/audit/watchdog summary so far. */
    virtual FaultReport faultReport() const;

    /** The telemetry bundle, or nullptr when telemetry is off. */
    obs::Telemetry *telemetryOrNull() { return telemetry.get(); }
    const obs::Telemetry *telemetryOrNull() const
    {
        return telemetry.get();
    }

  protected:
    explicit SimEngine(const SimCommonConfig &common_config);

    // --- the phases of one cycle, in execution order ---------------
    virtual void phaseFaults() {}
    virtual void phaseAdvance() = 0;
    virtual void phaseInject() = 0;
    virtual void phaseAudit() {}
    virtual void phaseWatchdog() {}

    /** Per-cycle sampling; runs after endCycle while measuring. */
    virtual void onMeasuredCycle() {}

    /**
     * Execute the warmup/measure schedule: warmup steps, then
     * measuring = true, beginMeasurement(), the measured steps,
     * measuring = false, and the telemetry file flush.  run()
     * implementations call this and then assemble their result.
     */
    void runSchedule();

    /** Reset window statistics at the start of the window. */
    virtual void beginMeasurement() {}

    /**
     * Build the telemetry bundle (when enabled) and invoke
     * configureTelemetry().  Call as the last statement of the
     * most-derived constructor.
     */
    void initTelemetry();

    /** Attach probes, names, and sample hooks to @p t. */
    virtual void configureTelemetry(obs::Telemetry &t) = 0;

    SimCommonConfig common; ///< harness knobs (copied)
    Random rng;             ///< traffic PRNG (common.seed)
    FaultInjector injector;
    InvariantAuditor auditor;
    DeadlockWatchdog watchdog;

    Cycle currentCycle = 0;
    bool measuring = false;
    bool draining = false;

    /**
     * Telemetry bundle, or nullptr when common.telemetry is
     * disabled — every hook is a branch on this pointer, so the
     * disabled hot path is unchanged.
     */
    std::unique_ptr<obs::Telemetry> telemetry;
    std::int64_t endpointPid = 0; ///< trace pid of sources/sinks
};

} // namespace core
} // namespace damq

#endif // DAMQ_NETWORK_CORE_SIM_ENGINE_HH

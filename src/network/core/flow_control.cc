#include "network/core/flow_control.hh"

#include "common/enum_parse.hh"
#include "common/logging.hh"

namespace damq {

namespace {

/** Canonical spellings first; aliases parse but never print. */
constexpr EnumName<Switching> kSwitchingNames[] = {
    {Switching::PacketSync, "packet-sync"},
    {Switching::StoreAndForward, "store-and-forward"},
    {Switching::CutThrough, "cut-through"},
    {Switching::Wormhole, "wormhole"},
    {Switching::VirtualCutThrough, "vct"},
    {Switching::PacketSync, "packet"},
    {Switching::CutThrough, "cutthrough"},
    {Switching::VirtualCutThrough, "virtual-cut-through"},
};

/** Whole-packet transfers: admission needs the full length. */
class PacketGranularScheme final : public FlowControlScheme
{
  public:
    using FlowControlScheme::FlowControlScheme;

    std::uint32_t headSlotsNeeded(
        std::uint32_t length_slots) const override
    {
        return length_slots;
    }

    bool reservesWholePacket() const override { return true; }
};

/** Wormhole: a head flit needs one downstream slot. */
class WormholeScheme final : public FlowControlScheme
{
  public:
    using FlowControlScheme::FlowControlScheme;

    std::uint32_t headSlotsNeeded(std::uint32_t) const override
    {
        return 1;
    }

    bool reservesWholePacket() const override { return false; }
};

/** VCT: a head flit needs the whole packet's space downstream. */
class VirtualCutThroughScheme final : public FlowControlScheme
{
  public:
    using FlowControlScheme::FlowControlScheme;

    std::uint32_t headSlotsNeeded(
        std::uint32_t length_slots) const override
    {
        return length_slots;
    }

    bool reservesWholePacket() const override { return true; }
};

} // namespace

const char *
switchingName(Switching mode)
{
    if (const char *name = enumValueName(mode, kSwitchingNames))
        return name;
    damq_panic("unknown Switching ", static_cast<int>(mode));
}

std::optional<Switching>
trySwitchingFromString(const std::string &name)
{
    return parseEnumName(std::string_view(name), kSwitchingNames);
}

std::unique_ptr<FlowControlScheme>
FlowControlScheme::make(Switching mode, FlowControl fc)
{
    if (flitLevelSwitching(mode)) {
        if (fc == FlowControl::Discarding)
            damq_fatal(switchingName(mode), " switching cannot use "
                       "the discarding protocol: flits of one packet "
                       "must not be dropped independently");
        // Blocking is the packet-mode default; at flit granularity
        // "blocked" is precisely "out of credits", so upgrade.
        if (fc == FlowControl::Blocking)
            fc = FlowControl::Credit;
        if (mode == Switching::Wormhole)
            return std::unique_ptr<FlowControlScheme>(
                new WormholeScheme(mode, fc));
        return std::unique_ptr<FlowControlScheme>(
            new VirtualCutThroughScheme(mode, fc));
    }
    if (fc == FlowControl::Credit || fc == FlowControl::OnOff)
        damq_fatal("the ", flowControlName(fc), " protocol is "
                   "flit-level back-pressure; ", switchingName(mode),
                   " switching moves whole packets (use blocking or "
                   "discarding, or switch to wormhole/vct)");
    return std::unique_ptr<FlowControlScheme>(
        new PacketGranularScheme(mode, fc));
}

} // namespace damq

/**
 * @file
 * Flit types for the flit-level switching modes.
 *
 * Under wormhole and virtual cut-through switching a packet no
 * longer crosses a link as one atomic unit: it is serialized into
 * `lengthSlots` flits — one head, zero or more body, one tail (a
 * single-flit packet's head doubles as its tail).  The engine keeps
 * the packet record as the unit of storage (Packet::flitsArrived /
 * flitsSent count partial residency, see packet.hh) and uses these
 * descriptors to reason about what crosses a wire in one cycle:
 *
 *  - the *head* flit carries the routing header — it is the only
 *    flit the arbiter ever grants, and it allocates the downstream
 *    queue (per FlowControlScheme::headSlotsNeeded, 1 slot under
 *    wormhole, the whole packet under VCT);
 *  - *body* flits follow the head on the already-allocated path,
 *    one per cycle, consuming one downstream credit each;
 *  - the *tail* flit releases the path: it frees the last slot the
 *    packet held upstream and releases the link's VC for the next
 *    packet (the property the invariant audits check).
 */

#ifndef DAMQ_NETWORK_CORE_FLIT_HH
#define DAMQ_NETWORK_CORE_FLIT_HH

#include <cstdint>

#include "common/types.hh"
#include "queueing/queue_key.hh"

namespace damq {

/** Position of one flit within its packet. */
enum class FlitType : std::uint8_t
{
    Head,     ///< first flit; carries the routing header
    Body,     ///< middle flit of a >2-flit packet
    Tail,     ///< last flit; frees the upstream slot and the VC
    HeadTail, ///< single-flit packet: head and tail at once
};

/** Human-readable flit type name. */
inline const char *
flitTypeName(FlitType type)
{
    switch (type) {
    case FlitType::Head:
        return "head";
    case FlitType::Body:
        return "body";
    case FlitType::Tail:
        return "tail";
    case FlitType::HeadTail:
        return "head-tail";
    }
    return "?";
}

/**
 * Type of flit @p index (0-based) of a packet of @p length_slots
 * flits.
 */
inline FlitType
flitTypeOf(std::uint32_t index, std::uint32_t length_slots)
{
    if (length_slots <= 1)
        return FlitType::HeadTail;
    if (index == 0)
        return FlitType::Head;
    return index + 1 >= length_slots ? FlitType::Tail : FlitType::Body;
}

/**
 * One flit in transit: which packet it belongs to, which position,
 * and the virtual channel it travels on.  Pure description — the
 * payload stays with the packet record in the buffer.
 */
struct Flit
{
    PacketId packet = kInvalidPacket;
    FlitType type = FlitType::HeadTail;
    std::uint32_t index = 0; ///< 0-based position within the packet
    VcId vc = 0;
};

/** Whether @p type ends its packet. */
inline bool
isTail(FlitType type)
{
    return type == FlitType::Tail || type == FlitType::HeadTail;
}

/** Whether @p type starts its packet. */
inline bool
isHead(FlitType type)
{
    return type == FlitType::Head || type == FlitType::HeadTail;
}

} // namespace damq

#endif // DAMQ_NETWORK_CORE_FLIT_HH

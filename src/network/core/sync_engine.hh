/**
 * @file
 * SyncEngine: the synchronized-cycle simulation engine shared by
 * the Omega, mesh, and torus simulators.
 *
 * One engine, one cycle loop: switches arbitrate against a
 * consistent start-of-cycle snapshot, granted packets pop, packets
 * arrive at the next switch (re-routed there) or at their sink, and
 * sources generate/inject — with the fault hooks (stuck arbiters,
 * delayed credits, link drops/corruption, slot leaks), the periodic
 * invariant audit, the deadlock watchdog, and the telemetry probes
 * implemented exactly once.  Everything topology-specific goes
 * through the core::Topology interface; everything policy-specific
 * (buffer organization, placement, flow control, arbitration,
 * traffic) is a SyncConfig field.
 *
 * With input-buffered placement the cycle's advance runs as three
 * phases over shard-local state — arbitrate (read-only against the
 * snapshot), pop (shard-owned buffers only), apply moves — so the
 * topology's switches can be partitioned across threads
 * (SimCommonConfig::shards) with a barrier between phases.  Results
 * are bit-identical at any shard count: phase outputs are kept in
 * per-shard lists whose concatenation in shard order reproduces the
 * sequential ascending-SwitchId order, every PRNG draw stays on the
 * coordinator in a fixed order, and order-sensitive floating-point
 * accumulation (latency statistics) replays on the coordinator in
 * global move order.  See DESIGN.md section 13.
 *
 * The per-switch state itself lives in structure-of-arrays form:
 * one contiguous vector of SwitchModel values (no per-node heap
 * objects) plus flat per-link channel tables (hop target, dateline
 * bit, ring dimension) indexed by LinkId, so the hot capacity check
 * runs on array loads instead of virtual topology calls.
 */

#ifndef DAMQ_NETWORK_CORE_SYNC_ENGINE_HH
#define DAMQ_NETWORK_CORE_SYNC_ENGINE_HH

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/ring_queue.hh"
#include "common/types.hh"
#include "network/core/fault_router.hh"
#include "network/core/flit.hh"
#include "network/core/flow_control.hh"
#include "network/core/link_layer.hh"
#include "network/core/shard.hh"
#include "network/core/sim_engine.hh"
#include "network/core/sim_types.hh"
#include "network/core/topology.hh"
#include "network/core/traffic_source.hh"
#include "network/core/vc_policy.hh"
#include "network/core/workload.hh"
#include "stats/histogram.hh"
#include "stats/running_stats.hh"
#include "stats/tail_histogram.hh"
#include "switchsim/switch_model.hh"
#include "switchsim/switch_unit.hh"

namespace damq {
namespace core {

/**
 * The shard-phase contract of one synchronized advance.  PR 7's
 * barrier machinery ran three informal phases hard-coded for
 * whole-packet transfers; this interface names them so the packet
 * and flit engines share one sequencer (runAdvancePhases) — and one
 * bit-identity argument — instead of duplicating the barrier
 * protocol:
 *
 *  - **arbitrate** (A1, every shard): decide this cycle's sends
 *    against the start-of-cycle snapshot.  May only *read* buffer
 *    state (own queues, downstream capacity, pre-rolled fault
 *    hooks); the sole mutation allowed is shard-owned scratch and
 *    per-switch arbiter fairness state.
 *  - **auditGrants** (coordinator, only when an audit is due):
 *    check the decided schedules before they are consumed,
 *    ascending switch id.
 *  - **pop** (A2, every shard): execute the decided sends on
 *    shard-*owned* state only (pop/flit-forward own buffers,
 *    consume own links' credits) into per-shard move lists.
 *    Between A1's capacity checks and A3's receives only removals
 *    happen, so a start-of-cycle "accepts" verdict cannot sour.
 *  - **exchange** (A3): apply the moves.  Either on the
 *    coordinator in global move order (coordinatorExchange() true:
 *    order-sensitive per-packet fault draws or link-layer protocol
 *    state), or sharded — each shard applies the moves landing on
 *    switches it owns, sound because every input buffer is fed by
 *    exactly one link — followed by **finishExchange** on the
 *    coordinator for sink deliveries and counter sums in global
 *    move order (Welford latency accumulation is order-sensitive
 *    floating point).
 *
 * The sequencer inserts a barrier between consecutive sharded
 * phases; concatenating per-shard outputs in shard order reproduces
 * the sequential ascending-SwitchId order, which is what keeps
 * results bit-identical at any shard count (DESIGN.md §13).
 */
class AdvancePhase
{
  public:
    virtual ~AdvancePhase() = default;

    /** A1: decide sends for @p shard (snapshot reads only). */
    virtual void arbitrate(unsigned shard) = 0;

    /** Coordinator: audit the decided schedules (audit cycles). */
    virtual void auditGrants() = 0;

    /** A2: execute @p shard's sends on shard-owned state. */
    virtual void pop(unsigned shard) = 0;

    /** Whether A3 must run serially on the coordinator. */
    virtual bool coordinatorExchange() const = 0;

    /** A3, serial form: apply all moves in global order. */
    virtual void exchangeSerial() = 0;

    /** A3, sharded form: apply moves landing on @p shard. */
    virtual void exchange(unsigned shard) = 0;

    /** A3b: coordinator tail of the sharded exchange. */
    virtual void finishExchange() = 0;
};

/** Policy knobs of a synchronized run (topology passed separately). */
struct SyncConfig
{
    BufferPlacement placement = BufferPlacement::Input;
    BufferType bufferType = BufferType::Damq; ///< input placement only
    std::uint32_t slotsPerBuffer = 4; ///< per input port's worth
    FlowControl protocol = FlowControl::Blocking;
    ArbitrationPolicy arbitration = ArbitrationPolicy::Smart;
    std::uint32_t staleThreshold = 8;

    /**
     * Switching granularity.  PacketSync (the default) is the
     * paper's synchronized whole-packet transfer and leaves every
     * historical result byte-identical.  Wormhole and
     * VirtualCutThrough move one flit per link per cycle under
     * credit (or on-off) flow control; both require input-buffered
     * placement and are validated by FlowControlScheme::make.
     */
    Switching switching = Switching::PacketSync;

    /**
     * Buffer-sharing (admission) policy applied to every input
     * buffer, plus the VOQ private-slot count.  The default static
     * configuration reproduces the historical rules bit-exactly.
     */
    SharingPolicyConfig sharing;

    /**
     * Traffic classes stamped onto generated packets (source id
     * modulo this count; 1 = everything class 0, the historical
     * behaviour).  Only the ClassQos sharing policy reads the
     * class, so class counts never perturb other configurations.
     */
    std::uint32_t trafficClasses = 1;

    /** Flits per packet at flit granularity (= Packet::lengthSlots;
     *  ignored in PacketSync mode, where packets stay one slot). */
    std::uint32_t flitsPerPacket = 4;
    std::string traffic = "uniform"; ///< pattern name (see makeTraffic)
    double hotSpotFraction = 0.05;   ///< used when traffic == "hotspot"

    /**
     * Grid side length enabling the "transpose" pattern (0 = not a
     * square grid; "transpose" then falls through to makeTraffic).
     */
    std::uint32_t transposeSide = 0;

    double offeredLoad = 0.5; ///< packets/cycle/source

    /**
     * Burstiness factor B >= 1 (see NetworkConfig::burstiness).
     * Deprecated alias: values > 1 (with the workload kind left at
     * its Geometric default) select the two-state OnOff injection
     * process, bit-identical to the historical burst source.  New
     * code should set common.workload instead.
     */
    double burstiness = 1.0;

    /** Mean burst ("on" period) length in cycles when B > 1. */
    Cycle meanBurstCycles = 8;

    /**
     * Clocks per network cycle for latency reporting (the Omega
     * simulator reports in clock cycles at 12 clocks/cycle; the
     * grid simulators report in cycles, scale 1).
     */
    double latencyUnitScale = 1.0;

    /** Audit scope name for the packet-accounting record. */
    const char *accountingScope = "network";

    /** Seed, warmup/measure schedule, shards, faults, telemetry. */
    SimCommonConfig common;
};

/** Results of one measured synchronized run. */
struct SyncResult
{
    NetworkCounters window; ///< counters within the window
    Cycle measuredCycles = 0;

    /** Delivered packets per endpoint per cycle. */
    double deliveredThroughput = 0.0;

    /** Offered packets per endpoint per cycle (echo). */
    double offeredLoad = 0.0;

    /** Fraction of generated packets discarded (both kinds). */
    double discardFraction = 0.0;

    /** In-network latency statistics, in latencyUnitScale units. */
    RunningStats latency;

    /** Switch-to-switch hops per delivered packet. */
    RunningStats hops;

    /** Mean source-queue length sampled each cycle (blocking). */
    double avgSourceQueueLen = 0.0;

    /** Mean buffered packets per switch sampled each cycle. */
    double avgSwitchOccupancy = 0.0;

    /** Jain fairness index over per-source mean latencies. */
    double latencyFairness = 1.0;

    /** Largest per-source mean latency. */
    double worstSourceLatency = 0.0;

    /** Median in-network latency (histogram estimate). */
    double latencyP50 = 0.0;

    /** 99th-percentile in-network latency (histogram estimate). */
    double latencyP99 = 0.0;

    /**
     * End-to-end latency tail (generation to sink, source-queue
     * wait included), in latencyUnitScale units, from the
     * log-bucketed TailHistogram.  In-network latency above starts
     * at injection; under back-pressure the difference is exactly
     * the queueing delay the tail percentiles exist to expose.
     */
    double e2eLatencyP50 = 0.0;
    double e2eLatencyP99 = 0.0;
    double e2eLatencyP999 = 0.0;

    /** Delivered packets the e2e percentiles summarize. */
    std::uint64_t e2eSamples = 0;

    /** Per-class end-to-end tail (populated when trafficClasses > 1). */
    struct ClassTail
    {
        std::uint32_t trafficClass = 0;
        std::uint64_t samples = 0;
        double p50 = 0.0;
        double p99 = 0.0;
        double p999 = 0.0;
    };
    std::vector<ClassTail> classLatency;
};

/**
 * The synchronized engine.  Construct over a topology (which must
 * outlive the engine), then run() a complete warmup+measure
 * experiment or drive step() manually (tests).
 */
class SyncEngine final : public SimEngine
{
  public:
    SyncEngine(const Topology &topology, const SyncConfig &config);

    /** Warm up, measure, and summarize. */
    SyncResult run();

    /** Topology in use. */
    const Topology &topology() const { return topo; }

    /** Policy configuration in use. */
    const SyncConfig &config() const { return cfg; }

    /** Shards actually in use (after validation/degradation). */
    unsigned shards() const { return shardPool->shards(); }

    /** Switch @p sw (test access). */
    SwitchUnit &switchUnit(SwitchId sw) { return *switches[sw]; }
    const SwitchUnit &switchUnit(SwitchId sw) const
    {
        return *switches[sw];
    }

    /** Lifetime counters since construction. */
    const NetworkCounters &lifetime() const { return counters; }

    /** Packets currently buffered inside switches. */
    std::uint64_t packetsInFlight() const;

    /** Packets currently waiting in source queues. */
    std::uint64_t packetsAtSources() const;

    /** Validate every buffer's invariants (tests). */
    void debugValidate() const;

    /**
     * Stop generating and step until the network and source queues
     * are empty, or @p max_cycles pass.  Returns true when fully
     * drained.
     */
    bool drain(Cycle max_cycles);

    /**
     * Deterministic diagnostic snapshot: per-switch occupancy and
     * head-of-line destinations in SwitchId order, with both seeds
     * echoed.
     */
    std::string snapshotText() const;

    /** The injection process driving the sources (stats access). */
    const InjectionProcess &injection() const
    {
        return traffic.process();
    }

    /**
     * Record every staged injection as a (cycle, src, dest) trace
     * entry into @p out (nullptr stops recording).  Feeding the
     * recorded entries back through the trace workload reproduces
     * the run's injections exactly (tests).
     */
    void recordInjectionsTo(std::vector<WorkloadTraceEntry> *out)
    {
        injectionRecord = out;
    }

    /** Adds the link layer's recovery counters (when enabled). */
    FaultReport faultReport() const override;

    /** The link layer, or nullptr when recovery is off (tests). */
    const LinkLayer *linkLayerOrNull() const { return linkLayer.get(); }

    /** The flow-control scheme governing this run. */
    const FlowControlScheme &flowScheme() const { return *scheme; }

    /** Whether this engine advances flit by flit. */
    bool flitMode() const { return flit != nullptr; }

    /** Lifetime credits consumed by flit sends (0 in packet mode). */
    std::uint64_t creditsIssued() const
    {
        return flit ? flit->creditsIssued : 0;
    }

    /** Lifetime credits handed back by downstream buffers. */
    std::uint64_t creditsReturned() const
    {
        return flit ? flit->creditsReturned : 0;
    }

    /**
     * Whether every link's credit counters are back at their caps —
     * true exactly when no packet occupies any link-fed buffer
     * (credit conservation; trivially true in packet mode).
     */
    bool flitCreditsAtRest() const;

  protected:
    void phaseFaults() override;   ///< pre-rolls + structural leaks
    void phaseAdvance() override;  ///< arbitrate, pop, deliver
    void phaseInject() override;   ///< generate + inject at sources
    void phaseAudit() override;    ///< periodic invariant audit
    void phaseWatchdog() override; ///< per-cycle watchdog bookkeeping
    void onMeasuredCycle() override;
    void beginMeasurement() override;
    void configureTelemetry(obs::Telemetry &t) override;

  private:
    /**
     * Build the traffic source: resolve the legacy burstiness alias
     * (burstiness > 1 with a Geometric workload selects OnOff) and
     * construct the injection process, whose factory validates all
     * workload parameters.
     */
    static TrafficSource makeSource(const Topology &topology,
                                    const SyncConfig &config);

    /**
     * Drain-and-measure schedule for the batch workload: measure
     * from cycle 0 until every batch packet is delivered (or the
     * warmup+measure cycle budget runs out); the measured window is
     * the actual cycle count, recorded in batchCycles.
     */
    void runBatchSchedule();

    /**
     * Shard count after validation: fatal when it exceeds the
     * switch count or placement is not input-buffered; degrades to
     * 1 (with a warning) when telemetry is enabled, because the
     * queue probes sit inside the buffer push/pop hot path.
     */
    static unsigned effectiveShards(const Topology &topology,
                                    const SyncConfig &config);

    /** Fill the flat per-link channel tables (SoA hot-path data). */
    void buildChannelTables();

    /** Trace a packet lost in flight: close its flow, mark @p why. */
    void traceLoss(const Packet &pkt, const char *why);

    // --- the sharded advance (input-buffered placement) ---

    /** One in-flight hop: the packet and the switch it left. */
    struct Move
    {
        SwitchId sw;
        Packet packet; ///< outPort = local output it left through
    };

    /** Per-shard working state; padded so shards never share lines. */
    struct alignas(64) ShardScratch
    {
        /** Moves popped by this shard's switches, ascending id —
         *  the boundary-exchange mailbox read by every shard (and
         *  the coordinator) in phase A3. */
        std::vector<Move> moves;

        /** Per-switch pop scratch, reused each cycle. */
        std::vector<Packet> sent;

        /** Switch currently arbitrating (read by canSend). */
        SwitchId arbSwitch = 0;

        /** Capacity check bound to arbSwitch, built once. */
        CanSendFn canSend;

        // Per-cycle counter deltas, summed by the coordinator at
        // the phase barrier (integer sums are order-independent).
        std::uint64_t discardedInternal = 0;
        std::uint64_t injected = 0;
        std::uint64_t discardedAtEntry = 0;
        std::uint64_t faultDropped = 0;
    };

    /** Advance for input-buffered placement: A1/A2/A3 phases. */
    void phaseAdvanceInput();

    /** Advance for central/output placement (single shard only). */
    void phaseAdvanceShared();

    /** A1: arbitrate this shard's switches (snapshot, read-only). */
    void advanceArbitrate(unsigned shard);

    /** A2: pop granted packets into this shard's move list. */
    void advancePop(unsigned shard);

    /** A3 (parallel form): apply every shard's moves that land on
     *  a switch this shard owns; sinks are left to the coordinator. */
    void advanceReceive(unsigned shard);

    /** Drive one advance through the AdvancePhase sequence:
     *  arbitrate ∥ → audit → pop ∥ → exchange (serial or ∥ +
     *  finish).  The barriers between sharded phases live here. */
    void runAdvancePhases(AdvancePhase &phase);

    /** Coordinator grant-legality audit over all switches (the
     *  auditGrants step shared by packet and flit advances). */
    void auditGrantsNow();

    /** Serial A3 of the whole-packet advance: the global move list
     *  crosses wires under faults / link-layer recovery. */
    void exchangeMovesSerial();

    /** A3b of the whole-packet advance: sink deliveries and counter
     *  sums in global move order. */
    void finishMovesExchange();

    /** The whole-packet AdvancePhase — PR 7's synchronized advance
     *  expressed on the shared sequencer, bit-identical to it. */
    class PacketAdvance final : public AdvancePhase
    {
      public:
        explicit PacketAdvance(SyncEngine &e) : eng(e) {}

        void arbitrate(unsigned shard) override
        {
            eng.advanceArbitrate(shard);
        }
        void auditGrants() override { eng.auditGrantsNow(); }
        void pop(unsigned shard) override { eng.advancePop(shard); }
        bool coordinatorExchange() const override
        {
            // Per-packet fault draws and link-layer protocol state
            // are global and order-sensitive.
            return eng.linkLayer != nullptr || eng.injector.enabled();
        }
        void exchangeSerial() override { eng.exchangeMovesSerial(); }
        void exchange(unsigned shard) override
        {
            eng.advanceReceive(shard);
        }
        void finishExchange() override { eng.finishMovesExchange(); }

      private:
        SyncEngine &eng;
    };

    // --- flit-level switching (wormhole / virtual cut-through) ---

    /** No feeding link: the buffer is filled by injection only. */
    static constexpr LinkId kNoFeedLink = ~LinkId(0);

    /**
     * Per-link stream state: the packet that owns the wire (and its
     * downstream VC) from its head-flit grant until its tail flit
     * crosses.  While a stream is active no other packet may place
     * a flit on the link — VC non-interleaving is structural.
     */
    struct FlitStream
    {
        PacketId packet = 0;
        bool active = false;
        PortId input = kInvalidPort; ///< upstream input buffer
        QueueKey srcKey{};           ///< upstream queue it drains
        QueueKey dstKey{};           ///< downstream queue (set at
                                     ///< head arrival, phase A3)
        VcId linkVc = 0;             ///< VC occupied on the wire
    };

    /** One flit crossing a link this cycle.  @c pkt carries the
     *  full record for Head (pushed downstream) and Tail/HeadTail
     *  (sink delivery); Body flits need only the link. */
    struct FlitMove
    {
        LinkId link;
        VcId vc; ///< virtual channel the flit crossed on
        FlitType type;
        Packet pkt;
    };

    /** A credit hand-back deferred to the end-of-cycle barrier, so
     *  senders always read start-of-cycle counter values. */
    struct CreditReturn
    {
        LinkId link;
        VcId vc;
    };

    /** Per-shard flit scratch; padded like ShardScratch. */
    struct alignas(64) FlitShard
    {
        std::vector<FlitMove> moves;
        std::vector<CreditReturn> returns;
        GrantList tailGrants;              ///< per-switch pop batch
        std::vector<VcId> tailVcs;         ///< wire VC per tail grant
        std::vector<std::uint32_t> reads;  ///< per-input read budget
        std::uint64_t issued = 0; ///< credits consumed this cycle
    };

    /** All flit-mode state; null in PacketSync mode, so the packet
     *  engine pays nothing for the flit layer's existence. */
    struct FlitState
    {
        std::vector<FlitStream> streams; ///< link * numVcs + vc
        /** A1's wire verdict, by link: 0 = idle, else 1 + the VC of
         *  the continuation that owns the wire this cycle.  Virtual
         *  channels flit-multiplex the physical link — a stalled
         *  packet holds only its VC stream, never the wire. */
        std::vector<std::uint8_t> sendFlit;
        /** Signed: an in-place send (the arriving flit lands in a
         *  slot its packet already holds) is allowed at zero
         *  credits — the counter dips to -1 within the cycle and
         *  the barrier-applied rebate restores it before any A1
         *  decision can observe it. */
        std::vector<std::int32_t> linkCredits; ///< by LinkId
        std::vector<std::int32_t> linkCreditCap;
        std::vector<std::int32_t> vcCredits; ///< link * numVcs + vc
        std::vector<std::int32_t> vcCreditCap; ///< by LinkId
        std::vector<LinkId> feedLink; ///< sw*ports+in -> feeder link
        std::vector<FlitShard> shard;
        std::vector<std::uint64_t> sends; ///< per-switch flit motion
        std::uint64_t creditsIssued = 0;
        std::uint64_t creditsReturned = 0;
    };

    /** Validate the flit gating rules and build FlitState. */
    void setupFlitState();

    /** A1: decide this cycle's flit sends for @p shard's switches —
     *  stream continuations first (claiming wires and read ports in
     *  link order), then new head grants through the arbiter. */
    void flitArbitrate(unsigned shard);

    /** Head-admission check bound into the arbiter's CanSendFn. */
    bool flitCanSendHead(SwitchId sw, QueueKey out_key,
                         const Packet &pkt);

    /** Whether active stream @p st may send its next flit. */
    bool flitCanContinue(LinkId link, const FlitStream &st,
                         const Packet &head);

    /** Flits already committed to @p link's downstream buffer but
     *  not yet arrived (active streams' unsent remainders) — VCT
     *  head admission must leave room for them. */
    std::uint32_t flitCommitted(LinkId link);

    /** A2: execute @p shard's decided sends — advance flit cursors,
     *  pop tails, consume own links' credits, defer hand-backs. */
    void flitPop(unsigned shard);

    /** A3 (sharded): apply flit arrivals landing on @p shard. */
    void flitExchange(unsigned shard);

    /** A3b: sink deliveries in global move order, then apply the
     *  deferred credit returns (visible next cycle). */
    void flitFinishExchange();

    /** Consume one credit for a flit sent over @p link. */
    void flitConsumeCredit(FlitShard &fs, LinkId link, VcId vc);

    /** Defer a credit return to the link feeding (sw, input). */
    void flitDeferReturn(FlitShard &fs, SwitchId sw, PortId input,
                         VcId vc);

    /** Flit-layer invariants for the periodic audit: stream/queue
     *  consistency (a tail always frees its wire and VC), credit
     *  caps, and one partial packet per link-fed buffer. */
    std::vector<std::string> flitCheckInvariants() const;

    /** The flit-granular AdvancePhase.  Its exchange is always
     *  sharded: the fault classes whose per-packet draws would
     *  force a serial exchange are rejected at construction. */
    class FlitAdvance final : public AdvancePhase
    {
      public:
        explicit FlitAdvance(SyncEngine &e) : eng(e) {}

        void arbitrate(unsigned shard) override
        {
            eng.flitArbitrate(shard);
        }
        void auditGrants() override { eng.auditGrantsNow(); }
        void pop(unsigned shard) override { eng.flitPop(shard); }
        bool coordinatorExchange() const override { return false; }
        void exchangeSerial() override; ///< unreachable; panics
        void exchange(unsigned shard) override
        {
            eng.flitExchange(shard);
        }
        void finishExchange() override { eng.flitFinishExchange(); }

      private:
        SyncEngine &eng;
    };

    /** The blocking back-pressure / discard capacity check for a
     *  departure from switch @p sw, on flat channel tables. */
    bool canSendFrom(SwitchId sw, QueueKey out_key,
                     const Packet &pkt);

    /** VcAllocator::linkVc on the flat channel tables. */
    VcId linkVcFlat(const Packet &pkt, LinkId link, PortId out) const
    {
        if (numVcs <= 1 || vcPolicyNone)
            return 0;
        const std::int32_t dim = portDim[out];
        if (dim < 0)
            return 0;
        VcId vc = 0;
        if (pkt.inPort != kInvalidPort && portDim[pkt.inPort] == dim)
            vc = pkt.vc;
        if (chanDateline[link])
            vc = static_cast<VcId>(numVcs - 1);
        return vc;
    }

    /** I2: inject staged packets at this shard's sources. */
    void injectShard(unsigned shard);

    /** Offer @p pkt to its injection point; true if accepted.
     *  Counter deltas go to @p sc (summed at the barrier). */
    bool tryInject(NodeId src, Packet pkt, ShardScratch &sc);

    /** Record a packet leaving the fabric at @p sink. */
    void deliver(const Packet &pkt, NodeId sink);

    // --- recovery-layer helpers (all no-ops when recovery is off) ---

    /** Routing decision for @p pkt at @p sw (up*-down* tables when
     *  rerouting, the topology's minimal route otherwise). */
    PortId routeFor(SwitchId sw, const Packet &pkt);

    /**
     * Lookahead of the routing decision @p pkt will face at
     * @p next_sw after crossing (sw, out) — the capacity checks
     * need it one hop early, phase bit included.
     */
    PortId routeAfterHop(SwitchId sw, PortId out, SwitchId next_sw,
                         const Packet &pkt);

    /** Whether a hard fault loses frames on (sw, out) this cycle. */
    bool hardFaultLoss(SwitchId sw, PortId out);

    /**
     * Carry one frame across its link under the recovery protocol:
     * roll the hard-fault and transient-fault hooks, verify the
     * frame CRC at the receiver, and ack (forward/deliver) or fail
     * (hold + schedule retry / declare the link dead).  Returns
     * true when the frame crossed and was consumed.
     */
    bool wireCross(SwitchId sw, const Packet &pristine,
                   std::uint32_t seq, bool is_retry);

    /** Failure path of wireCross (hold, backoff, dead-link). */
    void frameFailed(SwitchId sw, LinkId link, const Packet &pristine,
                     std::uint32_t seq, bool is_retry, bool nacked);

    /** Link @p link exhausted its retries: kill or re-home it. */
    void handleDeadLink(SwitchId sw, LinkId link);

    /** Apply the dead-link declarations collected last cycle.
     *  Deferring them to this pre-pass keeps the routing function
     *  fixed between a cycle's capacity checks and its moves. */
    void applyDeadLinks();

    /** Move everything queued onto dead output @p out at @p sw into
     *  the re-home queue (reroute policy only). */
    void rehomeQueuedPackets(SwitchId sw, PortId out);

    /**
     * Link-state epoch change: re-key every queued packet in the
     * network against the new routing function.  Queue keys were
     * assigned under the previous orientation; a single stale key
     * is a channel dependency the up*-down* ordering does not
     * cover, and one such edge can close a dependency cycle that
     * wedges the whole fabric (reroute policy only).
     */
    void rekeyQueuedPackets();

    /** Retry due retransmissions, oldest links first. */
    void processRetries();

    /** Re-inject re-homed packets whose detour has room. */
    void processRehomes();

    /** Revive dead links whose fault episode has ended. */
    void probeDeadLinks();

    const Topology &topo;
    SyncConfig cfg;
    VcAllocator vcAlloc; ///< per-hop VC assignment (common.vcs VCs)
    TrafficSource traffic;

    /**
     * Switch storage.  Input placement keeps the concrete
     * SwitchModel values in one contiguous vector (cache-friendly,
     * devirtualized where the engine names the type); the shared
     * placements keep heap units behind the SwitchUnit interface.
     * `switches` is the uniform non-owning view in flat SwitchId
     * order that generic code (audits, watchdog, telemetry,
     * snapshots) walks.
     */
    std::vector<SwitchModel> switchStore;
    std::vector<std::unique_ptr<SwitchUnit>> switchHeap;
    std::vector<SwitchUnit *> switches;

    /** Per-source backlog (used by the blocking protocol only). */
    std::vector<RingQueue<Packet>> sourceQueues;

    /**
     * Link-level retransmission state; nullptr unless the recovery
     * policy enables it, so baselines allocate nothing.
     */
    std::unique_ptr<LinkLayer> linkLayer;

    /** Dead-link detour routing; nullptr unless reroute is on. */
    std::unique_ptr<FaultRouter> faultRouter;

    /** Packet displaced off a dead link, waiting to re-enter. */
    struct Rehome
    {
        SwitchId sw;
        Packet pkt;
    };

    /** Displaced packets awaiting re-injection on their detour. */
    std::deque<Rehome> rehomeQueue;

    /** A retry budget exhausted this cycle; declared next cycle. */
    struct DeadLink
    {
        SwitchId sw;
        LinkId link;
    };

    /** Declarations deferred to the next cycle's pre-pass. */
    std::vector<DeadLink> deadPending;

    std::vector<std::uint64_t> prevTransmitted; ///< per component
    std::vector<std::uint32_t> nextSeq;         ///< per source

    PacketId nextPacketId = 0;
    NetworkCounters counters;
    NetworkCounters windowStart; ///< counters at measurement start

    // --- flat channel tables (LinkId = sw * ports + out) ---
    // One array load replaces a virtual Topology::hop()/geometry
    // call in the capacity check and the move loop.
    std::vector<std::uint8_t> chanToSink;
    std::vector<NodeId> chanSink;
    std::vector<SwitchId> chanNextSwitch;
    std::vector<PortId> chanNextInput;
    std::vector<std::uint8_t> chanDateline;
    std::vector<std::int32_t> portDim; ///< per local port
    std::uint32_t portCount = 0; ///< topo.portsPerSwitch(), cached
    VcId numVcs = 1;
    bool vcPolicyNone = false;

    // --- sharding ---
    std::unique_ptr<ShardRuntime> shardPool;
    ShardPlan plan;
    std::vector<ShardScratch> shardScratch;
    PacketAdvance packetAdvance{*this};
    FlitAdvance flitAdvance{*this};

    /** Flow-control scheme (validates the switching × protocol
     *  combination at construction); never null after the ctor. */
    std::unique_ptr<FlowControlScheme> scheme;

    /** Flit-mode state; null in PacketSync mode (zero cost). */
    std::unique_ptr<FlitState> flit;

    /** Per-switch grant store written in A1, read in A2 (and by
     *  the grant-legality audit); reused every cycle. */
    std::vector<GrantList> grantStore;

    /** Per-source staging written by the coordinator's generation
     *  pass (I1), consumed by the owning shard in I2. */
    std::vector<std::uint8_t> stagedHas;
    std::vector<Packet> stagedPkt;

    // Per-cycle scratch for the shared-placement advance, reused
    // every cycle (reserved at construction).
    std::vector<Move> moveScratch;
    std::vector<Packet> sentScratch;
    std::unordered_map<std::uint64_t, std::uint32_t> pendingScratch;

    /**
     * Links a successful retransmission already used this cycle
     * (recovery only): a link carries at most one frame per cycle,
     * so arbitration must not grant a fresh frame onto it.  Dense
     * flag array plus the list of set entries, cleared per cycle.
     */
    std::vector<std::uint8_t> linkUsed;
    std::vector<LinkId> linksUsedScratch;

    RunningStats latencyStats;
    Histogram latencyHist; ///< for the p50/p99 estimates

    /** End-to-end (generation to sink) latency tail histogram. */
    TailHistogram e2eHist;

    /** Per-class e2e histograms; empty unless trafficClasses > 1. */
    std::vector<TailHistogram> e2eClassHist;

    /** Injection-trace recording sink (tests); nullptr when off. */
    std::vector<WorkloadTraceEntry> *injectionRecord = nullptr;

    /** Cycles the batch drain-and-measure schedule actually ran. */
    Cycle batchCycles = 0;

    RunningStats hopStats;
    RunningStats sourceQueueSamples;
    RunningStats switchOccupancySamples;
    std::vector<RunningStats> perSourceLatency;
};

} // namespace core
} // namespace damq

#endif // DAMQ_NETWORK_CORE_SYNC_ENGINE_HH

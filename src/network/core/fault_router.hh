/**
 * @file
 * FaultRouter: deadlock-free up*-down* rerouting around dead links.
 *
 * When the recovery protocol declares a link dead, minimal DOR can
 * no longer be followed blindly — and naive shortest-live-path
 * detours are worse than useless under blocking flow control: each
 * per-destination detour tree is acyclic on its own, but their
 * union shares channels, and the combined channel-dependency graph
 * cycles in ways the dateline VCs (which only cover minimal DOR)
 * cannot break.  The first bench run of that scheme deadlocked at
 * every failed-link fraction.
 *
 * Real irregular/faulty fabrics solve this with *up*-down* routing
 * (Autonet): orient every live link by a BFS spanning order from a
 * root — the end closer to the root (lower level, lower id on ties)
 * is "up" — and only allow routes that take zero or more up-hops
 * followed by zero or more down-hops.  Up-hops strictly decrease
 * the (level, id) key and down-hops strictly increase it, and no
 * route ever turns down→up, so the channel-dependency graph is
 * acyclic and blocking flow control cannot deadlock, with any
 * number of virtual channels.
 *
 * The router keeps one bit of state on the packet (Packet::
 * routeDown, "has taken a down-hop"): a climbing packet may go
 * either way, a descending packet may only continue down.  Per
 * destination it computes two tables over the live graph —
 * distDown (shortest all-down distance) by reverse BFS from the
 * sink, and distLegal (shortest up*-then-down* distance) by a DP
 * in increasing key order over the acyclic up-edges — and routes
 * down whenever descending is already optimal.  Both phases
 * strictly decrease their distance-to-go, so progress is
 * guaranteed within a link-state epoch.
 *
 * While no link is dead the router is pass-through: it returns the
 * topology's own (minimal, deterministic) route, so rerouting costs
 * nothing until a failure actually exists.  Destinations with no
 * legal up*-down* route are reported as unroutable (an invalid
 * port) and the engine drops such packets into the fault
 * accounting — the honest behavior for a partitioned fabric, and
 * the only safe one: any off-ordering fallback hop can close a
 * dependency cycle.
 *
 * Determinism: the BFS visits switches in ascending SwitchId and
 * ports in ascending PortId, so the same mask always yields the
 * same orientation and tables, independent of traffic or
 * declaration order.
 */

#ifndef DAMQ_NETWORK_CORE_FAULT_ROUTER_HH
#define DAMQ_NETWORK_CORE_FAULT_ROUTER_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"
#include "network/core/link_state.hh"
#include "network/core/topology.hh"

namespace damq {
namespace core {

/** Up*-down* next-hop router over a LinkStateMask. */
class FaultRouter
{
  public:
    /** One routing decision: the port, and whether taking it is a
     *  down-hop (commits the packet to descending). */
    struct Hop
    {
        PortId port = kInvalidPort;
        bool down = false;
    };

    /** Both references must outlive the router. */
    FaultRouter(const Topology &topology, const LinkStateMask &mask);

    /**
     * Routing decision at @p sw for a packet to @p dest whose
     * down-phase bit is @p went_down.  Passes through to
     * topology.route() while the mask is clean; returns
     * port = kInvalidPort when @p dest is unreachable from @p sw
     * under the up*-down* rule (the caller must drop the packet —
     * any off-ordering hop risks a dependency cycle).
     */
    Hop nextHop(SwitchId sw, NodeId dest, bool went_down);

    /**
     * Whether the hop out of @p sw through @p out descends the
     * current orientation (false while the mask is clean).  The
     * engine uses it to update Packet::routeDown when a frame
     * actually crosses the link.
     */
    bool downHop(SwitchId sw, PortId out);

    /** Whether any link is currently dead (rerouting in effect). */
    bool active() const { return mask.deadLinks() != 0; }

    /**
     * Whether a packet buffered at input @p in of @p sw that waits
     * for output @p out forms a down→up turn under the current
     * orientation — the one channel-dependency edge the up*-down*
     * order does not cover.  Always false while the mask is clean,
     * on the local injection buffer (no fabric link feeds it), and
     * for delivery hops.  The engine checks it when re-keying
     * buffered packets on an epoch change: a packet whose restart
     * route would climb out of a down-link's buffer must re-enter
     * through the local port instead.
     */
    bool illegalTurn(SwitchId sw, PortId in, PortId out);

  private:
    /** Rebuild orientation + drop cached tables on a mask change. */
    void refresh();

    /** BFS levels from the root over the live graph. */
    void rebuildOrientation();

    /** (Re)build the per-destination tables for @p dest. */
    void buildTable(NodeId dest);

    /** Up*-down* order: true iff @p a is nearer the root. */
    bool keyLess(SwitchId a, SwitchId b) const
    {
        return level[a] != level[b] ? level[a] < level[b] : a < b;
    }

    const Topology &topo;
    const LinkStateMask &mask;

    /** Reverse adjacency: for each switch, the (sw, out) links
     *  feeding it — fixed by the immutable topology. */
    struct InEdge
    {
        SwitchId from;
        PortId out;
    };
    std::vector<std::vector<InEdge>> inEdges;

    /** Delivery ports: for each endpoint, the (sw, out) links that
     *  reach its sink. */
    std::vector<std::vector<InEdge>> sinkEdges;

    std::uint64_t builtVersion = 0;
    bool orientationBuilt = false;

    /** BFS level from the root (kUnreached = disconnected). */
    std::vector<std::uint32_t> level;

    /** Switch ids sorted by keyLess — topological for up-edges. */
    std::vector<SwitchId> keyOrder;

    /** Per-destination routing state over the live graph. */
    struct DestTable
    {
        std::vector<PortId> downPort;        ///< best descending hop
        std::vector<std::uint32_t> distDown; ///< all-down distance
        std::vector<PortId> upPort;          ///< best climbing hop
        std::vector<std::uint32_t> distLegal; ///< up*-down* distance
    };
    std::vector<std::uint8_t> tableBuilt; ///< per destination
    std::vector<DestTable> tables;        ///< per destination

    // BFS scratch, reused across builds.
    std::vector<SwitchId> queueScratch;
};

} // namespace core
} // namespace damq

#endif // DAMQ_NETWORK_CORE_FAULT_ROUTER_HH

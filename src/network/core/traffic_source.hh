/**
 * @file
 * Workload generation for the simulation core: pattern construction
 * plus the per-source injection process, factored out of the four
 * simulators.
 *
 * makeTrafficPattern() centralizes the name -> TrafficPattern
 * dispatch every simulator used to duplicate ("hotspot" takes the
 * configured fraction, "transpose" is only available on square
 * grids, everything else goes through makeTraffic()).
 *
 * TrafficSource is the façade the engines drive: it owns a
 * destination pattern plus an InjectionProcess (workload.hh) and
 * resolves the destination of each staged packet — the process may
 * pin it (closed-loop replies, trace replay), otherwise the pattern
 * draws one.  Draw order is part of the repo's determinism
 * contract: for the default geometric / two-state alias workloads,
 * shouldGenerate() makes exactly the same PRNG draws, in the same
 * order, as the pre-core simulators — burst on/off transitions
 * (only when burstiness > 1) followed by one generation draw.
 */

#ifndef DAMQ_NETWORK_CORE_TRAFFIC_SOURCE_HH
#define DAMQ_NETWORK_CORE_TRAFFIC_SOURCE_HH

#include <cstdint>
#include <memory>
#include <string>

#include "common/random.hh"
#include "common/types.hh"
#include "network/core/workload.hh"
#include "network/traffic.hh"

namespace damq {
namespace core {

/**
 * Build the destination pattern named @p name for @p num_nodes
 * endpoints.  @p hot_spot_fraction parameterizes "hotspot";
 * "transpose" is accepted only when @p transpose_side > 0 (a
 * transpose_side x transpose_side grid); other names go through
 * makeTraffic() (fatal on unknown names).
 */
std::unique_ptr<TrafficPattern> makeTrafficPattern(
    const std::string &name, std::uint32_t num_nodes,
    double hot_spot_fraction, std::uint32_t transpose_side,
    std::uint64_t seed);

/** Destination pattern + per-source injection process. */
class TrafficSource
{
  public:
    /**
     * @param pattern         destination pattern (owned).
     * @param num_sources     independent generation processes.
     * @param gen_probability mean per-cycle offered load.
     * @param workload        injection-process selection/parameters
     *                        (validated in makeInjectionProcess()).
     * @param traffic_classes QoS class count, for validation
     *                        messages only.
     */
    TrafficSource(std::unique_ptr<TrafficPattern> pattern,
                  std::uint32_t num_sources, double gen_probability,
                  const WorkloadConfig &workload,
                  std::uint32_t traffic_classes = 1);

    /**
     * Offer decision for @p src this cycle (the process may draw
     * from @p rng; see the draw-order contract above).
     */
    bool shouldGenerate(NodeId src, Cycle now, Random &rng)
    {
        return process_->shouldGenerate(src, now, rng);
    }

    /**
     * Offer decision while the engine drains: pending closed-loop
     * work only, never an RNG draw.
     */
    bool drainPending(NodeId src, Cycle now)
    {
        return process_->drainPending(src, now);
    }

    /**
     * Destination of the packet staged by the last accepted offer:
     * the process's pinned destination if it set one, else a
     * pattern draw.
     */
    NodeId destinationFor(NodeId src, Random &rng)
    {
        const NodeId pinned = process_->stagedDestination();
        if (pinned != kInvalidNode)
            return pinned;
        return pattern_->destinationFor(src, rng);
    }

    /** Role of the packet staged by the last accepted offer. */
    PacketKind stagedKind() const { return process_->stagedKind(); }

    /** Delivery callback for closed-loop processes. */
    void onDelivered(const Packet &pkt, Cycle now)
    {
        process_->onDelivered(pkt, now);
    }

    /** Whether the process will never offer another packet. */
    bool exhausted() const { return process_->exhausted(); }

    /** Offers owed but not yet staged (queued replies). */
    std::uint64_t pendingOffers() const
    {
        return process_->pendingOffers();
    }

    /** The injection process in use. */
    const InjectionProcess &process() const { return *process_; }

    /** The destination pattern in use. */
    TrafficPattern &pattern() { return *pattern_; }

  private:
    std::unique_ptr<TrafficPattern> pattern_;
    std::unique_ptr<InjectionProcess> process_;
};

} // namespace core
} // namespace damq

#endif // DAMQ_NETWORK_CORE_TRAFFIC_SOURCE_HH

#include "network/core/omega_graph.hh"

#include "common/logging.hh"

namespace damq {
namespace core {

HopTarget
OmegaGraph::hop(SwitchId sw, PortId out) const
{
    const std::uint32_t stage = stageOf(sw);
    const std::uint32_t idx = indexOf(sw);
    HopTarget target;
    if (stage == net.numStages() - 1) {
        target.toSink = true;
        target.sink = net.sinkFor(idx, out);
        return target;
    }
    const StageCoord next = net.nextStageInput(stage, idx, out);
    target.switchId = flatId(stage + 1, next.switchIndex);
    target.inputPort = next.port;
    return target;
}

std::string
OmegaGraph::switchName(SwitchId sw) const
{
    return detail::concat("stage", stageOf(sw), ".sw", indexOf(sw));
}

std::string
OmegaGraph::traceProcessName(std::int64_t pid) const
{
    return detail::concat("stage", pid);
}

std::string
OmegaGraph::traceThreadName(SwitchId sw, PortId port) const
{
    return detail::concat("sw", indexOf(sw), ".in", port);
}

std::string
OmegaGraph::probeName(SwitchId sw, PortId port) const
{
    return detail::concat("s", stageOf(sw), ".sw", indexOf(sw),
                          ".in", port);
}

} // namespace core
} // namespace damq

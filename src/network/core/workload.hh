/**
 * @file
 * The Workload / InjectionProcess API: first-class traffic
 * generation processes for the simulation core, in the style of
 * booksim's trafficmanager.
 *
 * An InjectionProcess decides, per source per cycle, whether a
 * packet is offered to the network, and optionally pins its
 * destination and role (data / request / reply).  Six processes are
 * provided:
 *
 *  - geometric  open-loop Bernoulli at the offered load (the
 *               paper's baseline; one draw per source per cycle).
 *  - onoff      the historical two-state burst source: on a
 *               fraction 1/B of the time, generating at rate
 *               load * B while on (two draws per source per cycle).
 *               The legacy `burstiness` / `meanBurstCycles` configs
 *               are a deprecated alias that selects this process.
 *  - mmpp       2-state Markov-modulated Bernoulli: both states
 *               generate (at load * B and load / B), so unlike
 *               onoff the low state still trickles.  Mean rate is
 *               exactly the offered load; two draws per source per
 *               cycle.
 *  - batch      every source owes a fixed quota of packets; the
 *               engine runs drain-and-measure (run until the batch
 *               is delivered, report the actual cycle count).
 *  - reqreply   closed loop: delivery of a request schedules a
 *               reply from its destination, and a per-source
 *               outstanding-request window gates new injection.
 *  - trace      replay a line-based "cycle src dest" trace; no RNG
 *               draws at all.
 *
 * RNG draw-order contract (DESIGN.md §16): every draw an
 * InjectionProcess makes happens inside shouldGenerate() /
 * destination resolution, which the sharded engine calls only on
 * the coordinator thread, in ascending source order, during phase
 * I1.  Closed-loop state mutates only in onDelivered(), which runs
 * on the coordinator in global move order.  Any process honoring
 * this contract is automatically bit-identical at every shard
 * count.
 */

#ifndef DAMQ_NETWORK_CORE_WORKLOAD_HH
#define DAMQ_NETWORK_CORE_WORKLOAD_HH

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/random.hh"
#include "common/types.hh"
#include "queueing/packet.hh"

namespace damq {
namespace core {

/** Which injection process drives the sources. */
enum class WorkloadKind
{
    Geometric, ///< open-loop Bernoulli at the offered load
    OnOff,     ///< two-state burst source (silent between bursts)
    Mmpp,      ///< Markov-modulated Bernoulli (low state trickles)
    Batch,     ///< fixed per-source quota, drain-and-measure
    ReqReply,  ///< closed-loop request-reply with outstanding window
    Trace,     ///< replay a recorded "cycle src dest" trace
};

/** Human-readable workload-kind name. */
const char *workloadKindName(WorkloadKind kind);

/** Parse a case-insensitive workload name; nullopt on bad input. */
std::optional<WorkloadKind> tryWorkloadKindFromString(
    const std::string &name);

/**
 * Workload selection and parameters, carried in SimCommonConfig so
 * every simulator front-end exposes the same `--workload` surface.
 * The offered load itself stays a per-simulator config (it
 * parameterizes sweeps); everything workload-shaped lives here.
 */
struct WorkloadConfig
{
    WorkloadKind kind = WorkloadKind::Geometric;

    /**
     * Peak/average factor B for the modulated processes (onoff
     * needs B > 1; mmpp needs B > 1; ignored by the others).  When
     * the kind is Geometric and a simulator's legacy `burstiness`
     * config exceeds 1, the engine rewrites the workload to OnOff
     * with that B — the deprecated-alias path.
     */
    double burstiness = 1.0;

    /** Mean high-state duration in cycles for onoff / mmpp. */
    Cycle meanBurstCycles = 8;

    /** Packets each source owes under the batch workload (>= 1). */
    std::uint64_t batchPackets = 64;

    /**
     * Maximum outstanding (unanswered) requests per source under
     * the request-reply closed loop (>= 1).
     */
    std::uint32_t replyWindow = 4;

    /** Trace file to replay under the trace workload. */
    std::string traceFile;
};

/** One injection event of a recorded (or hand-written) trace. */
struct WorkloadTraceEntry
{
    Cycle cycle = 0;
    NodeId source = kInvalidNode;
    NodeId dest = kInvalidNode;
};

/** Closed-loop / batch bookkeeping exposed for tests and benches. */
struct WorkloadStats
{
    std::uint64_t requestsSent = 0;      ///< request packets offered
    std::uint64_t requestsDelivered = 0; ///< requests that reached a sink
    std::uint64_t repliesSent = 0;       ///< reply packets offered
    std::uint64_t repliesDelivered = 0;  ///< replies that reached home
    std::uint64_t batchRemaining = 0;    ///< batch packets still owed
};

/**
 * A per-source packet generation process.  The engine drives it
 * from the coordinator thread only:
 *
 *  - shouldGenerate(src, now, rng) once per source per cycle in
 *    ascending source order while traffic is being offered.  A true
 *    return stages one packet; the process may pin its destination
 *    and kind via stagedDestination() / stagedKind(), which the
 *    engine reads immediately after (before the next source's
 *    call).
 *  - drainPending(src, now) replaces shouldGenerate while the
 *    engine drains: no new work may start and no RNG draws are
 *    allowed, but closed-loop processes still get to flush replies
 *    they already owe so conservation can close.
 *  - onDelivered(pkt, now) for every delivered packet, in global
 *    delivery order.
 */
class InjectionProcess
{
  public:
    virtual ~InjectionProcess() = default;

    /** Process name for logs and the BENCH workload descriptor. */
    virtual const char *name() const = 0;

    /** Offer decision for @p src this cycle (may draw from @p rng). */
    virtual bool shouldGenerate(NodeId src, Cycle now, Random &rng) = 0;

    /**
     * Offer decision while draining: only work the process already
     * owes (pending replies); never a new request, never an RNG
     * draw.  Default: nothing pending.
     */
    virtual bool drainPending(NodeId src, Cycle now)
    {
        (void)src;
        (void)now;
        return false;
    }

    /**
     * Destination pinned by the last accepted offer, or kInvalidNode
     * to let the configured TrafficPattern draw one.  Only valid
     * immediately after shouldGenerate()/drainPending() returned
     * true for a source.
     */
    virtual NodeId stagedDestination() const { return kInvalidNode; }

    /** Role of the packet staged by the last accepted offer. */
    virtual PacketKind stagedKind() const { return PacketKind::Data; }

    /** Delivery callback (closed-loop state transitions live here). */
    virtual void onDelivered(const Packet &pkt, Cycle now)
    {
        (void)pkt;
        (void)now;
    }

    /**
     * Whether the process will never offer another packet (batch
     * quota spent, trace exhausted).  Open-loop rate processes
     * always return false.
     */
    virtual bool exhausted() const { return false; }

    /**
     * Offers the process already owes (queued replies) that no
     * packet in the network represents yet — the engine's drain
     * loop must not declare the run finished while these exist.
     */
    virtual std::uint64_t pendingOffers() const { return 0; }

    /** True for processes whose injection reacts to deliveries. */
    virtual bool closedLoop() const { return false; }

    /** Closed-loop / batch counters (zeroes for open-loop kinds). */
    const WorkloadStats &stats() const { return stats_; }

  protected:
    WorkloadStats stats_;
};

/**
 * Build the injection process selected by @p workload, for
 * @p num_sources sources at mean offered load @p offered_load.
 *
 * All workload parameter validation lives here (the single
 * construction path): the offered load must be a probability, and
 * the *peak* rate — load * B for the modulated processes — must not
 * exceed one packet per source per cycle.  @p traffic_classes only
 * sharpens the error text: with QoS stamping, class c receives the
 * full per-source peak from every source stamped c, so an
 * overcommitted peak overloads each class individually, not just
 * the aggregate.  Fatal (with a clear message) on any violation.
 */
std::unique_ptr<InjectionProcess> makeInjectionProcess(
    const WorkloadConfig &workload, std::uint32_t num_sources,
    double offered_load, std::uint32_t traffic_classes = 1);

/**
 * Parse a workload trace: one "cycle src dest" triple per line,
 * '#' comments and blank lines skipped, cycles non-decreasing per
 * source.  Fatal (with the offending line number) on malformed
 * input or out-of-range endpoints.
 */
std::vector<WorkloadTraceEntry> parseWorkloadTrace(
    const std::string &path, std::uint32_t num_nodes);

/** Write @p entries as a trace file parseWorkloadTrace() accepts. */
void writeWorkloadTrace(const std::string &path,
                        const std::vector<WorkloadTraceEntry> &entries);

} // namespace core
} // namespace damq

#endif // DAMQ_NETWORK_CORE_WORKLOAD_HH

/**
 * @file
 * RecoveryPolicy: what the fabric does about link faults.
 *
 *  - none:       detect and count (PR-1 behavior) — lost packets are
 *                charged to the fault counters and that is all.
 *  - retransmit: a link-level retransmission protocol (per-link CRC
 *                over the sealed header, same-cycle ack/nack,
 *                sequence numbers, bounded retry with exponential
 *                backoff) recovers dropped and corrupted frames;
 *                a link that fails maxRetries consecutive attempts
 *                is declared dead and its pending packet is lost.
 *  - retransmit+reroute: additionally, packets queued for a
 *                declared-dead link are re-homed onto live detours
 *                computed from the global link-state mask, so the
 *                fabric keeps delivering around permanent failures.
 *
 * The config rides inside SimCommonConfig; with policy == none the
 * engines allocate no protocol state at all, so baselines stay
 * byte-identical.
 */

#ifndef DAMQ_NETWORK_CORE_RECOVERY_HH
#define DAMQ_NETWORK_CORE_RECOVERY_HH

#include <cstdint>
#include <optional>
#include <string>

#include "common/types.hh"

namespace damq {

/** How the fabric reacts to link faults. */
enum class RecoveryPolicy : std::uint8_t
{
    None,              ///< detect and count only
    Retransmit,        ///< link-level retransmission
    RetransmitReroute, ///< retransmission + dead-link detours
};

/** Canonical spelling ("none" | "retransmit" | "retransmit+reroute"). */
const char *recoveryPolicyName(RecoveryPolicy policy);

/**
 * Parse a RecoveryPolicy name; accepts "reroute" as shorthand for
 * "retransmit+reroute".  nullopt on unknown input.
 */
std::optional<RecoveryPolicy>
tryRecoveryPolicyFromString(const std::string &name);

/** Knobs of the link-level recovery protocol. */
struct RecoveryConfig
{
    RecoveryPolicy policy = RecoveryPolicy::None;

    /**
     * Consecutive failed transmissions on one link before the link
     * is declared dead and its pending packet is given up on
     * (rerouted or lost, by policy).
     */
    std::uint32_t maxRetries = 8;

    /** Cycles a sender waits for the (lost) ack before retrying. */
    Cycle ackTimeoutCycles = 1;

    /**
     * Exponential backoff: attempt k waits
     * min(retryBackoffBase << (k-1), retryBackoffCap) cycles on top
     * of the ack timeout before retransmitting.
     */
    Cycle retryBackoffBase = 1;
    Cycle retryBackoffCap = 64;

    /**
     * Every this many cycles, dead links are probed; a link whose
     * underlying fault episode has ended is revived (episodic
     * LinkDown faults heal, permanent ones never pass the probe).
     */
    Cycle reviveProbeCycles = 128;

    /** Whether any protocol machinery is active. */
    bool enabled() const { return policy != RecoveryPolicy::None; }

    /** Whether dead links trigger rerouting. */
    bool reroute() const
    {
        return policy == RecoveryPolicy::RetransmitReroute;
    }
};

} // namespace damq

#endif // DAMQ_NETWORK_CORE_RECOVERY_HH

/**
 * @file
 * Intra-simulation sharding: a persistent worker pool with phase
 * barriers, plus the contiguous partition of a Topology's switches
 * (and the endpoints that inject into them) across shards.
 *
 * The synchronized engine runs one cycle as a short sequence of
 * phases.  Within a phase every shard touches only state it owns (or
 * state that is provably read-only for the phase); between phases the
 * pool joins at a barrier, so cross-shard effects become visible only
 * at well-defined points.  `ShardRuntime::run(fn)` is exactly one
 * such phase: it dispatches `fn(shard)` to every shard — the calling
 * thread doubles as shard 0 — and returns once all shards finish,
 * which is the barrier.
 *
 * With one shard the runtime spawns no threads at all and `run`
 * degenerates to a plain inline call, so the sequential engine pays
 * nothing for the machinery.
 *
 * Synchronization is a mutex/condvar generation handshake: the
 * coordinator publishes a task under the mutex and bumps the
 * generation; workers wake, run, and decrement a pending count whose
 * zero-crossing wakes the coordinator.  All task state is published
 * under the mutex — no lock-free cleverness — so the protocol is
 * ThreadSanitizer-clean by construction (the `DAMQ_TSAN` CI job
 * verifies this on the `vc` and `scale` suites).
 */

#ifndef DAMQ_NETWORK_CORE_SHARD_HH
#define DAMQ_NETWORK_CORE_SHARD_HH

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace damq {

/** Persistent worker pool; run(fn) = dispatch + barrier. */
class ShardRuntime
{
  public:
    /** Phase body; the argument is the shard index in [0, shards). */
    using PhaseFn = std::function<void(unsigned)>;

    /** Spawn @p shard_count - 1 workers (none when 1). */
    explicit ShardRuntime(unsigned shard_count);

    ~ShardRuntime();

    ShardRuntime(const ShardRuntime &) = delete;
    ShardRuntime &operator=(const ShardRuntime &) = delete;

    unsigned shards() const { return count; }

    /**
     * Run @p fn once per shard and wait for all of them.
     *
     * The caller executes shard 0 itself; shards 1..N-1 run on the
     * pool.  Returns only after every shard has finished, so this is
     * a full barrier.  With one shard this is an inline call.
     */
    void run(const PhaseFn &fn);

  private:
    void workerLoop(unsigned shard);

    const unsigned count;

    std::mutex mutex;
    std::condition_variable wakeWorkers;
    std::condition_variable wakeCoordinator;
    const PhaseFn *task = nullptr;
    std::uint64_t generation = 0;
    unsigned pending = 0;
    bool stopping = false;

    std::vector<std::thread> workers;
};

/**
 * Contiguous partition of switch ids [0, numSwitches) into shards,
 * plus the per-shard list of source endpoints (an endpoint belongs
 * to the shard that owns its injection switch).
 *
 * Contiguity is load-bearing: concatenating the shards' per-phase
 * output lists in shard order reproduces the sequential engine's
 * ascending-switch-id order, which the bit-identity contract needs.
 */
struct ShardPlan
{
    /** shards+1 bounds; shard s owns switches [begin[s], begin[s+1]). */
    std::vector<std::uint32_t> begin;

    /** Source endpoint ids owned by each shard, ascending. */
    std::vector<std::vector<std::uint32_t>> sources;

    unsigned shards() const
    {
        return begin.empty()
                   ? 0
                   : static_cast<unsigned>(begin.size() - 1);
    }

    /** The shard owning switch @p sw. */
    unsigned shardOf(std::uint32_t sw) const;

    /**
     * Partition @p num_switches into @p shard_count contiguous
     * ranges of near-equal size; @p inject_switch maps each source
     * endpoint to its injection switch.
     */
    static ShardPlan
    build(std::uint32_t num_switches, unsigned shard_count,
          const std::vector<std::uint32_t> &inject_switch);
};

} // namespace damq

#endif // DAMQ_NETWORK_CORE_SHARD_HH

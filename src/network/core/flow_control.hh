/**
 * @file
 * First-class flow-control API: one Switching enum for every
 * transfer granularity the simulators support, and the
 * FlowControlScheme policy object that owns the can-send / credit /
 * allocation decisions the engines used to hard-code per mode.
 *
 * Before this redesign the granularity knobs were scattered: the
 * SyncEngine's synchronized whole-packet transfer was implicit, the
 * cut-through simulator kept its own two-value SwitchingMode enum,
 * and FlowControl only distinguished discard from block.  The
 * flit-level modes (wormhole, virtual cut-through) would have added
 * a third ad-hoc axis, so the three collapse into:
 *
 *  - Switching — *what crosses a link per transfer*: a whole packet
 *    (packet-synchronized / store-and-forward / cut-through) or one
 *    flit per cycle (wormhole / virtual-cut-through);
 *  - FlowControl — *how a full receiver pushes back*: discard,
 *    block, per-hop credits, or an on/off wire (sim_types.hh);
 *  - FlowControlScheme — the validated combination, answering the
 *    questions an engine's advance path asks: is this flit-level,
 *    how many downstream slots must a head flit secure
 *    (headSlotsNeeded: 1 under wormhole — the packet may spread
 *    over several switches — the whole packet under VCT, which
 *    never stalls a packet across a link boundary for space), and
 *    whether sends are credit-gated.
 *
 * The legacy cut-through SwitchingMode is now an alias of Switching
 * restricted to its two historical values, so existing call sites
 * compile — and print — unchanged.
 */

#ifndef DAMQ_NETWORK_CORE_FLOW_CONTROL_HH
#define DAMQ_NETWORK_CORE_FLOW_CONTROL_HH

#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "network/core/sim_types.hh"

namespace damq {

/** Transfer granularity of a link, per transfer. */
enum class Switching
{
    /**
     * The paper's synchronized whole-packet transfer: every link
     * moves one complete packet per network cycle (SyncEngine's
     * historical behavior; the 12-cycle transfer is the cycle).
     */
    PacketSync,
    /**
     * Whole-packet store-and-forward in the variable-length
     * cut-through simulator: a packet must be fully buffered before
     * it competes for the next link.
     */
    StoreAndForward,
    /**
     * Packet-granular cut-through in the variable-length simulator:
     * forwarding may begin one cycle after the header arrives.
     */
    CutThrough,
    /**
     * Flit-level wormhole: the head flit advances as soon as one
     * downstream slot is secured; body flits follow one per cycle
     * and may stall mid-packet, spreading the packet over several
     * switches (tree blocking — the behavior VCT avoids).
     */
    Wormhole,
    /**
     * Flit-level virtual cut-through (the paper's Table 1
     * micro-architecture): the head advances only once the whole
     * packet's worth of downstream space is secured, so a blocked
     * packet always collapses into a single buffer.
     */
    VirtualCutThrough
};

/** Canonical name ("packet-sync", "wormhole", ...). */
const char *switchingName(Switching mode);

/** Parse a case-insensitive switching-mode name; nullopt if bad. */
std::optional<Switching> trySwitchingFromString(
    const std::string &name);

/** Whether @p mode moves flits (wormhole / VCT) rather than packets. */
inline bool
flitLevelSwitching(Switching mode)
{
    return mode == Switching::Wormhole ||
           mode == Switching::VirtualCutThrough;
}

/**
 * A validated (Switching, FlowControl) combination plus the policy
 * decisions that depend on it.  Engines hold one scheme for the
 * whole run; it is immutable and stateless (credit *counters* are
 * engine state — per link — not scheme state).
 */
class FlowControlScheme
{
  public:
    virtual ~FlowControlScheme() = default;

    /** The transfer granularity this scheme implements. */
    Switching switching() const { return mode; }

    /** The back-pressure protocol sends are gated by. */
    FlowControl protocol() const { return fc; }

    /** Whether links move flits instead of whole packets. */
    bool flitLevel() const { return flitLevelSwitching(mode); }

    /** Whether sends consume per-hop credits (vs direct state). */
    bool creditBased() const { return fc == FlowControl::Credit; }

    /**
     * Downstream slots a head flit must secure before it may cross
     * a link, for a packet of @p length_slots flits.  1 under
     * wormhole, @p length_slots under VCT and the packet modes.
     *
     * This count is what the engines feed into the buffers'
     * AdmissionPolicy layer (AdmissionRequest::lengthSlots), so a
     * head admission runs through the same accept/reject rule —
     * static, dynamic-threshold, or delay-driven — as whole-packet
     * admission does.
     */
    virtual std::uint32_t headSlotsNeeded(
        std::uint32_t length_slots) const = 0;

    /**
     * Whether a granted head reserves whole-packet space downstream
     * (true for VCT and the packet-granular modes): once the head
     * crosses, no flit of the packet can ever stall for space.
     */
    virtual bool reservesWholePacket() const = 0;

    /** The switching-mode name ("wormhole", "vct", ...). */
    const char *name() const { return switchingName(mode); }

    /**
     * Build the scheme for a validated combination.  Fatal on a
     * meaningless pairing — flit switching with Discarding (flits
     * of one packet must not be dropped independently), or credit /
     * on-off protocols under packet-granular switching.  As a
     * deployment convenience, flit switching with the packet-mode
     * default Blocking upgrades to Credit (blocking *is* the
     * credit-stalled state at flit granularity).
     */
    static std::unique_ptr<FlowControlScheme> make(Switching mode,
                                                   FlowControl fc);

  protected:
    FlowControlScheme(Switching mode, FlowControl fc)
        : mode(mode), fc(fc)
    {
    }

  private:
    Switching mode;
    FlowControl fc;
};

} // namespace damq

#endif // DAMQ_NETWORK_CORE_FLOW_CONTROL_HH

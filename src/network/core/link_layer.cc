#include "network/core/link_layer.hh"

#include <algorithm>

#include "common/logging.hh"

namespace damq {
namespace core {

LinkLayer::LinkLayer(const RecoveryConfig &config,
                     std::size_t num_links)
    : cfg(config), mask(num_links), pending(num_links),
      txSeq(num_links, 0)
{
    damq_assert(cfg.enabled(),
                "LinkLayer constructed with RecoveryPolicy::None");
    damq_assert(cfg.maxRetries >= 1,
                "recovery needs at least one retry");
}

Cycle
LinkLayer::backoff(std::uint32_t attempts) const
{
    damq_assert(attempts >= 1, "backoff before any attempt");
    // min(base << (attempts-1), cap), saturating the shift.
    const std::uint32_t shift = std::min(attempts - 1, 30u);
    const Cycle delay = cfg.retryBackoffBase << shift;
    return std::min(delay, cfg.retryBackoffCap);
}

void
LinkLayer::holdFrame(LinkId link, const Packet &pkt,
                     std::uint32_t seq, Cycle now)
{
    PendingFrame &frame = pending[link];
    damq_assert(!frame.active,
                "link ", link, " already holds an unacked frame — "
                "stop-and-wait admission is broken");
    frame.pkt = pkt;
    frame.seq = seq;
    frame.attempts = 0;
    frame.nextTryAt = now;
    frame.active = true;
    ++heldCount;
    ++activeCount;
}

void
LinkLayer::onAck(LinkId link)
{
    PendingFrame &frame = pending[link];
    if (!frame.active)
        return; // fresh frame that was never held (clean wire)
    if (frame.attempts > 0)
        ++counters.packetsRecovered;
    frame.active = false;
    --heldCount;
    --activeCount;
}

LinkLayer::Verdict
LinkLayer::onFail(LinkId link, bool nacked, Cycle now)
{
    PendingFrame &frame = pending[link];
    damq_assert(frame.active,
                "onFail for a link with no pending frame");
    if (nacked)
        ++counters.crcRejected;
    else
        ++counters.timeouts;
    ++frame.attempts;
    if (frame.attempts >= cfg.maxRetries)
        return Verdict::DeclareDead;
    // A nack arrives within the transfer cycle; a timeout costs the
    // ack-timeout wait first.  Either way the backoff grows with
    // the failure streak.
    const Cycle wait = backoff(frame.attempts) +
                       (nacked ? Cycle{0} : cfg.ackTimeoutCycles);
    frame.nextTryAt = now + std::max<Cycle>(wait, 1);
    return Verdict::Retry;
}

const Packet &
LinkLayer::pendingPacket(LinkId link) const
{
    damq_assert(pending[link].active,
                "pendingPacket of an idle link");
    return pending[link].pkt;
}

std::uint32_t
LinkLayer::pendingSeq(LinkId link) const
{
    damq_assert(pending[link].active, "pendingSeq of an idle link");
    return pending[link].seq;
}

Packet
LinkLayer::takePending(LinkId link)
{
    PendingFrame &frame = pending[link];
    damq_assert(frame.active, "takePending of an idle link");
    frame.active = false;
    --heldCount;
    --activeCount;
    return frame.pkt;
}

void
LinkLayer::declareDead(LinkId link)
{
    if (mask.linkDown(link))
        return;
    mask.setLinkDown(link);
    ++counters.deadLinksDeclared;
}

void
LinkLayer::revive(LinkId link)
{
    if (mask.linkUp(link))
        return;
    mask.setLinkUp(link);
    ++counters.linksRevived;
    // The failure streak died with the declaration; a revived link
    // starts a fresh retry budget.
    if (pending[link].active)
        pending[link].attempts = 0;
}

} // namespace core
} // namespace damq

/**
 * @file
 * core::Topology adapter over the Omega multistage network.
 *
 * Switches are numbered stage-major: flat id = stage *
 * switchesPerStage() + index-within-stage, matching the iteration
 * order of the pre-core NetworkSimulator (so fault-component
 * handles, watchdog snapshots, and telemetry probes keep their
 * order and names).  Routing delegates to OmegaTopology's
 * digit-controlled outputPortFor(); the last stage's outputs feed
 * the sinks.
 */

#ifndef DAMQ_NETWORK_CORE_OMEGA_GRAPH_HH
#define DAMQ_NETWORK_CORE_OMEGA_GRAPH_HH

#include "network/core/topology.hh"
#include "network/omega_topology.hh"

namespace damq {
namespace core {

/** The Omega network as a core::Topology (see file docs). */
class OmegaGraph final : public Topology
{
  public:
    /** @see OmegaTopology::OmegaTopology */
    OmegaGraph(std::uint32_t num_ports, std::uint32_t radix)
        : net(num_ports, radix)
    {
    }

    /** The wrapped stage/shuffle geometry. */
    const OmegaTopology &omega() const { return net; }

    /** Pipeline stage of flat switch @p sw. */
    std::uint32_t stageOf(SwitchId sw) const
    {
        return sw / net.switchesPerStage();
    }

    /** Index of flat switch @p sw within its stage. */
    std::uint32_t indexOf(SwitchId sw) const
    {
        return sw % net.switchesPerStage();
    }

    /** Flat id of switch @p index in stage @p stage. */
    SwitchId flatId(std::uint32_t stage, std::uint32_t index) const
    {
        return stage * net.switchesPerStage() + index;
    }

    std::uint32_t numSwitches() const override
    {
        return net.numStages() * net.switchesPerStage();
    }

    std::uint32_t portsPerSwitch() const override
    {
        return net.radix();
    }

    std::uint32_t numEndpoints() const override
    {
        return net.numPorts();
    }

    PortId route(SwitchId sw, NodeId dest) const override
    {
        return net.outputPortFor(dest, stageOf(sw));
    }

    HopTarget hop(SwitchId sw, PortId out) const override;

    InjectPoint injectionPoint(NodeId src) const override
    {
        const StageCoord coord = net.firstStageInput(src);
        return InjectPoint{coord.switchIndex, coord.port};
    }

    std::string switchName(SwitchId sw) const override;

    std::int64_t numTraceProcesses() const override
    {
        return static_cast<std::int64_t>(net.numStages());
    }

    std::string traceProcessName(std::int64_t pid) const override;

    const char *endpointProcessName() const override
    {
        return "endpoints";
    }

    void traceRow(SwitchId sw, PortId port, std::int64_t &pid,
                  std::int64_t &tid) const override
    {
        pid = static_cast<std::int64_t>(stageOf(sw));
        tid = static_cast<std::int64_t>(indexOf(sw)) * net.radix() +
              port;
    }

    std::string traceThreadName(SwitchId sw,
                                PortId port) const override;

    std::string probeName(SwitchId sw, PortId port) const override;

  private:
    OmegaTopology net;
};

} // namespace core
} // namespace damq

#endif // DAMQ_NETWORK_CORE_OMEGA_GRAPH_HH

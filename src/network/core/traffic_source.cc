#include "network/core/traffic_source.hh"

#include "common/logging.hh"

namespace damq {
namespace core {

std::unique_ptr<TrafficPattern>
makeTrafficPattern(const std::string &name, std::uint32_t num_nodes,
                   double hot_spot_fraction,
                   std::uint32_t transpose_side, std::uint64_t seed)
{
    if (name == "hotspot") {
        return std::make_unique<HotSpotTraffic>(
            num_nodes, hot_spot_fraction, NodeId{0});
    }
    if (name == "transpose" && transpose_side > 0) {
        damq_assert(transpose_side * transpose_side == num_nodes,
                    "transpose traffic needs a square grid");
        return std::make_unique<TransposeTraffic>(transpose_side);
    }
    return makeTraffic(name, num_nodes, seed);
}

TrafficSource::TrafficSource(std::unique_ptr<TrafficPattern> pattern,
                             std::uint32_t num_sources,
                             double gen_probability,
                             const WorkloadConfig &workload,
                             std::uint32_t traffic_classes)
    : pattern_(std::move(pattern)),
      process_(makeInjectionProcess(workload, num_sources,
                                    gen_probability, traffic_classes))
{
    damq_assert(pattern_ != nullptr, "traffic source needs a pattern");
}

} // namespace core
} // namespace damq

#include "network/core/traffic_source.hh"

#include "common/logging.hh"

namespace damq {
namespace core {

std::unique_ptr<TrafficPattern>
makeTrafficPattern(const std::string &name, std::uint32_t num_nodes,
                   double hot_spot_fraction,
                   std::uint32_t transpose_side, std::uint64_t seed)
{
    if (name == "hotspot") {
        return std::make_unique<HotSpotTraffic>(
            num_nodes, hot_spot_fraction, NodeId{0});
    }
    if (name == "transpose" && transpose_side > 0) {
        damq_assert(transpose_side * transpose_side == num_nodes,
                    "transpose traffic needs a square grid");
        return std::make_unique<TransposeTraffic>(transpose_side);
    }
    return makeTraffic(name, num_nodes, seed);
}

TrafficSource::TrafficSource(std::unique_ptr<TrafficPattern> pattern,
                             std::uint32_t num_sources,
                             double gen_probability, double burstiness,
                             Cycle mean_burst_cycles)
    : pattern_(std::move(pattern)), genProbability(gen_probability),
      burstiness(burstiness), meanBurstCycles(mean_burst_cycles),
      sourceOn(num_sources, false)
{
    damq_assert(pattern_ != nullptr, "traffic source needs a pattern");
}

bool
TrafficSource::shouldGenerate(NodeId src, Random &rng)
{
    double gen_prob = genProbability;
    if (burstiness > 1.0) {
        // Two-state on/off source: on a fraction 1/B of the time,
        // generating at rate genProbability * B while on.
        const double mean_on = static_cast<double>(meanBurstCycles);
        const double mean_off = mean_on * (burstiness - 1.0);
        if (sourceOn[src]) {
            if (rng.bernoulli(1.0 / mean_on))
                sourceOn[src] = false;
        } else {
            if (rng.bernoulli(1.0 / mean_off))
                sourceOn[src] = true;
        }
        gen_prob = sourceOn[src] ? genProbability * burstiness : 0.0;
    }
    return rng.bernoulli(gen_prob);
}

} // namespace core
} // namespace damq

#include "network/core/fault_router.hh"

#include <algorithm>
#include <limits>

#include "common/logging.hh"

namespace damq {
namespace core {

namespace {

constexpr std::uint32_t kUnreached =
    std::numeric_limits<std::uint32_t>::max();

} // namespace

FaultRouter::FaultRouter(const Topology &topology,
                         const LinkStateMask &state_mask)
    : topo(topology), mask(state_mask),
      inEdges(topology.numSwitches()),
      sinkEdges(topology.numEndpoints()),
      level(topology.numSwitches(), kUnreached),
      tableBuilt(topology.numEndpoints(), 0),
      tables(topology.numEndpoints())
{
    // The graph is immutable; only link liveness changes.  Walk it
    // once to build the reverse adjacency the BFS consumes.
    for (SwitchId sw = 0; sw < topo.numSwitches(); ++sw) {
        for (PortId out = 0; out < topo.portsPerSwitch(); ++out) {
            if (!topo.hasLink(sw, out))
                continue; // mesh edge: no such link
            const HopTarget next = topo.hop(sw, out);
            if (next.toSink)
                sinkEdges[next.sink].push_back(InEdge{sw, out});
            else
                inEdges[next.switchId].push_back(InEdge{sw, out});
        }
    }
    keyOrder.resize(topo.numSwitches());
    queueScratch.reserve(topo.numSwitches());
}

FaultRouter::Hop
FaultRouter::nextHop(SwitchId sw, NodeId dest, bool went_down)
{
    // Clean mask: minimal routing, zero overhead beyond the check.
    if (mask.deadLinks() == 0)
        return Hop{topo.route(sw, dest), false};
    refresh();
    if (!tableBuilt[dest])
        buildTable(dest);
    const DestTable &t = tables[dest];

    // A descending packet may only continue down (the up*-down*
    // invariant).  If an epoch change stranded it — no down path
    // any more — it restarts as a climber, which is legal from a
    // standing start.
    if (went_down && t.downPort[sw] != kInvalidPort)
        return Hop{t.downPort[sw], true};

    // Climbing phase: descend as soon as descending is optimal
    // (distLegal is the min over both choices, so equality means
    // "no up-hop improves on going down from here").
    if (t.downPort[sw] != kInvalidPort &&
        t.distDown[sw] <= t.distLegal[sw])
        return Hop{t.downPort[sw], true};
    if (t.upPort[sw] != kInvalidPort)
        return Hop{t.upPort[sw], false};

    // Unreachable under up*-down*: no legal hop exists.  Falling
    // back to the minimal route here would inject a hop outside
    // the up*-down* ordering — one such edge can close a channel-
    // dependency cycle and wedge the whole fabric — so the router
    // reports "unroutable" and the engine drops the packet into
    // the fault accounting instead.
    return Hop{kInvalidPort, false};
}

bool
FaultRouter::downHop(SwitchId sw, PortId out)
{
    if (mask.deadLinks() == 0)
        return false; // clean epochs accumulate no phase
    refresh();
    const HopTarget next = topo.hop(sw, out);
    if (next.toSink)
        return true; // terminal hop; the bit is never read again
    return keyLess(sw, next.switchId);
}

bool
FaultRouter::illegalTurn(SwitchId sw, PortId in, PortId out)
{
    if (mask.deadLinks() == 0)
        return false;
    refresh();
    // The buffer at input `in` holds packets that crossed the link
    // whose reverse direction is output `in` (duplex convention);
    // a sink or absent reverse means no fabric link feeds it.
    if (!topo.hasLink(sw, in))
        return false;
    const HopTarget prev = topo.hop(sw, in);
    if (prev.toSink)
        return false; // local injection buffer: a chain source
    if (!keyLess(prev.switchId, sw))
        return false; // arrived climbing: any turn is legal
    const HopTarget next = topo.hop(sw, out);
    if (next.toSink)
        return false; // delivery is a terminal down-hop
    return keyLess(next.switchId, sw); // down-buffer, up-hop
}

void
FaultRouter::refresh()
{
    if (orientationBuilt && builtVersion == mask.version())
        return;
    rebuildOrientation();
    std::fill(tableBuilt.begin(), tableBuilt.end(),
              std::uint8_t{0});
    builtVersion = mask.version();
    orientationBuilt = true;
}

void
FaultRouter::rebuildOrientation()
{
    std::fill(level.begin(), level.end(), kUnreached);
    std::vector<SwitchId> &queue = queueScratch;
    queue.clear();

    // BFS from a fixed root over the live directed graph.  The
    // levels only shape path quality; deadlock freedom needs
    // nothing more than the injective (level, id) key, so even a
    // disconnected switch (level = kUnreached, sorted "most down")
    // keeps the order total and the up-edge relation acyclic.
    level[0] = 0;
    queue.push_back(0);
    for (std::size_t head = 0; head < queue.size(); ++head) {
        const SwitchId at = queue[head];
        for (PortId out = 0; out < topo.portsPerSwitch(); ++out) {
            if (!topo.hasLink(at, out))
                continue;
            const HopTarget next = topo.hop(at, out);
            if (next.toSink || level[next.switchId] != kUnreached)
                continue;
            const LinkId link =
                linkIdOf(at, out, topo.portsPerSwitch());
            if (mask.linkDown(link))
                continue;
            level[next.switchId] = level[at] + 1;
            queue.push_back(next.switchId);
        }
    }

    for (SwitchId sw = 0; sw < topo.numSwitches(); ++sw)
        keyOrder[sw] = sw;
    std::sort(keyOrder.begin(), keyOrder.end(),
              [this](SwitchId a, SwitchId b) {
                  return keyLess(a, b);
              });
}

void
FaultRouter::buildTable(NodeId dest)
{
    DestTable &t = tables[dest];
    const SwitchId n = topo.numSwitches();
    const std::uint32_t ports = topo.portsPerSwitch();
    t.downPort.assign(n, kInvalidPort);
    t.distDown.assign(n, kUnreached);
    t.upPort.assign(n, kInvalidPort);
    t.distLegal.assign(n, kUnreached);

    // distDown by reverse BFS from the sink over down-edges only.
    // The delivery link itself counts as a down-hop: it creates no
    // further channel dependency, so it is legal in either phase.
    std::vector<SwitchId> &queue = queueScratch;
    queue.clear();
    for (const InEdge &edge : sinkEdges[dest]) {
        const LinkId link = linkIdOf(edge.from, edge.out, ports);
        if (mask.linkDown(link) ||
            t.distDown[edge.from] != kUnreached)
            continue;
        t.distDown[edge.from] = 1;
        t.downPort[edge.from] = edge.out;
        queue.push_back(edge.from);
    }
    for (std::size_t head = 0; head < queue.size(); ++head) {
        const SwitchId at = queue[head];
        for (const InEdge &edge : inEdges[at]) {
            if (t.distDown[edge.from] != kUnreached)
                continue;
            if (!keyLess(edge.from, at))
                continue; // edge.from -> at must descend
            const LinkId link =
                linkIdOf(edge.from, edge.out, ports);
            if (mask.linkDown(link))
                continue;
            t.distDown[edge.from] = t.distDown[at] + 1;
            t.downPort[edge.from] = edge.out;
            queue.push_back(edge.from);
        }
    }

    // distLegal by DP in increasing key order: every up-edge leads
    // to an earlier switch in this order, so its distLegal is
    // final when consumed.
    for (const SwitchId sw : keyOrder) {
        std::uint32_t best = t.distDown[sw];
        PortId best_up = kInvalidPort;
        for (PortId out = 0; out < topo.portsPerSwitch(); ++out) {
            if (!topo.hasLink(sw, out))
                continue;
            const HopTarget next = topo.hop(sw, out);
            if (next.toSink || !keyLess(next.switchId, sw))
                continue; // climbing hops only
            const LinkId link = linkIdOf(sw, out, ports);
            if (mask.linkDown(link))
                continue;
            const std::uint32_t via = t.distLegal[next.switchId];
            if (via != kUnreached && via + 1 < best) {
                best = via + 1;
                best_up = out;
            }
        }
        t.distLegal[sw] = best;
        t.upPort[sw] = best_up;
    }

    tableBuilt[dest] = 1;
}

} // namespace core
} // namespace damq

#include "network/core/recovery.hh"

#include "common/enum_parse.hh"
#include "common/logging.hh"

namespace damq {

namespace {

constexpr EnumName<RecoveryPolicy> kRecoveryPolicyNames[] = {
    {RecoveryPolicy::None, "none"},
    {RecoveryPolicy::Retransmit, "retransmit"},
    {RecoveryPolicy::RetransmitReroute, "retransmit+reroute"},
    // Accepted shorthand; names are listed canonical-first, so
    // recoveryPolicyName() never prints this spelling.
    {RecoveryPolicy::RetransmitReroute, "reroute"},
};

} // namespace

const char *
recoveryPolicyName(RecoveryPolicy policy)
{
    if (const char *name = enumValueName(policy, kRecoveryPolicyNames))
        return name;
    damq_panic("unknown RecoveryPolicy ", static_cast<int>(policy));
}

std::optional<RecoveryPolicy>
tryRecoveryPolicyFromString(const std::string &name)
{
    return parseEnumName(std::string_view(name), kRecoveryPolicyNames);
}

} // namespace damq

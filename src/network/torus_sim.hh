/**
 * @file
 * A 2D-torus point-to-point network: the mesh of mesh_sim.hh with
 * wraparound links in both dimensions.
 *
 * Wraparound halves the mean distance (from ~2n/3 to ~n/2 per
 * dimension) and removes the mesh's center/edge load asymmetry, so
 * the same buffer-organization comparison (FIFO vs DAMQ vs the
 * statically allocated variants) runs under more uniform channel
 * load.  Routing is dimension-order with shortest-way ring
 * traversal (ties go east/north).
 *
 * Minimal DOR on rings without virtual channels can deadlock under
 * blocking flow control (a cycle of packets each holding the
 * buffer the next one needs all the way around a ring).  Earlier
 * revisions worked around that by defaulting the torus to the
 * discarding protocol; the engine now breaks the ring cycles with
 * dateline virtual channels instead, so the torus defaults to
 * blocking flow control with two VCs per link.  Discarding and
 * single-VC blocking runs remain available — the deadlock watchdog
 * in SimCommonConfig will flag a wedged ring.
 *
 * Like the other simulators, this is a thin policy configuration of
 * core::SyncEngine over a core::TorusTopology.
 */

#ifndef DAMQ_NETWORK_TORUS_SIM_HH
#define DAMQ_NETWORK_TORUS_SIM_HH

#include <cstdint>
#include <string>
#include <utility>

#include "common/types.hh"
#include "network/core/grid_topology.hh"
#include "network/core/sim_types.hh"
#include "network/core/sync_engine.hh"
#include "network/mesh_sim.hh"
#include "network/sim_common.hh"
#include "obs/telemetry.hh"
#include "switchsim/switch_model.hh"

namespace damq {

/** Configuration of a torus run. */
struct TorusConfig
{
    std::uint32_t width = 8;
    std::uint32_t height = 8;
    BufferType bufferType = BufferType::Damq;

    /** SAMQ/SAFC need this divisible by the queue count — 5 ports
     *  x common.vcs VCs (10 with the default two VCs). */
    std::uint32_t slotsPerBuffer = 10;

    /**
     * Blocking by default: the dateline VC assignment (two VCs in
     * `common`) makes minimal dimension-order routing on the
     * wraparound rings deadlock-free, so the torus no longer needs
     * the historical discarding workaround (see file docs).
     */
    FlowControl protocol = FlowControl::Blocking;

    ArbitrationPolicy arbitration = ArbitrationPolicy::Smart;
    std::uint32_t staleThreshold = 8;

    /** PacketSync (historical default), or Wormhole / VCT for
     *  flit-level switching under credit flow control. */
    Switching switching = Switching::PacketSync;

    /** Flits per packet in the flit-level modes. */
    std::uint32_t flitsPerPacket = 4;

    /** Buffer-sharing (admission) policy + VOQ private slots. */
    SharingPolicyConfig sharing;

    /** Traffic classes stamped as source % classes (1 = off). */
    std::uint32_t trafficClasses = 1;

    std::string traffic = "uniform"; ///< uniform|hotspot|transpose|...
    double hotSpotFraction = 0.05;
    double offeredLoad = 0.3; ///< packets/cycle/node

    /**
     * On/off traffic modulation (same semantics as
     * NetworkConfig::burstiness): sources alternate between on
     * periods generating at offeredLoad * B and off periods, so
     * the average rate is unchanged but arrivals clump.  B = 1 is
     * the plain Bernoulli process.  Requires offeredLoad * B <= 1.
     */
    double burstiness = 1.0;

    /** Mean burst ("on" period) length in cycles when B > 1. */
    Cycle meanBurstCycles = 8;

    /** Seed, warmup/measure schedule, faults, telemetry — with two
     *  dateline VCs per link (the deadlock-freedom escape VCs). */
    SimCommonConfig common = defaultCommon();

    /** The torus-specific SimCommonConfig defaults: two VCs. */
    static SimCommonConfig defaultCommon()
    {
        SimCommonConfig common;
        common.vcs = 2;
        return common;
    }
};

/** Torus runs report the same quantities as mesh runs. */
using TorusResult = MeshResult;

/** The torus simulator. */
class TorusSimulator
{
  public:
    /** Build the torus for @p config (input buffering only). */
    explicit TorusSimulator(const TorusConfig &config);

    /** Advance one cycle. */
    void step() { engine.step(); }

    /** Warm up, measure, summarize. */
    TorusResult run();

    /** Current cycle. */
    Cycle now() const { return engine.now(); }

    /** Node count. */
    std::uint32_t numNodes() const { return cfg.width * cfg.height; }

    /** Switch of node @p node (test access). */
    SwitchModel &switchAt(NodeId node)
    {
        return static_cast<SwitchModel &>(engine.switchUnit(node));
    }

    /** Lifetime counters. */
    const NetworkCounters &lifetime() const
    {
        return engine.lifetime();
    }

    /** Packets buffered inside switches. */
    std::uint64_t packetsInFlight() const
    {
        return engine.packetsInFlight();
    }

    /** Packets waiting at sources. */
    std::uint64_t packetsAtSources() const
    {
        return engine.packetsAtSources();
    }

    /** Validate all buffers. */
    void debugValidate() const { engine.debugValidate(); }

    /** Stop generating and step until empty (or give up). */
    bool drain(Cycle max_cycles) { return engine.drain(max_cycles); }

    /** Injection/detection/audit/watchdog summary so far. */
    FaultReport faultReport() const { return engine.faultReport(); }

    /** The telemetry bundle, or nullptr when telemetry is off. */
    obs::Telemetry *telemetryOrNull()
    {
        return engine.telemetryOrNull();
    }
    const obs::Telemetry *telemetryOrNull() const
    {
        return engine.telemetryOrNull();
    }

    /** Deterministic per-node occupancy snapshot. */
    std::string snapshotText() const { return engine.snapshotText(); }

    /** The underlying engine (flit-mode test access). */
    core::SyncEngine &syncEngine() { return engine; }
    const core::SyncEngine &syncEngine() const { return engine; }

    /** Shortest-way DOR decision: output port at @p node. */
    PortId routeFrom(NodeId node, NodeId dest) const
    {
        return ring.route(node, dest);
    }

    /** Neighbor of @p node through @p out, and its input port. */
    std::pair<NodeId, PortId> neighbor(NodeId node, PortId out) const;

  private:
    /** Assert the torus-specific config constraints up front. */
    static const TorusConfig &validated(const TorusConfig &config);

    /** Map the public config onto the shared engine's knobs. */
    static core::SyncConfig syncConfigOf(const TorusConfig &config);

    TorusConfig cfg;
    core::TorusTopology ring; ///< must outlive (so precede) engine
    core::SyncEngine engine;
};

} // namespace damq

#endif // DAMQ_NETWORK_TORUS_SIM_HH

/**
 * @file
 * Clock-granularity Omega-network simulator with virtual
 * cut-through — the *un-simplified* version of the paper's
 * evaluation model.
 *
 * Section 4.2 synchronized packet transfers into 12-clock slots "in
 * order to simplify the simulation, ... instead of requiring eight
 * clock cycles to transmit and four clock cycles to route".  This
 * simulator keeps the two components separate: a packet occupies
 * its wire for W clocks (default 8) and each switch takes R clocks
 * (default 4, the ComCoBB turn-around) to route a head before it
 * can begin forwarding.  Two switching modes:
 *
 *  - **virtual cut-through** (Kermani & Kleinrock, the mode the
 *    DAMQ hardware supports): when the routing decision completes
 *    and the packet's output wire is idle, its queue is empty, and
 *    the next hop has buffer space, the switch starts forwarding
 *    immediately — the head crosses a 3-stage network in 3R clocks
 *    and the tail follows W clocks later (20 clocks unloaded,
 *    versus 36 for the synchronized model);
 *  - **store-and-forward**: the packet must be fully buffered at
 *    every hop before it can be forwarded.
 *
 * Under the blocking protocol a buffer slot is *reserved* at the
 * next hop before any forwarding starts (cut-through or buffered),
 * so a packet always has a place to land if it later has to stop;
 * the reservation is released if that hop cuts through too.  Under
 * the discarding protocol a packet that can neither cut through
 * nor find buffer space at decision time is dropped.
 *
 * The harness (clock loop, fault injection, audits, telemetry
 * schedule) comes from core::SimEngine; this class supplies the
 * clock-granularity timing model as the engine's phases.
 */

#ifndef DAMQ_NETWORK_CUTTHROUGH_SIM_HH
#define DAMQ_NETWORK_CUTTHROUGH_SIM_HH

#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/random.hh"
#include "common/types.hh"
#include "network/core/flow_control.hh"
#include "network/core/sim_engine.hh"
#include "network/core/traffic_source.hh"
#include "network/network_sim.hh"
#include "network/omega_topology.hh"
#include "network/sim_common.hh"
#include "network/traffic.hh"
#include "obs/telemetry.hh"
#include "queueing/buffer_model.hh"
#include "stats/running_stats.hh"
#include "switchsim/arbiter.hh"

namespace damq {

/**
 * How packets move through a switch.  Historically this simulator's
 * private two-value enum; now an alias of the core Switching enum
 * (network/core/flow_control.hh), of which this simulator supports
 * the two packet-granular values StoreAndForward and CutThrough —
 * every existing call site compiles and prints unchanged.
 */
using SwitchingMode = Switching;

/** Human-readable mode name (the two cut-through-sim values only). */
const char *switchingModeName(SwitchingMode mode);

/**
 * Parse a case-insensitive mode name; nullopt on bad input or on a
 * switching mode this packet-granular simulator does not implement.
 */
std::optional<SwitchingMode> trySwitchingModeFromString(
    const std::string &name);

/** Configuration of a clock-granularity run. */
struct CutThroughConfig
{
    std::uint32_t numPorts = 64;
    std::uint32_t radix = 4;
    BufferType bufferType = BufferType::Damq;
    std::uint32_t slotsPerBuffer = 4; ///< one slot holds one packet
    FlowControl protocol = FlowControl::Blocking;
    ArbitrationPolicy arbitration = ArbitrationPolicy::Smart;
    std::uint32_t staleThreshold = 8;
    SwitchingMode mode = SwitchingMode::CutThrough;
    std::string traffic = "uniform";
    double hotSpotFraction = 0.05;

    /** Offered load as a fraction of link capacity (1/W pkts/clk). */
    double offeredLoad = 0.5;

    std::uint32_t wireClocks = 8;  ///< W: clocks a packet holds a wire
    std::uint32_t routeClocks = 4; ///< R: head-to-decision latency

    /**
     * Shared harness knobs.  This simulator counts *clocks*:
     * common.warmupCycles/measureCycles are clock counts here, and
     * the audit period is in clocks.  The watchdog field is unused
     * (no watchdog at clock granularity); the fault plan covers link
     * faults only — the episode-style faults (arbiter-stuck,
     * credit-delay) are modeled by the synchronized simulators.
     */
    SimCommonConfig common = simCommonWithSchedule(20000, 100000);
};

/** Results of one run. */
struct CutThroughResult
{
    std::uint64_t generated = 0;
    std::uint64_t delivered = 0;
    std::uint64_t discarded = 0;
    Cycle measuredClocks = 0;

    /** Delivered load as a fraction of link capacity. */
    double deliveredLoad = 0.0;

    /** Head-injection to tail-delivery latency, in clocks. */
    RunningStats latencyClocks;

    /** Fraction of forwarded hops that cut through (vs buffered). */
    double cutThroughFraction = 0.0;
};

/** The simulator. */
class CutThroughSimulator final : public core::SimEngine
{
  public:
    /** Build the network for @p config. */
    explicit CutThroughSimulator(const CutThroughConfig &config);

    /** Warm up, measure, summarize. */
    CutThroughResult run();

    /** Lifetime counters (tests). */
    std::uint64_t lifetimeGenerated() const { return generated; }
    std::uint64_t lifetimeDelivered() const { return delivered; }
    std::uint64_t lifetimeDiscarded() const { return discarded; }
    std::uint64_t lifetimeFaultDropped() const { return faultDropped; }

    /** Packets anywhere in the system (tests). */
    std::uint64_t packetsEverywhere() const;

    /** Validate buffer invariants (tests). */
    void debugValidate() const;

    /**
     * Injection/detection/audit summary so far (no watchdog at
     * clock granularity).
     */
    FaultReport faultReport() const override;

  protected:
    void phaseFaults() override;  ///< structural slot leaks
    void phaseAdvance() override; ///< decisions, then arbitration
    void phaseInject() override;  ///< source generation + launch
    void phaseAudit() override;
    void beginMeasurement() override;
    void configureTelemetry(obs::Telemetry &t) override;

  private:
    /** A packet whose head is on a wire toward a switch or sink. */
    struct Flight
    {
        Packet packet;
        std::uint32_t stage = 0;   ///< destination stage
        StageCoord at;             ///< destination coordinate
        bool toSink = false;
        NodeId sink = kInvalidNode;
        Cycle headArrives = 0;     ///< clock the head lands
        bool reserved = false;     ///< holds a slot at destination
    };

    /** Per-switch dynamic state beyond the buffers. */
    struct SwitchState
    {
        std::vector<std::unique_ptr<BufferModel>> buffers;
        std::vector<BufferModel *> bufferPtrs;
        std::unique_ptr<Arbiter> arbiter;
        std::vector<Cycle> outputFreeAt;  ///< wire busy-until
        std::vector<Cycle> readFreeAt;    ///< buffer read port
        /** Packets fully buffered and waiting (inside buffers). */
    };

    void processDecisions();
    void arbitrateBuffered();

    /**
     * Link faults for one in-flight packet: returns true when the
     * flight must be removed (dropped, or corrupted and caught by
     * the receiver's checksum), cancelling any slot reservation it
     * holds at its destination.
     */
    bool flightLost(Flight &flight, std::size_t comp);

    /** Start a wire transfer out of (stage, sw) through @p out. */
    void launch(std::uint32_t stage, std::uint32_t sw, PortId out,
                const Packet &pkt, bool from_cut_through);

    /** Reserve a slot for @p pkt at the hop after (stage, out). */
    bool reserveNextHop(std::uint32_t stage, std::uint32_t sw,
                        PortId out, const Packet &pkt);

    CutThroughConfig cfg;
    OmegaTopology topo;
    core::TrafficSource traffic;

    std::vector<std::vector<SwitchState>> switches;
    std::vector<std::deque<Packet>> sourceQueues;
    std::vector<Cycle> sourceWireFreeAt;
    std::vector<Flight> flights;         ///< heads in the air
    std::vector<Flight> storing;         ///< being written to a buffer

    std::vector<std::uint32_t> nextSeq;
    std::size_t sinkComponent = 0; ///< pseudo-component for sink links

    PacketId nextPacketId = 0;
    std::uint64_t generated = 0;
    std::uint64_t delivered = 0;
    std::uint64_t discarded = 0;
    std::uint64_t faultDropped = 0;
    std::uint64_t hopsCut = 0;
    std::uint64_t hopsBuffered = 0;

    std::uint64_t windowGenerated = 0;
    std::uint64_t windowDelivered = 0;
    std::uint64_t windowDiscarded = 0;
    std::uint64_t cutBefore = 0;      ///< hopsCut at window start
    std::uint64_t bufferedBefore = 0; ///< hopsBuffered at window start
    RunningStats latencyClocks;
};

} // namespace damq

#endif // DAMQ_NETWORK_CUTTHROUGH_SIM_HH

#include "network/cutthrough_sim.hh"

#include <algorithm>

#include "common/logging.hh"
#include "common/string_util.hh"
#include "queueing/buffer_factory.hh"

namespace damq {

const char *
switchingModeName(SwitchingMode mode)
{
    damq_assert(mode == Switching::CutThrough ||
                    mode == Switching::StoreAndForward,
                "switchingModeName: ", switchingName(mode),
                " is not a cut-through-sim mode");
    return switchingName(mode);
}

std::optional<SwitchingMode>
trySwitchingModeFromString(const std::string &name)
{
    const std::string lower = toLower(name);
    // Short aliases this front-end has always taken.
    if (lower == "cut")
        return Switching::CutThrough;
    if (lower == "saf" || lower == "store")
        return Switching::StoreAndForward;
    const std::optional<Switching> mode = trySwitchingFromString(lower);
    if (mode && (*mode == Switching::CutThrough ||
                 *mode == Switching::StoreAndForward))
        return mode;
    return std::nullopt;
}

namespace {

/**
 * The clock-accurate engine drives its TrafficSource open loop
 * only: it has no delivery callback wiring, so the closed-loop /
 * finite workloads (whose semantics depend on onDelivered or
 * drain-and-measure) are rejected up front.
 */
core::WorkloadConfig
openLoopWorkload(const SimCommonConfig &common, const char *sim)
{
    const core::WorkloadKind kind = common.workload.kind;
    if (kind == core::WorkloadKind::Batch ||
        kind == core::WorkloadKind::ReqReply ||
        kind == core::WorkloadKind::Trace) {
        damq_fatal("the ", sim, " simulator only supports the "
                   "open-loop workloads (geometric/onoff/mmpp); ",
                   core::workloadKindName(kind),
                   " needs the synchronized engine");
    }
    return common.workload;
}

} // namespace

CutThroughSimulator::CutThroughSimulator(const CutThroughConfig &config)
    : core::SimEngine(config.common), cfg(config),
      topo(config.numPorts, config.radix),
      traffic(core::makeTrafficPattern(
                  config.traffic, config.numPorts,
                  config.hotSpotFraction, /*transpose_side=*/0,
                  config.common.seed),
              config.numPorts,
              // Offered load is a fraction of link capacity; the
              // per-clock generation probability spreads it over
              // the W clocks a packet holds its wire.
              config.offeredLoad /
                  static_cast<double>(config.wireClocks),
              openLoopWorkload(config.common, "cut-through")),
      sourceQueues(config.numPorts),
      sourceWireFreeAt(config.numPorts, 0),
      nextSeq(config.numPorts, 0)
{
    damq_assert(cfg.wireClocks >= 1 && cfg.routeClocks >= 1,
                "wire and route times must be positive");

    switches.resize(topo.numStages());
    for (std::uint32_t stage = 0; stage < topo.numStages(); ++stage) {
        for (std::uint32_t i = 0; i < topo.switchesPerStage(); ++i) {
            SwitchState state;
            for (PortId input = 0; input < cfg.radix; ++input) {
                state.buffers.push_back(makeBuffer(
                    cfg.bufferType, cfg.radix, cfg.slotsPerBuffer));
                state.bufferPtrs.push_back(state.buffers.back().get());
            }
            state.arbiter =
                makeArbiter(cfg.arbitration, cfg.radix, cfg.radix,
                            cfg.staleThreshold);
            state.outputFreeAt.assign(cfg.radix, 0);
            state.readFreeAt.assign(
                cfg.bufferType == BufferType::Safc
                    ? static_cast<std::size_t>(cfg.radix) * cfg.radix
                    : cfg.radix,
                0);
            switches[stage].push_back(std::move(state));
            const std::size_t comp = injector.addComponent(
                detail::concat("stage", stage, ".sw", i));
            damq_assert(comp == static_cast<std::size_t>(stage) *
                                        topo.switchesPerStage() +
                                    i,
                        "component registration order broken");
        }
    }
    sinkComponent = injector.addComponent("sink-links");

    initTelemetry();
}

void
CutThroughSimulator::configureTelemetry(obs::Telemetry &t)
{
    endpointPid = static_cast<std::int64_t>(topo.numStages());
    obs::PacketTracer *tracer = t.trace();
    if (tracer) {
        for (std::uint32_t stage = 0; stage < topo.numStages();
             ++stage)
            tracer->setProcessName(stage,
                                   detail::concat("stage", stage));
        tracer->setProcessName(endpointPid, "endpoints");
    }

    for (std::uint32_t stage = 0; stage < topo.numStages(); ++stage) {
        for (std::uint32_t idx = 0; idx < topo.switchesPerStage();
             ++idx) {
            SwitchState &state = switches[stage][idx];
            for (PortId port = 0; port < cfg.radix; ++port) {
                const std::int64_t tid =
                    static_cast<std::int64_t>(idx) * cfg.radix +
                    port;
                t.attachProbe(
                    *state.buffers[port],
                    detail::concat("s", stage, ".sw", idx, ".in",
                                   port),
                    stage, tid);
                if (tracer)
                    tracer->setThreadName(
                        stage, tid,
                        detail::concat("sw", idx, ".in", port));
            }
        }
    }

    t.addSampleHook([this]() {
        obs::MetricRegistry &m = telemetry->metrics();
        m.gauge("net.generated")
            .set(static_cast<double>(generated));
        m.gauge("net.delivered")
            .set(static_cast<double>(delivered));
        m.gauge("net.discarded")
            .set(static_cast<double>(discarded));
        m.gauge("net.faultDropped")
            .set(static_cast<double>(faultDropped));
        m.gauge("net.inFlight")
            .set(static_cast<double>(packetsEverywhere()));
        m.gauge("net.hopsCut").set(static_cast<double>(hopsCut));
        m.gauge("net.hopsBuffered")
            .set(static_cast<double>(hopsBuffered));
    });
}

bool
CutThroughSimulator::reserveNextHop(std::uint32_t stage,
                                    std::uint32_t sw, PortId out,
                                    const Packet &pkt)
{
    if (stage + 1 >= topo.numStages())
        return true; // sinks always accept
    const StageCoord next = topo.nextStageInput(stage, sw, out);
    const PortId next_out = topo.outputPortFor(pkt.dest, stage + 1);
    return switches[stage + 1][next.switchIndex]
        .buffers[next.port]
        ->reserve(next_out, pkt.lengthSlots);
}

void
CutThroughSimulator::launch(std::uint32_t stage, std::uint32_t sw,
                            PortId out, const Packet &pkt,
                            bool from_cut_through)
{
    SwitchState &state = switches[stage][sw];
    damq_assert(state.outputFreeAt[out] <= currentCycle,
                "launch on a busy wire");
    state.outputFreeAt[out] = currentCycle + cfg.wireClocks;

    Flight flight;
    flight.packet = pkt;
    flight.headArrives = currentCycle;
    flight.reserved = cfg.protocol == FlowControl::Blocking;
    if (stage + 1 == topo.numStages()) {
        flight.toSink = true;
        flight.sink = topo.sinkFor(sw, out);
    } else {
        flight.stage = stage + 1;
        flight.at = topo.nextStageInput(stage, sw, out);
        flight.packet.outPort =
            topo.outputPortFor(pkt.dest, stage + 1);
        ++flight.packet.hops;
    }
    flights.push_back(flight);
    (from_cut_through ? hopsCut : hopsBuffered) += 1;
}

void
CutThroughSimulator::processDecisions()
{
    // launch() appends the next hop's flight to `flights`, so move
    // the current set aside before iterating.
    std::vector<Flight> current;
    current.swap(flights);

    for (Flight &flight : current) {
        // Sink deliveries complete when the tail lands.
        if (flight.toSink) {
            if (flight.headArrives + cfg.wireClocks > currentCycle) {
                flights.push_back(flight);
                continue;
            }
            if (flightLost(flight, sinkComponent))
                continue;
            damq_assert(flight.packet.dest == flight.sink,
                        "cut-through sim misrouted a packet");
            ++delivered;
            if (telemetry) {
                if (obs::PacketTracer *tr = telemetry->trace())
                    tr->asyncEnd("pkt", "pkt", flight.packet.id,
                                 currentCycle, endpointPid,
                                 flight.sink);
            }
            if (measuring) {
                ++windowDelivered;
                latencyClocks.add(static_cast<double>(
                    currentCycle - flight.packet.injectedAt));
            }
            continue;
        }

        // Routing completes R clocks after the head arrives.
        if (flight.headArrives + cfg.routeClocks > currentCycle) {
            flights.push_back(flight);
            continue;
        }

        // The link fault window closes when routing completes: a
        // dropped or corrupted-and-detected packet frees any slot
        // it reserved and leaves the network here.
        if (flightLost(flight,
                       static_cast<std::size_t>(flight.stage) *
                               topo.switchesPerStage() +
                           flight.at.switchIndex))
            continue;

        SwitchState &state = switches[flight.stage][flight.at.switchIndex];
        BufferModel &buffer = *state.buffers[flight.at.port];
        const PortId out = flight.packet.outPort;

        // Can this packet cut through?  The output wire must be
        // idle, the buffer's path to it unoccupied, and — for a
        // FIFO buffer — the *whole* buffer empty, since overtaking
        // stored packets would break FIFO order.  (This is exactly
        // why FIFO switches cut through less often.)
        const bool queue_clear =
            cfg.bufferType == BufferType::Fifo
                ? buffer.empty()
                : buffer.queueLength(out) == 0;
        const std::size_t read_idx =
            cfg.bufferType == BufferType::Safc
                ? flight.at.port * cfg.radix + out
                : flight.at.port;
        const bool can_cut =
            cfg.mode == SwitchingMode::CutThrough && queue_clear &&
            state.outputFreeAt[out] <= currentCycle &&
            state.readFreeAt[read_idx] <= currentCycle;

        if (can_cut && (cfg.protocol == FlowControl::Discarding ||
                        reserveNextHop(flight.stage,
                                       flight.at.switchIndex, out,
                                       flight.packet))) {
            // Forward immediately; the slot reserved here (if any)
            // is no longer needed.
            if (flight.reserved) {
                buffer.cancelReservation(out,
                                         flight.packet.lengthSlots);
            }
            state.readFreeAt[read_idx] = currentCycle + cfg.wireClocks;
            launch(flight.stage, flight.at.switchIndex, out,
                   flight.packet, /*from_cut_through=*/true);
            continue;
        }

        // Must be buffered.  Under blocking the slot was reserved
        // before the packet was sent; under discarding grab one now
        // or drop the packet.
        if (!flight.reserved) {
            if (!buffer.reserve(out, flight.packet.lengthSlots)) {
                ++discarded;
                if (measuring)
                    ++windowDiscarded;
                continue;
            }
            flight.reserved = true;
        }
        // Fully received once the tail lands; commit then.
        Flight pending = flight;
        pending.headArrives += cfg.wireClocks; // = commit clock
        storing.push_back(pending);
    }

    // Commit packets whose tails have fully arrived.
    std::vector<Flight> still_storing;
    still_storing.reserve(storing.size());
    for (Flight &pending : storing) {
        if (pending.headArrives > currentCycle) {
            still_storing.push_back(pending);
            continue;
        }
        switches[pending.stage][pending.at.switchIndex]
            .buffers[pending.at.port]
            ->pushReserved(pending.packet);
    }
    storing.swap(still_storing);
}

void
CutThroughSimulator::arbitrateBuffered()
{
    for (std::uint32_t stage = 0; stage < topo.numStages(); ++stage) {
        for (std::uint32_t idx = 0; idx < topo.switchesPerStage();
             ++idx) {
            SwitchState &state = switches[stage][idx];

            auto can_send = [&](PortId input, QueueKey key,
                                const Packet &pkt) {
                const PortId out = key.out;
                if (state.outputFreeAt[out] > currentCycle)
                    return false;
                const std::size_t read_idx =
                    cfg.bufferType == BufferType::Safc
                        ? input * cfg.radix + out
                        : input;
                if (state.readFreeAt[read_idx] > currentCycle)
                    return false;
                if (cfg.protocol == FlowControl::Discarding)
                    return true;
                if (stage + 1 == topo.numStages())
                    return true;
                const StageCoord next =
                    topo.nextStageInput(stage, idx, out);
                const PortId next_out =
                    topo.outputPortFor(pkt.dest, stage + 1);
                return switches[stage + 1][next.switchIndex]
                    .buffers[next.port]
                    ->canAccept(next_out, pkt.lengthSlots);
            };

            const GrantList grants =
                state.arbiter->arbitrate(state.bufferPtrs, can_send);
            for (const Grant &g : grants) {
                Packet pkt = state.buffers[g.input]->pop(g.output);
                if (cfg.protocol == FlowControl::Blocking) {
                    const bool ok =
                        reserveNextHop(stage, idx, g.output, pkt);
                    damq_assert(ok, "reservation failed after a "
                                    "successful back-pressure check");
                }
                const std::size_t read_idx =
                    cfg.bufferType == BufferType::Safc
                        ? g.input * cfg.radix + g.output
                        : g.input;
                state.readFreeAt[read_idx] =
                    currentCycle + cfg.wireClocks;
                launch(stage, idx, g.output, pkt,
                       /*from_cut_through=*/false);
            }
        }
    }
}

void
CutThroughSimulator::phaseAdvance()
{
    processDecisions();
    arbitrateBuffered();
}

void
CutThroughSimulator::phaseInject()
{
    for (NodeId src = 0; src < cfg.numPorts; ++src) {
        if (traffic.shouldGenerate(src, currentCycle, rng)) {
            Packet pkt;
            pkt.id = nextPacketId++;
            pkt.source = src;
            pkt.dest = traffic.destinationFor(src, rng);
            pkt.lengthSlots = 1;
            pkt.generatedAt = currentCycle;
            pkt.seq = nextSeq[src]++;
            sealHeader(pkt);
            sourceQueues[src].push_back(pkt);
            ++generated;
            if (measuring)
                ++windowGenerated;
        }

        if (sourceQueues[src].empty() ||
            sourceWireFreeAt[src] > currentCycle) {
            continue;
        }
        Packet &head = sourceQueues[src].front();
        const StageCoord coord = topo.firstStageInput(src);
        const PortId out = topo.outputPortFor(head.dest, 0);

        if (cfg.protocol == FlowControl::Blocking) {
            // Reserve the landing slot before occupying the wire.
            if (!switches[0][coord.switchIndex]
                     .buffers[coord.port]
                     ->reserve(out, head.lengthSlots)) {
                continue;
            }
        }

        Packet pkt = head;
        sourceQueues[src].pop_front();
        pkt.outPort = out;
        pkt.injectedAt = currentCycle;
        sourceWireFreeAt[src] = currentCycle + cfg.wireClocks;
        if (telemetry) {
            if (obs::PacketTracer *tr = telemetry->trace())
                tr->asyncBegin(
                    "pkt", "pkt", pkt.id, currentCycle, endpointPid,
                    src,
                    detail::concat("{\"src\": ", pkt.source,
                                   ", \"dest\": ", pkt.dest, "}"));
        }

        Flight flight;
        flight.packet = pkt;
        flight.stage = 0;
        flight.at = coord;
        flight.headArrives = currentCycle;
        flight.reserved = cfg.protocol == FlowControl::Blocking;
        flights.push_back(flight);
    }
}

void
CutThroughSimulator::beginMeasurement()
{
    windowGenerated = 0;
    windowDelivered = 0;
    windowDiscarded = 0;
    latencyClocks.reset();
    cutBefore = hopsCut;
    bufferedBefore = hopsBuffered;
}

CutThroughResult
CutThroughSimulator::run()
{
    runSchedule();

    CutThroughResult result;
    result.generated = windowGenerated;
    result.delivered = windowDelivered;
    result.discarded = windowDiscarded;
    result.measuredClocks = common.measureCycles;
    // Link capacity is one packet per W clocks per endpoint.
    result.deliveredLoad =
        static_cast<double>(windowDelivered) *
        static_cast<double>(cfg.wireClocks) /
        (static_cast<double>(cfg.numPorts) *
         static_cast<double>(common.measureCycles));
    result.latencyClocks = latencyClocks;
    const std::uint64_t cut = hopsCut - cutBefore;
    const std::uint64_t buffered = hopsBuffered - bufferedBefore;
    result.cutThroughFraction =
        cut + buffered == 0
            ? 0.0
            : static_cast<double>(cut) /
                  static_cast<double>(cut + buffered);
    return result;
}

std::uint64_t
CutThroughSimulator::packetsEverywhere() const
{
    std::uint64_t total = flights.size() + storing.size();
    for (const auto &stage : switches) {
        for (const auto &state : stage) {
            for (const auto &buffer : state.buffers)
                total += buffer->totalPackets();
        }
    }
    for (const auto &q : sourceQueues)
        total += q.size();
    return total;
}

void
CutThroughSimulator::debugValidate() const
{
    for (const auto &stage : switches)
        for (const auto &state : stage)
            for (const auto &buffer : state.buffers)
                buffer->debugValidate();
}

bool
CutThroughSimulator::flightLost(Flight &flight, std::size_t comp)
{
    const bool dropped =
        injector.dropOnLink(comp, currentCycle, flight.packet);
    if (!dropped) {
        injector.corruptOnLink(comp, currentCycle, flight.packet);
        if (!injector.enabled() || headerIntact(flight.packet))
            return false;
        injector.recordDetectedCorruption();
    }
    ++faultDropped;
    // A blocking-protocol flight holds a slot at its destination
    // buffer; give it back or the space is lost forever.
    if (flight.reserved && !flight.toSink) {
        switches[flight.stage][flight.at.switchIndex]
            .buffers[flight.at.port]
            ->cancelReservation(flight.packet.outPort,
                                flight.packet.lengthSlots);
    }
    return true;
}

void
CutThroughSimulator::phaseFaults()
{
    if (!injector.enabled())
        return;
    for (std::uint32_t stage = 0; stage < topo.numStages(); ++stage) {
        for (std::uint32_t idx = 0; idx < topo.switchesPerStage();
             ++idx) {
            const std::size_t comp =
                static_cast<std::size_t>(stage) *
                    topo.switchesPerStage() +
                idx;
            if (!injector.rollSlotLeak(comp, currentCycle))
                continue;
            const PortId input =
                static_cast<PortId>(currentCycle % cfg.radix);
            if (switches[stage][idx].buffers[input]->faultLeakSlot()) {
                injector.recordFault(
                    FaultKind::SlotLeak, comp, currentCycle,
                    detail::concat("slot lost in input ", input,
                                   " buffer"));
            }
        }
    }
}

void
CutThroughSimulator::phaseAudit()
{
    if (!auditor.due(currentCycle))
        return;
    auditor.beginAudit();
    for (std::uint32_t stage = 0; stage < topo.numStages(); ++stage) {
        for (std::uint32_t idx = 0; idx < topo.switchesPerStage();
             ++idx) {
            const std::size_t comp =
                static_cast<std::size_t>(stage) *
                    topo.switchesPerStage() +
                idx;
            const SwitchState &state = switches[stage][idx];
            for (PortId input = 0; input < cfg.radix; ++input) {
                auditor.record(
                    currentCycle,
                    detail::concat(injector.componentName(comp),
                                   ".in", input),
                    state.buffers[input]->checkInvariants());
            }
        }
    }
    const std::uint64_t accounted =
        delivered + discarded + faultDropped + packetsEverywhere();
    if (generated != accounted) {
        auditor.record(
            currentCycle, "network",
            {detail::concat("packet accounting broken: generated ",
                            generated, " != delivered ", delivered,
                            " + discarded ", discarded,
                            " + fault-dropped ", faultDropped,
                            " + elsewhere ", packetsEverywhere())});
    }
}

FaultReport
CutThroughSimulator::faultReport() const
{
    FaultReport report;
    injector.fillReport(report);
    auditor.fillReport(report);
    return report;
}

} // namespace damq

/**
 * @file
 * A 2D-mesh point-to-point network of n x n switches — the
 * multicomputer setting the ComCoBB coprocessor was built for
 * (Section 1: "communication through point-to-point dedicated
 * links in multicomputers relies on communication coprocessors
 * with a small number of ports").
 *
 * Every node is a 5-port switch (four mesh directions plus a local
 * host port, mirroring the ComCoBB's 4+1 geometry) with the chosen
 * input-buffer organization.  Routing is dimension-order (XY),
 * which is deadlock-free on a mesh under the blocking protocol.
 * Time advances in synchronized cycles like the Omega simulator:
 * one packet per link per cycle.
 *
 * Latency is counted in cycles from entering the source node's
 * local input buffer to being delivered through the destination's
 * local output port: a packet at Manhattan distance d takes d + 1
 * cycles unloaded.
 */

#ifndef DAMQ_NETWORK_MESH_SIM_HH
#define DAMQ_NETWORK_MESH_SIM_HH

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "common/random.hh"
#include "common/types.hh"
#include "fault/fault_injector.hh"
#include "fault/invariant_auditor.hh"
#include "fault/watchdog.hh"
#include "network/network_sim.hh"
#include "network/sim_common.hh"
#include "network/traffic.hh"
#include "obs/telemetry.hh"
#include "stats/running_stats.hh"
#include "switchsim/switch_model.hh"

namespace damq {

/** Ports of a mesh node. */
enum MeshPort : PortId
{
    kEast = 0,
    kWest = 1,
    kNorth = 2,
    kSouth = 3,
    kLocal = 4,
    kMeshPorts = 5
};

/** Configuration of a mesh run. */
struct MeshConfig
{
    std::uint32_t width = 8;
    std::uint32_t height = 8;
    BufferType bufferType = BufferType::Damq;
    std::uint32_t slotsPerBuffer = 5; ///< divisible by 5 for SAMQ/SAFC
    FlowControl protocol = FlowControl::Blocking;
    ArbitrationPolicy arbitration = ArbitrationPolicy::Smart;
    std::uint32_t staleThreshold = 8;
    std::string traffic = "uniform"; ///< uniform|hotspot|transpose|...
    double hotSpotFraction = 0.05;
    double offeredLoad = 0.3; ///< packets/cycle/node

    /** Seed, warmup/measure schedule, faults, telemetry. */
    SimCommonConfig common;
};

/** Results of one mesh run. */
struct MeshResult
{
    NetworkCounters window;
    Cycle measuredCycles = 0;
    double deliveredThroughput = 0.0; ///< packets/cycle/node
    double offeredLoad = 0.0;
    double discardFraction = 0.0;
    RunningStats latencyCycles; ///< in network cycles
    double avgHops = 0.0;
};

/** The mesh simulator. */
class MeshSimulator
{
  public:
    /** Build the mesh for @p config (input buffering only). */
    explicit MeshSimulator(const MeshConfig &config);

    /** Advance one cycle. */
    void step();

    /** Warm up, measure, summarize. */
    MeshResult run();

    /** Current cycle. */
    Cycle now() const { return currentCycle; }

    /** Node count. */
    std::uint32_t numNodes() const { return cfg.width * cfg.height; }

    /** Switch of node @p node (test access). */
    SwitchModel &switchAt(NodeId node) { return *nodes[node]; }

    /** Lifetime counters. */
    const NetworkCounters &lifetime() const { return counters; }

    /** Packets buffered inside switches. */
    std::uint64_t packetsInFlight() const;

    /** Packets waiting at sources. */
    std::uint64_t packetsAtSources() const;

    /** Validate all buffers. */
    void debugValidate() const;

    /** Stop generating and step until empty (or give up). */
    bool drain(Cycle max_cycles);

    /** Injection/detection/audit/watchdog summary so far. */
    FaultReport faultReport() const;

    /** The telemetry bundle, or nullptr when telemetry is off. */
    obs::Telemetry *telemetryOrNull() { return telemetry.get(); }
    const obs::Telemetry *telemetryOrNull() const
    {
        return telemetry.get();
    }

    /** Deterministic per-node occupancy snapshot. */
    std::string snapshotText() const;

    /** XY-routing decision: output port at @p node for @p dest. */
    PortId routeFrom(NodeId node, NodeId dest) const;

    /** Neighbor of @p node through @p out, and its input port. */
    std::pair<NodeId, PortId> neighbor(NodeId node, PortId out) const;

  private:
    void setupTelemetry();
    void traceLoss(const Packet &pkt, const char *why);
    void injectStructuralFaults();
    void moveTrafficForward();
    void generateAndInject();
    bool tryInject(NodeId src, Packet pkt);
    void deliver(const Packet &pkt, NodeId node);
    void runAudit();
    void watchdogCheck();

    MeshConfig cfg;
    Random rng;
    std::unique_ptr<TrafficPattern> pattern;
    std::vector<std::unique_ptr<SwitchModel>> nodes;
    std::vector<std::deque<Packet>> sourceQueues;

    FaultInjector injector;
    InvariantAuditor auditor;
    DeadlockWatchdog watchdog;
    std::vector<std::uint64_t> prevTransmitted;
    std::vector<std::uint32_t> nextSeq;

    Cycle currentCycle = 0;
    PacketId nextPacketId = 0;
    NetworkCounters counters;

    /** One in-flight hop: the packet and the node it left. */
    struct Move
    {
        NodeId node;
        Packet packet; ///< outPort = mesh port it left through
    };

    // Per-cycle scratch storage, reused every moveTrafficForward()
    // call so the steady-state cycle loop never touches the
    // allocator (reserved at construction).
    std::vector<Move> moveScratch;
    std::vector<Packet> sentScratch;

    /** Telemetry bundle, or nullptr when disabled (see
     *  NetworkSimulator::telemetry). */
    std::unique_ptr<obs::Telemetry> telemetry;
    std::int64_t endpointPid = 0; ///< trace pid of the hosts

    bool draining = false;
    bool measuring = false;
    RunningStats latencyCycles;
    RunningStats hopSamples;
};

} // namespace damq

#endif // DAMQ_NETWORK_MESH_SIM_HH

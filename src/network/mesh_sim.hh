/**
 * @file
 * A 2D-mesh point-to-point network of n x n switches — the
 * multicomputer setting the ComCoBB coprocessor was built for
 * (Section 1: "communication through point-to-point dedicated
 * links in multicomputers relies on communication coprocessors
 * with a small number of ports").
 *
 * Every node is a 5-port switch (four mesh directions plus a local
 * host port, mirroring the ComCoBB's 4+1 geometry) with the chosen
 * input-buffer organization.  Routing is dimension-order (XY),
 * which is deadlock-free on a mesh under the blocking protocol.
 * Time advances in synchronized cycles like the Omega simulator:
 * one packet per link per cycle.
 *
 * Latency is counted in cycles from entering the source node's
 * local input buffer to being delivered through the destination's
 * local output port: a packet at Manhattan distance d takes d + 1
 * cycles unloaded.
 *
 * The simulator is a thin policy configuration of the shared core:
 * core::SyncEngine runs the cycle loop over a core::MeshTopology.
 */

#ifndef DAMQ_NETWORK_MESH_SIM_HH
#define DAMQ_NETWORK_MESH_SIM_HH

#include <cstdint>
#include <string>
#include <utility>

#include "common/types.hh"
#include "network/core/grid_topology.hh"
#include "network/core/sim_types.hh"
#include "network/core/sync_engine.hh"
#include "network/network_sim.hh"
#include "network/sim_common.hh"
#include "network/traffic.hh"
#include "obs/telemetry.hh"
#include "stats/running_stats.hh"
#include "switchsim/switch_model.hh"

namespace damq {

/** Configuration of a mesh run. */
struct MeshConfig
{
    std::uint32_t width = 8;
    std::uint32_t height = 8;
    BufferType bufferType = BufferType::Damq;
    std::uint32_t slotsPerBuffer = 5; ///< divisible by 5 for SAMQ/SAFC
    FlowControl protocol = FlowControl::Blocking;
    ArbitrationPolicy arbitration = ArbitrationPolicy::Smart;
    std::uint32_t staleThreshold = 8;

    /** Buffer-sharing (admission) policy + VOQ private slots. */
    SharingPolicyConfig sharing;

    /** Traffic classes stamped as source % classes (1 = off). */
    std::uint32_t trafficClasses = 1;

    std::string traffic = "uniform"; ///< uniform|hotspot|transpose|...
    double hotSpotFraction = 0.05;
    double offeredLoad = 0.3; ///< packets/cycle/node

    /** Seed, warmup/measure schedule, faults, telemetry. */
    SimCommonConfig common;
};

/** Results of one mesh run. */
struct MeshResult
{
    NetworkCounters window;
    Cycle measuredCycles = 0;
    double deliveredThroughput = 0.0; ///< packets/cycle/node
    double offeredLoad = 0.0;
    double discardFraction = 0.0;
    RunningStats latencyCycles; ///< in network cycles
    double avgHops = 0.0;

    /** Median / 99th-percentile latency, in network cycles. */
    double latencyP50 = 0.0;
    double latencyP99 = 0.0;

    /** End-to-end (generation to sink) tail, in network cycles. */
    double e2eLatencyP50 = 0.0;
    double e2eLatencyP99 = 0.0;
    double e2eLatencyP999 = 0.0;

    /** Delivered packets the e2e percentiles summarize. */
    std::uint64_t e2eSamples = 0;

    /** Per-class e2e tail (populated when trafficClasses > 1). */
    std::vector<core::SyncResult::ClassTail> classLatency;

    /** Deadlock-watchdog firings during the run (0 or 1 — the
     *  watchdog reports each wedge once). */
    std::uint64_t watchdogTrips = 0;
};

/** The mesh simulator. */
class MeshSimulator
{
  public:
    /** Build the mesh for @p config (input buffering only). */
    explicit MeshSimulator(const MeshConfig &config);

    /** Advance one cycle. */
    void step() { engine.step(); }

    /** Warm up, measure, summarize. */
    MeshResult run();

    /** Current cycle. */
    Cycle now() const { return engine.now(); }

    /** Node count. */
    std::uint32_t numNodes() const { return cfg.width * cfg.height; }

    /** Switch of node @p node (test access). */
    SwitchModel &switchAt(NodeId node)
    {
        return static_cast<SwitchModel &>(engine.switchUnit(node));
    }

    /** Lifetime counters. */
    const NetworkCounters &lifetime() const
    {
        return engine.lifetime();
    }

    /** Packets buffered inside switches. */
    std::uint64_t packetsInFlight() const
    {
        return engine.packetsInFlight();
    }

    /** Packets waiting at sources. */
    std::uint64_t packetsAtSources() const
    {
        return engine.packetsAtSources();
    }

    /** Validate all buffers. */
    void debugValidate() const { engine.debugValidate(); }

    /** Stop generating and step until empty (or give up). */
    bool drain(Cycle max_cycles) { return engine.drain(max_cycles); }

    /** Injection/detection/audit/watchdog summary so far. */
    FaultReport faultReport() const { return engine.faultReport(); }

    /** The telemetry bundle, or nullptr when telemetry is off. */
    obs::Telemetry *telemetryOrNull()
    {
        return engine.telemetryOrNull();
    }
    const obs::Telemetry *telemetryOrNull() const
    {
        return engine.telemetryOrNull();
    }

    /** Deterministic per-node occupancy snapshot. */
    std::string snapshotText() const { return engine.snapshotText(); }

    /** XY-routing decision: output port at @p node for @p dest. */
    PortId routeFrom(NodeId node, NodeId dest) const
    {
        return grid.route(node, dest);
    }

    /** Neighbor of @p node through @p out, and its input port. */
    std::pair<NodeId, PortId> neighbor(NodeId node, PortId out) const;

  private:
    /** Assert the mesh-specific config constraints up front. */
    static const MeshConfig &validated(const MeshConfig &config);

    /** Map the public config onto the shared engine's knobs. */
    static core::SyncConfig syncConfigOf(const MeshConfig &config);

    MeshConfig cfg;
    core::MeshTopology grid; ///< must outlive (so precede) engine
    core::SyncEngine engine;
};

} // namespace damq

#endif // DAMQ_NETWORK_MESH_SIM_HH

/**
 * @file
 * Variable-length-packet extension of the Omega-network simulator.
 *
 * The paper's evaluation uses fixed-length packets, but the DAMQ
 * buffer was designed for variable-length ones (1-32 bytes in 8-byte
 * slots); its conclusion conjectures that DAMQ "will outperform its
 * competition by an even wider margin" with them.  This simulator
 * tests that conjecture:
 *
 *  - a packet occupies 1..4 buffer slots, drawn from a configurable
 *    distribution;
 *  - transferring an L-slot packet holds its link — the upstream
 *    read port and the downstream output wire — for L consecutive
 *    network cycles;
 *  - downstream space is *reserved* at grant time and committed when
 *    the transfer completes (store-and-forward at slot granularity,
 *    identical for every buffer organization so the comparison is
 *    fair);
 *  - only the blocking protocol is supported.
 *
 * Loads and throughputs are accounted in *slots* per endpoint per
 * cycle, since a link moves one slot per cycle.
 *
 * The cycle loop, schedule, and telemetry plumbing come from
 * core::SimEngine; this simulator supplies only the slot-granular
 * transfer model as the engine's advance/inject phases.
 */

#ifndef DAMQ_NETWORK_VARLEN_SIM_HH
#define DAMQ_NETWORK_VARLEN_SIM_HH

#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "common/random.hh"
#include "common/types.hh"
#include "network/core/sim_engine.hh"
#include "network/core/traffic_source.hh"
#include "network/network_sim.hh"
#include "network/omega_topology.hh"
#include "network/sim_common.hh"
#include "network/traffic.hh"
#include "obs/telemetry.hh"
#include "stats/running_stats.hh"
#include "switchsim/switch_model.hh"

namespace damq {

/** Discrete packet-length distribution (slots -> relative weight). */
struct LengthDistribution
{
    /** weight[i] is the relative probability of length i+1 slots. */
    std::vector<double> weights{1.0};

    /** Draw a length (in slots) using @p rng. */
    std::uint32_t sample(Random &rng) const;

    /** Expected length in slots. */
    double mean() const;
};

/** Configuration for a variable-length run. */
struct VarLenConfig
{
    std::uint32_t numPorts = 64;
    std::uint32_t radix = 4;
    BufferType bufferType = BufferType::Damq;
    std::uint32_t slotsPerBuffer = 8;
    ArbitrationPolicy arbitration = ArbitrationPolicy::Smart;
    std::uint32_t staleThreshold = 8;
    std::string traffic = "uniform";
    double hotSpotFraction = 0.05;

    /**
     * Offered load in *slots* per endpoint per cycle; converted to a
     * packet generation probability via the length distribution.
     */
    double offeredSlotLoad = 0.5;

    LengthDistribution lengths{{1.0, 1.0, 1.0, 1.0}}; ///< 1-4 slots

    /**
     * Shared harness knobs.  This simulator models neither faults
     * nor audits nor a watchdog — those fields are unused here.
     */
    SimCommonConfig common = simCommonWithSchedule(2000, 20000);
};

/** Results of one variable-length run. */
struct VarLenResult
{
    std::uint64_t generatedPackets = 0;
    std::uint64_t deliveredPackets = 0;
    std::uint64_t deliveredSlots = 0;
    Cycle measuredCycles = 0;

    /** Delivered slots per endpoint per cycle. */
    double deliveredSlotThroughput = 0.0;

    /** In-network latency (clocks), injection start to delivery. */
    RunningStats latencyClocks;
};

/** The variable-length simulator. */
class VarLenNetworkSimulator final : public core::SimEngine
{
  public:
    /** Build the network for @p config. */
    explicit VarLenNetworkSimulator(const VarLenConfig &config);

    /** Warm up, measure, and summarize. */
    VarLenResult run();

    /** Packets buffered, in flight on links, or queued at sources. */
    std::uint64_t packetsEverywhere() const;

    /** Lifetime generated / delivered counters (tests). */
    std::uint64_t lifetimeGenerated() const { return generated; }
    std::uint64_t lifetimeDelivered() const { return delivered; }

    /** Validate all buffer invariants (tests). */
    void debugValidate() const;

  protected:
    void phaseAdvance() override; ///< complete transfers, arbitrate
    void phaseInject() override;  ///< source generation + injection
    void beginMeasurement() override;
    void configureTelemetry(obs::Telemetry &t) override;

  private:
    /** One in-progress link transfer. */
    struct Transfer
    {
        Cycle completesAt = 0;
        bool toSink = false;
        std::uint32_t stage = 0; ///< destination stage (if !toSink)
        StageCoord dest;         ///< destination coordinate
        NodeId sink = kInvalidNode;
        Packet packet;
    };

    void completeTransfers();
    void arbitrateAndLaunch();

    /** Busy-until bookkeeping for one switch. */
    struct SwitchLinkState
    {
        std::vector<Cycle> outputBusyUntil;       // per output
        std::vector<Cycle> readBusyUntil;         // per input buffer
        std::vector<Cycle> queueReadBusyUntil;    // per input*out (SAFC)
    };

    bool readPortFree(std::uint32_t stage, std::uint32_t sw,
                      PortId input, PortId out) const;
    void markReadBusy(std::uint32_t stage, std::uint32_t sw,
                      PortId input, PortId out, Cycle until);

    VarLenConfig cfg;
    OmegaTopology topo;
    core::TrafficSource traffic;

    std::vector<std::vector<std::unique_ptr<SwitchModel>>> switches;
    std::vector<std::vector<SwitchLinkState>> linkState;
    std::vector<std::deque<Packet>> sourceQueues;
    std::vector<Cycle> sourceLinkBusyUntil;
    std::vector<Transfer> inFlight;

    PacketId nextPacketId = 0;
    std::uint64_t generated = 0;
    std::uint64_t delivered = 0;
    std::uint64_t deliveredSlotsTotal = 0;

    std::uint64_t windowDeliveredPackets = 0;
    std::uint64_t windowDeliveredSlots = 0;
    std::uint64_t windowGenerated = 0;
    RunningStats latencyClocks;
};

} // namespace damq

#endif // DAMQ_NETWORK_VARLEN_SIM_HH

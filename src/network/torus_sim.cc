#include "network/torus_sim.hh"

#include "common/logging.hh"

namespace damq {

const TorusConfig &
TorusSimulator::validated(const TorusConfig &config)
{
    damq_assert(config.width >= 2 && config.height >= 2,
                "torus needs at least 2x2 nodes");
    if (config.traffic == "transpose") {
        damq_assert(config.width == config.height,
                    "transpose traffic needs a square torus");
    }
    return config;
}

core::SyncConfig
TorusSimulator::syncConfigOf(const TorusConfig &config)
{
    core::SyncConfig sync;
    sync.placement = BufferPlacement::Input;
    sync.bufferType = config.bufferType;
    sync.slotsPerBuffer = config.slotsPerBuffer;
    sync.protocol = config.protocol;
    sync.arbitration = config.arbitration;
    sync.staleThreshold = config.staleThreshold;
    sync.switching = config.switching;
    sync.flitsPerPacket = config.flitsPerPacket;
    sync.sharing = config.sharing;
    sync.trafficClasses = config.trafficClasses;
    sync.traffic = config.traffic;
    sync.hotSpotFraction = config.hotSpotFraction;
    sync.transposeSide = config.width;
    sync.offeredLoad = config.offeredLoad;
    sync.burstiness = config.burstiness;
    sync.meanBurstCycles = config.meanBurstCycles;
    sync.latencyUnitScale = 1.0; // torus latency is in cycles
    sync.accountingScope = "torus";
    sync.common = config.common;
    return sync;
}

TorusSimulator::TorusSimulator(const TorusConfig &config)
    : cfg(validated(config)), ring(config.width, config.height),
      engine(ring, syncConfigOf(config))
{
}

std::pair<NodeId, PortId>
TorusSimulator::neighbor(NodeId node, PortId out) const
{
    if (out == kLocal)
        damq_panic("neighbor() of the local port");
    const core::HopTarget next = ring.hop(node, out);
    return {next.switchId, next.inputPort};
}

TorusResult
TorusSimulator::run()
{
    const core::SyncResult r = engine.run();
    TorusResult result;
    result.window = r.window;
    result.measuredCycles = r.measuredCycles;
    result.deliveredThroughput = r.deliveredThroughput;
    result.offeredLoad = r.offeredLoad;
    result.discardFraction = r.discardFraction;
    result.latencyCycles = r.latency;
    result.latencyP50 = r.latencyP50;
    result.latencyP99 = r.latencyP99;
    result.e2eLatencyP50 = r.e2eLatencyP50;
    result.e2eLatencyP99 = r.e2eLatencyP99;
    result.e2eLatencyP999 = r.e2eLatencyP999;
    result.e2eSamples = r.e2eSamples;
    result.classLatency = r.classLatency;
    result.avgHops = r.hops.mean();
    result.watchdogTrips = faultReport().watchdogFired ? 1 : 0;
    return result;
}

} // namespace damq

/**
 * @file
 * The synchronized Omega-network simulator of Section 4.2.
 *
 * Time advances in *network cycles*; one cycle corresponds to the
 * paper's twelve clock cycles (eight to transmit a fixed-length
 * packet, four to route it), and a packet crosses at most one stage
 * per cycle.  Each cycle proceeds in four steps:
 *
 *  1. every switch arbitrates its crossbar against a globally
 *     consistent start-of-cycle snapshot (for the blocking protocol
 *     the back-pressure test also uses that snapshot — flow-control
 *     status crosses a link with one cycle of latency);
 *  2. granted packets leave their buffers;
 *  3. granted packets arrive: into the next stage's input buffer
 *     (re-routed for that stage), or at their sink if they left the
 *     last stage.  Under the discarding protocol an arrival that
 *     finds its buffer full — after this cycle's departures — is
 *     dropped;
 *  4. sources generate new packets (Bernoulli process at the
 *     offered load) and inject: under blocking through an
 *     unbounded source queue that retries its head each cycle,
 *     under discarding by immediate attempt-and-drop.
 *
 * Latency is measured in clock cycles from entering the first-stage
 * buffer to leaving the last-stage switch, so the unloaded 3-stage
 * minimum is 36 clocks — matching the scale of Tables 4-6.
 *
 * The simulator itself is a thin policy configuration of the shared
 * core: core::SyncEngine owns the cycle loop above, running over a
 * core::OmegaGraph topology.  This wrapper only maps NetworkConfig
 * onto the engine's knobs and preserves the historical public API.
 */

#ifndef DAMQ_NETWORK_NETWORK_SIM_HH
#define DAMQ_NETWORK_NETWORK_SIM_HH

#include <cstdint>
#include <string>

#include "common/types.hh"
#include "network/core/omega_graph.hh"
#include "network/core/sim_types.hh"
#include "network/core/sync_engine.hh"
#include "network/omega_topology.hh"
#include "network/sim_common.hh"
#include "network/traffic.hh"
#include "obs/telemetry.hh"
#include "stats/running_stats.hh"
#include "switchsim/switch_unit.hh"

namespace damq {

/** Everything that defines one simulation run. */
struct NetworkConfig
{
    std::uint32_t numPorts = 64;     ///< endpoints per side
    std::uint32_t radix = 4;         ///< switch degree
    BufferPlacement placement = BufferPlacement::Input;
    BufferType bufferType = BufferType::Damq; ///< input placement only
    std::uint32_t slotsPerBuffer = 4; ///< per input port's worth
    FlowControl protocol = FlowControl::Blocking;
    ArbitrationPolicy arbitration = ArbitrationPolicy::Smart;
    std::uint32_t staleThreshold = 8;

    /** PacketSync (historical default), or Wormhole / VCT for
     *  flit-level switching under credit flow control. */
    Switching switching = Switching::PacketSync;

    /** Flits per packet in the flit-level modes. */
    std::uint32_t flitsPerPacket = 4;

    /** Buffer-sharing (admission) policy + VOQ private slots. */
    SharingPolicyConfig sharing;

    /** Traffic classes stamped as source % classes (1 = off). */
    std::uint32_t trafficClasses = 1;

    std::string traffic = "uniform"; ///< pattern name (see makeTraffic)
    double hotSpotFraction = 0.05;   ///< used when traffic == "hotspot"
    double offeredLoad = 0.5;        ///< packets/cycle/source

    /**
     * Burstiness factor B >= 1 (two-state on/off sources).  Each
     * source is "on" a fraction 1/B of the time and generates at
     * rate offeredLoad * B while on, so the average rate is
     * unchanged but arrivals clump.  B = 1 is the paper's plain
     * Bernoulli process.  Requires offeredLoad * B <= 1.
     */
    double burstiness = 1.0;

    /** Mean burst ("on" period) length in cycles when B > 1. */
    Cycle meanBurstCycles = 8;

    /** Seed, warmup/measure schedule, faults, telemetry. */
    SimCommonConfig common;
};

/** Results of one measured run. */
struct NetworkResult
{
    NetworkCounters window;  ///< counters within the window
    Cycle measuredCycles = 0;

    /** Delivered packets per endpoint per network cycle. */
    double deliveredThroughput = 0.0;

    /** Offered packets per endpoint per network cycle (echo). */
    double offeredLoad = 0.0;

    /** Fraction of generated packets discarded (both kinds). */
    double discardFraction = 0.0;

    /** In-network latency statistics, in clock cycles. */
    RunningStats latencyClocks;

    /** Mean source-queue length sampled each cycle (blocking). */
    double avgSourceQueueLen = 0.0;

    /** Mean buffered packets per switch sampled each cycle. */
    double avgSwitchOccupancy = 0.0;

    /**
     * Jain fairness index over the per-source mean latencies
     * (1 = perfectly fair, 1/n = one source gets all the service).
     */
    double latencyFairness = 1.0;

    /** Largest per-source mean latency (clocks). */
    double worstSourceLatency = 0.0;

    /** Median / 99th-percentile in-network latency, in clocks. */
    double latencyP50 = 0.0;
    double latencyP99 = 0.0;

    /** End-to-end (generation to sink) tail, in clocks. */
    double e2eLatencyP50 = 0.0;
    double e2eLatencyP99 = 0.0;
    double e2eLatencyP999 = 0.0;

    /** Delivered packets the e2e percentiles summarize. */
    std::uint64_t e2eSamples = 0;

    /** Per-class e2e tail (populated when trafficClasses > 1). */
    std::vector<core::SyncResult::ClassTail> classLatency;
};

/**
 * The simulator.  Construct, then either call run() for a complete
 * warmup+measure experiment or drive step() manually (tests).
 */
class NetworkSimulator
{
  public:
    /** Build all switches and sources for @p config. */
    explicit NetworkSimulator(const NetworkConfig &config);

    /** Advance one network cycle. */
    void step() { engine.step(); }

    /** Warm up, measure, and summarize. */
    NetworkResult run();

    /** Current network cycle. */
    Cycle now() const { return engine.now(); }

    /** Topology in use. */
    const OmegaTopology &topology() const { return graph.omega(); }

    /** Configuration in use. */
    const NetworkConfig &config() const { return cfg; }

    /** Switch @p index of stage @p stage (test access). */
    SwitchUnit &switchAt(std::uint32_t stage, std::uint32_t index);

    /** Lifetime counters since construction. */
    const NetworkCounters &lifetime() const
    {
        return engine.lifetime();
    }

    /** Packets currently buffered inside switches. */
    std::uint64_t packetsInFlight() const
    {
        return engine.packetsInFlight();
    }

    /** Packets currently waiting in source queues. */
    std::uint64_t packetsAtSources() const
    {
        return engine.packetsAtSources();
    }

    /** Validate every buffer's invariants (tests). */
    void debugValidate() const { engine.debugValidate(); }

    /**
     * Stop generating and step until the network and source queues
     * are empty, or @p max_cycles pass.  Returns true when fully
     * drained — at which point the blocking protocol must satisfy
     * injected == delivered + faultDropped exactly.
     */
    bool drain(Cycle max_cycles) { return engine.drain(max_cycles); }

    /** Injection/detection/audit/watchdog summary so far. */
    FaultReport faultReport() const { return engine.faultReport(); }

    /** The telemetry bundle, or nullptr when telemetry is off. */
    obs::Telemetry *telemetryOrNull()
    {
        return engine.telemetryOrNull();
    }
    const obs::Telemetry *telemetryOrNull() const
    {
        return engine.telemetryOrNull();
    }

    /**
     * Deterministic diagnostic snapshot: per-switch occupancy and
     * head-of-line destinations in stable (stage, index) order,
     * with both seeds echoed.
     */
    std::string snapshotText() const { return engine.snapshotText(); }

    /** The underlying engine (flit-mode test access). */
    core::SyncEngine &syncEngine() { return engine; }
    const core::SyncEngine &syncEngine() const { return engine; }

  private:
    /** Map the public config onto the shared engine's knobs. */
    static core::SyncConfig syncConfigOf(const NetworkConfig &config);

    NetworkConfig cfg;
    core::OmegaGraph graph; ///< must outlive (so precede) engine
    core::SyncEngine engine;
};

} // namespace damq

#endif // DAMQ_NETWORK_NETWORK_SIM_HH

/**
 * @file
 * The synchronized Omega-network simulator of Section 4.2.
 *
 * Time advances in *network cycles*; one cycle corresponds to the
 * paper's twelve clock cycles (eight to transmit a fixed-length
 * packet, four to route it), and a packet crosses at most one stage
 * per cycle.  Each cycle proceeds in four steps:
 *
 *  1. every switch arbitrates its crossbar against a globally
 *     consistent start-of-cycle snapshot (for the blocking protocol
 *     the back-pressure test also uses that snapshot — flow-control
 *     status crosses a link with one cycle of latency);
 *  2. granted packets leave their buffers;
 *  3. granted packets arrive: into the next stage's input buffer
 *     (re-routed for that stage), or at their sink if they left the
 *     last stage.  Under the discarding protocol an arrival that
 *     finds its buffer full — after this cycle's departures — is
 *     dropped;
 *  4. sources generate new packets (Bernoulli process at the
 *     offered load) and inject: under blocking through an
 *     unbounded source queue that retries its head each cycle,
 *     under discarding by immediate attempt-and-drop.
 *
 * Latency is measured in clock cycles from entering the first-stage
 * buffer to leaving the last-stage switch, so the unloaded 3-stage
 * minimum is 36 clocks — matching the scale of Tables 4-6.
 */

#ifndef DAMQ_NETWORK_NETWORK_SIM_HH
#define DAMQ_NETWORK_NETWORK_SIM_HH

#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/random.hh"
#include "common/types.hh"
#include "fault/fault_injector.hh"
#include "fault/invariant_auditor.hh"
#include "fault/watchdog.hh"
#include "network/omega_topology.hh"
#include "network/sim_common.hh"
#include "network/traffic.hh"
#include "obs/telemetry.hh"
#include "queueing/buffer_model.hh"
#include "stats/histogram.hh"
#include "stats/running_stats.hh"
#include "switchsim/switch_unit.hh"

namespace damq {

/** How a full downstream buffer is handled (Section 4). */
enum class FlowControl
{
    Discarding, ///< packets entering a full buffer are dropped
    Blocking    ///< the transmitter is held off by back-pressure
};

/** Human-readable protocol name. */
const char *flowControlName(FlowControl protocol);

/** Parse a case-insensitive protocol name; nullopt on bad input. */
std::optional<FlowControl> tryFlowControlFromString(
    const std::string &name);

/** Parse a case-insensitive protocol name; fatal on bad input. */
FlowControl flowControlFromString(const std::string &name);

/** Everything that defines one simulation run. */
struct NetworkConfig
{
    std::uint32_t numPorts = 64;     ///< endpoints per side
    std::uint32_t radix = 4;         ///< switch degree
    BufferPlacement placement = BufferPlacement::Input;
    BufferType bufferType = BufferType::Damq; ///< input placement only
    std::uint32_t slotsPerBuffer = 4; ///< per input port's worth
    FlowControl protocol = FlowControl::Blocking;
    ArbitrationPolicy arbitration = ArbitrationPolicy::Smart;
    std::uint32_t staleThreshold = 8;
    std::string traffic = "uniform"; ///< pattern name (see makeTraffic)
    double hotSpotFraction = 0.05;   ///< used when traffic == "hotspot"
    double offeredLoad = 0.5;        ///< packets/cycle/source

    /**
     * Burstiness factor B >= 1 (two-state on/off sources).  Each
     * source is "on" a fraction 1/B of the time and generates at
     * rate offeredLoad * B while on, so the average rate is
     * unchanged but arrivals clump.  B = 1 is the paper's plain
     * Bernoulli process.  Requires offeredLoad * B <= 1.
     */
    double burstiness = 1.0;

    /** Mean burst ("on" period) length in cycles when B > 1. */
    Cycle meanBurstCycles = 8;

    /** Seed, warmup/measure schedule, faults, telemetry. */
    SimCommonConfig common;
};

/** Monotone event counters (lifetime totals). */
struct NetworkCounters
{
    std::uint64_t generated = 0;        ///< packets created by sources
    std::uint64_t injected = 0;         ///< entered a stage-0 buffer
    std::uint64_t delivered = 0;        ///< reached their sink
    std::uint64_t discardedAtEntry = 0; ///< dropped entering stage 0
    std::uint64_t discardedInternal = 0;///< dropped at a later stage
    std::uint64_t misrouted = 0;        ///< delivered to wrong sink (bug!)
    std::uint64_t faultDropped = 0;     ///< removed by injected faults
                                        ///  (drops + detected corruptions)

    /** Element-wise difference (for measurement windows). */
    NetworkCounters operator-(const NetworkCounters &rhs) const;

    /** All discards. */
    std::uint64_t discarded() const
    {
        return discardedAtEntry + discardedInternal;
    }
};

/** Results of one measured run. */
struct NetworkResult
{
    NetworkCounters window;  ///< counters within the window
    Cycle measuredCycles = 0;

    /** Delivered packets per endpoint per network cycle. */
    double deliveredThroughput = 0.0;

    /** Offered packets per endpoint per network cycle (echo). */
    double offeredLoad = 0.0;

    /** Fraction of generated packets discarded (both kinds). */
    double discardFraction = 0.0;

    /** In-network latency statistics, in clock cycles. */
    RunningStats latencyClocks;

    /** Mean source-queue length sampled each cycle (blocking). */
    double avgSourceQueueLen = 0.0;

    /** Mean buffered packets per switch sampled each cycle. */
    double avgSwitchOccupancy = 0.0;

    /**
     * Jain fairness index over the per-source mean latencies
     * (1 = perfectly fair, 1/n = one source gets all the service).
     */
    double latencyFairness = 1.0;

    /** Largest per-source mean latency (clocks). */
    double worstSourceLatency = 0.0;
};

/**
 * The simulator.  Construct, then either call run() for a complete
 * warmup+measure experiment or drive step() manually (tests).
 */
class NetworkSimulator
{
  public:
    /** Build all switches and sources for @p config. */
    explicit NetworkSimulator(const NetworkConfig &config);

    /** Advance one network cycle. */
    void step();

    /** Warm up, measure, and summarize. */
    NetworkResult run();

    /** Current network cycle. */
    Cycle now() const { return currentCycle; }

    /** Topology in use. */
    const OmegaTopology &topology() const { return topo; }

    /** Configuration in use. */
    const NetworkConfig &config() const { return cfg; }

    /** Switch @p index of stage @p stage (test access). */
    SwitchUnit &switchAt(std::uint32_t stage, std::uint32_t index);

    /** Lifetime counters since construction. */
    const NetworkCounters &lifetime() const { return counters; }

    /** Packets currently buffered inside switches. */
    std::uint64_t packetsInFlight() const;

    /** Packets currently waiting in source queues. */
    std::uint64_t packetsAtSources() const;

    /** Validate every buffer's invariants (tests). */
    void debugValidate() const;

    /**
     * Stop generating and step until the network and source queues
     * are empty, or @p max_cycles pass.  Returns true when fully
     * drained — at which point the blocking protocol must satisfy
     * injected == delivered + faultDropped exactly.
     */
    bool drain(Cycle max_cycles);

    /** Injection/detection/audit/watchdog summary so far. */
    FaultReport faultReport() const;

    /** The telemetry bundle, or nullptr when telemetry is off. */
    obs::Telemetry *telemetryOrNull() { return telemetry.get(); }
    const obs::Telemetry *telemetryOrNull() const
    {
        return telemetry.get();
    }

    /**
     * Deterministic diagnostic snapshot: per-switch occupancy and
     * head-of-line destinations in stable (stage, index) order,
     * with both seeds echoed.
     */
    std::string snapshotText() const;

  private:
    /** Build the telemetry bundle when the config enables it. */
    void setupTelemetry();

    /** Trace a packet lost in flight: close its flow, mark @p why. */
    void traceLoss(const Packet &pkt, const char *why);

    /** Per-cycle structural faults (slot leaks). */
    void injectStructuralFaults();

    /** Steps 1-3: arbitrate, pop, deliver. */
    void moveTrafficForward();

    /** Step 4: generate and inject at the sources. */
    void generateAndInject();

    /** Periodic invariant + accounting audit. */
    void runAudit();

    /** Per-cycle watchdog bookkeeping and trip check. */
    void watchdogCheck();

    /** Injector/watchdog handle of switch (stage, index). */
    std::size_t componentOf(std::uint32_t stage,
                            std::uint32_t index) const
    {
        return static_cast<std::size_t>(stage) *
                   topo.switchesPerStage() +
               index;
    }

    /** Offer @p pkt to stage 0; returns true if accepted. */
    bool tryInject(NodeId src, Packet pkt);

    /** Record a packet leaving the last stage. */
    void deliver(const Packet &pkt, NodeId sink);

    NetworkConfig cfg;
    OmegaTopology topo;
    Random rng;
    std::unique_ptr<TrafficPattern> pattern;

    /** switches[stage][index] */
    std::vector<std::vector<std::unique_ptr<SwitchUnit>>> switches;

    /** Per-source backlog (used by the blocking protocol only). */
    std::vector<std::deque<Packet>> sourceQueues;

    FaultInjector injector;
    InvariantAuditor auditor;
    DeadlockWatchdog watchdog;
    std::vector<std::uint64_t> prevTransmitted; ///< per component
    std::vector<std::uint32_t> nextSeq;         ///< per source

    Cycle currentCycle = 0;
    PacketId nextPacketId = 0;
    NetworkCounters counters;

    /** One in-flight hop: the packet and the switch it left. */
    struct Move
    {
        std::uint32_t stage;
        std::uint32_t switchIndex;
        Packet packet; ///< outPort = local output it left through
    };

    // Per-cycle scratch storage, reused every moveTrafficForward()
    // call so the steady-state cycle loop never touches the
    // allocator (reserved at construction).
    std::vector<Move> moveScratch;
    std::vector<Packet> sentScratch;
    std::unordered_map<std::uint64_t, std::uint32_t> pendingScratch;

    /**
     * Telemetry bundle, or nullptr when cfg.common.telemetry is
     * disabled — every hook below is a branch on this pointer, so
     * the disabled hot path is unchanged.
     */
    std::unique_ptr<obs::Telemetry> telemetry;
    std::int64_t endpointPid = 0; ///< trace pid of the sources/sinks

    bool draining = false;
    bool measuring = false;
    RunningStats latencyClocks;
    RunningStats sourceQueueSamples;
    RunningStats switchOccupancySamples;
    std::vector<RunningStats> perSourceLatency;
    std::vector<bool> sourceOn; ///< bursty sources: in a burst now?
};

} // namespace damq

#endif // DAMQ_NETWORK_NETWORK_SIM_HH

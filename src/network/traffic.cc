#include "network/traffic.hh"

#include <algorithm>
#include <numeric>

#include "common/bit_util.hh"
#include "common/logging.hh"
#include "common/string_util.hh"

namespace damq {

UniformTraffic::UniformTraffic(std::uint32_t num_nodes)
    : nodes(num_nodes)
{
    damq_assert(num_nodes > 0, "uniform traffic needs nodes");
}

NodeId
UniformTraffic::destinationFor(NodeId, Random &rng)
{
    return static_cast<NodeId>(rng.below(nodes));
}

HotSpotTraffic::HotSpotTraffic(std::uint32_t num_nodes,
                               double hot_fraction, NodeId hot_node)
    : nodes(num_nodes), fraction(hot_fraction), hot(hot_node)
{
    damq_assert(num_nodes > 0, "hot-spot traffic needs nodes");
    damq_assert(hot_node < num_nodes, "hot node outside the network");
    damq_assert(hot_fraction >= 0.0 && hot_fraction <= 1.0,
                "hot fraction must be a probability");
}

NodeId
HotSpotTraffic::destinationFor(NodeId, Random &rng)
{
    if (rng.bernoulli(fraction))
        return hot;
    return static_cast<NodeId>(rng.below(nodes));
}

BitReversalTraffic::BitReversalTraffic(std::uint32_t num_nodes)
    : nodes(num_nodes), bits(floorLog2(num_nodes))
{
    damq_assert(isPow2(num_nodes),
                "bit-reversal needs a power-of-two network");
}

NodeId
BitReversalTraffic::destinationFor(NodeId src, Random &)
{
    NodeId reversed = 0;
    for (unsigned b = 0; b < bits; ++b) {
        if (src & (NodeId{1} << b))
            reversed |= NodeId{1} << (bits - 1 - b);
    }
    return reversed;
}

TransposeTraffic::TransposeTraffic(std::uint32_t side) : side(side)
{
    damq_assert(side > 0, "transpose traffic needs a grid");
}

NodeId
TransposeTraffic::destinationFor(NodeId src, Random &)
{
    const NodeId x = src % side;
    const NodeId y = src / side;
    damq_assert(y < side, "source outside the square grid");
    return x * side + y;
}

PermutationTraffic::PermutationTraffic(std::uint32_t num_nodes,
                                       std::uint64_t seed)
    : mapping(num_nodes)
{
    damq_assert(num_nodes > 0, "permutation traffic needs nodes");
    std::iota(mapping.begin(), mapping.end(), NodeId{0});
    Random rng(seed);
    // Fisher-Yates with our own RNG for reproducibility.
    for (std::size_t i = mapping.size(); i > 1; --i) {
        const std::size_t j = rng.below(i);
        std::swap(mapping[i - 1], mapping[j]);
    }
}

NodeId
PermutationTraffic::destinationFor(NodeId src, Random &)
{
    return mapping.at(src);
}

std::unique_ptr<TrafficPattern>
makeTraffic(const std::string &name, std::uint32_t num_nodes,
            std::uint64_t seed)
{
    const std::string lower = toLower(name);
    if (lower == "uniform")
        return std::make_unique<UniformTraffic>(num_nodes);
    if (lower == "hotspot")
        return std::make_unique<HotSpotTraffic>(num_nodes, 0.05, 0);
    if (lower == "bitrev")
        return std::make_unique<BitReversalTraffic>(num_nodes);
    if (lower == "permutation")
        return std::make_unique<PermutationTraffic>(num_nodes, seed);
    damq_fatal("unknown traffic pattern '", name,
               "' (expected uniform|hotspot|bitrev|permutation)");
}

} // namespace damq

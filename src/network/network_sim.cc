#include "network/network_sim.hh"

#include "common/logging.hh"

namespace damq {

core::SyncConfig
NetworkSimulator::syncConfigOf(const NetworkConfig &config)
{
    core::SyncConfig sync;
    sync.placement = config.placement;
    sync.bufferType = config.bufferType;
    sync.slotsPerBuffer = config.slotsPerBuffer;
    sync.protocol = config.protocol;
    sync.arbitration = config.arbitration;
    sync.staleThreshold = config.staleThreshold;
    sync.switching = config.switching;
    sync.flitsPerPacket = config.flitsPerPacket;
    sync.sharing = config.sharing;
    sync.trafficClasses = config.trafficClasses;
    sync.traffic = config.traffic;
    sync.hotSpotFraction = config.hotSpotFraction;
    sync.transposeSide = 0; // historical: no transpose special case
    sync.offeredLoad = config.offeredLoad;
    sync.burstiness = config.burstiness;
    sync.meanBurstCycles = config.meanBurstCycles;
    sync.latencyUnitScale =
        static_cast<double>(kClocksPerNetworkCycle);
    sync.accountingScope = "network";
    sync.common = config.common;
    return sync;
}

NetworkSimulator::NetworkSimulator(const NetworkConfig &config)
    : cfg(config), graph(config.numPorts, config.radix),
      engine(graph, syncConfigOf(config))
{
}

SwitchUnit &
NetworkSimulator::switchAt(std::uint32_t stage, std::uint32_t index)
{
    damq_assert(stage < graph.omega().numStages(), "bad stage ",
                stage);
    damq_assert(index < graph.omega().switchesPerStage(),
                "bad switch ", index);
    return engine.switchUnit(graph.flatId(stage, index));
}

NetworkResult
NetworkSimulator::run()
{
    const core::SyncResult r = engine.run();
    NetworkResult result;
    result.window = r.window;
    result.measuredCycles = r.measuredCycles;
    result.deliveredThroughput = r.deliveredThroughput;
    result.offeredLoad = r.offeredLoad;
    result.discardFraction = r.discardFraction;
    result.latencyClocks = r.latency;
    result.avgSourceQueueLen = r.avgSourceQueueLen;
    result.avgSwitchOccupancy = r.avgSwitchOccupancy;
    result.latencyFairness = r.latencyFairness;
    result.worstSourceLatency = r.worstSourceLatency;
    result.latencyP50 = r.latencyP50;
    result.latencyP99 = r.latencyP99;
    result.e2eLatencyP50 = r.e2eLatencyP50;
    result.e2eLatencyP99 = r.e2eLatencyP99;
    result.e2eLatencyP999 = r.e2eLatencyP999;
    result.e2eSamples = r.e2eSamples;
    result.classLatency = r.classLatency;
    return result;
}

} // namespace damq

#include "network/network_sim.hh"

#include <algorithm>
#include <sstream>
#include <unordered_map>

#include "common/logging.hh"
#include "common/string_util.hh"
#include "switchsim/switch_model.hh"

namespace damq {

const char *
flowControlName(FlowControl protocol)
{
    switch (protocol) {
      case FlowControl::Discarding: return "discarding";
      case FlowControl::Blocking: return "blocking";
    }
    damq_panic("unknown FlowControl ", static_cast<int>(protocol));
}

std::optional<FlowControl>
tryFlowControlFromString(const std::string &name)
{
    const std::string lower = toLower(name);
    if (lower == "discarding" || lower == "discard")
        return FlowControl::Discarding;
    if (lower == "blocking" || lower == "block")
        return FlowControl::Blocking;
    return std::nullopt;
}

FlowControl
flowControlFromString(const std::string &name)
{
    if (const auto protocol = tryFlowControlFromString(name))
        return *protocol;
    damq_fatal("unknown flow control '", name,
               "' (expected discarding|blocking)");
}

NetworkCounters
NetworkCounters::operator-(const NetworkCounters &rhs) const
{
    NetworkCounters out;
    out.generated = generated - rhs.generated;
    out.injected = injected - rhs.injected;
    out.delivered = delivered - rhs.delivered;
    out.discardedAtEntry = discardedAtEntry - rhs.discardedAtEntry;
    out.discardedInternal = discardedInternal - rhs.discardedInternal;
    out.misrouted = misrouted - rhs.misrouted;
    out.faultDropped = faultDropped - rhs.faultDropped;
    return out;
}

NetworkSimulator::NetworkSimulator(const NetworkConfig &config)
    : cfg(config), topo(config.numPorts, config.radix),
      rng(config.common.seed),
      sourceQueues(config.numPorts),
      injector(config.common.faults),
      auditor(config.common.auditEveryCycles),
      watchdog(config.common.watchdogStallCycles),
      nextSeq(config.numPorts, 0),
      perSourceLatency(config.numPorts),
      sourceOn(config.numPorts, false)
{
    damq_assert(cfg.burstiness >= 1.0,
                "burstiness must be at least 1");
    if (cfg.burstiness > 1.0 &&
        cfg.offeredLoad * cfg.burstiness > 1.0) {
        damq_fatal("offeredLoad * burstiness must not exceed 1 "
                   "(peak rate is a probability); got ",
                   cfg.offeredLoad * cfg.burstiness);
    }
    if (cfg.traffic == "hotspot") {
        pattern = std::make_unique<HotSpotTraffic>(
            cfg.numPorts, cfg.hotSpotFraction, NodeId{0});
    } else {
        pattern = makeTraffic(cfg.traffic, cfg.numPorts, cfg.common.seed);
    }

    switches.resize(topo.numStages());
    for (std::uint32_t stage = 0; stage < topo.numStages(); ++stage) {
        switches[stage].reserve(topo.switchesPerStage());
        for (std::uint32_t i = 0; i < topo.switchesPerStage(); ++i) {
            switches[stage].push_back(makeSwitchUnit(
                cfg.placement, cfg.radix, cfg.bufferType,
                cfg.slotsPerBuffer, cfg.arbitration,
                cfg.staleThreshold));
            // Registration order defines both the fault-plan
            // component handles and the watchdog's stable snapshot
            // order.
            const std::size_t comp = injector.addComponent(
                detail::concat("stage", stage, ".sw", i));
            const std::size_t wcomp = watchdog.addComponent(
                detail::concat("stage", stage, ".sw", i));
            damq_assert(comp == componentOf(stage, i) &&
                            wcomp == comp,
                        "component registration order broken");
        }
    }
    prevTransmitted.assign(
        static_cast<std::size_t>(topo.numStages()) *
            topo.switchesPerStage(),
        0);

    // Size every per-cycle scratch structure up front: at most one
    // departure per switch output exists at once, so these bounds
    // hold for the simulation's whole lifetime.
    moveScratch.reserve(static_cast<std::size_t>(topo.numStages()) *
                        cfg.numPorts);
    sentScratch.reserve(cfg.radix);
    pendingScratch.reserve(cfg.numPorts);

    setupTelemetry();
}

void
NetworkSimulator::setupTelemetry()
{
    if (!cfg.common.telemetry.enabled())
        return;
    telemetry = std::make_unique<obs::Telemetry>(cfg.common.telemetry);

    // Trace row layout: one process per pipeline stage plus a
    // pseudo-process for the endpoints (sources and sinks); one
    // thread per input buffer within a stage.
    endpointPid = static_cast<std::int64_t>(topo.numStages());
    obs::PacketTracer *tracer = telemetry->trace();
    if (tracer) {
        for (std::uint32_t stage = 0; stage < topo.numStages();
             ++stage)
            tracer->setProcessName(stage,
                                   detail::concat("stage", stage));
        tracer->setProcessName(endpointPid, "endpoints");
    }

    for (std::uint32_t stage = 0; stage < topo.numStages(); ++stage) {
        for (std::uint32_t idx = 0; idx < topo.switchesPerStage();
             ++idx) {
            switches[stage][idx]->forEachBuffer(
                [&](PortId port, BufferModel &buffer) {
                    const std::int64_t tid =
                        static_cast<std::int64_t>(idx) * cfg.radix +
                        port;
                    telemetry->attachProbe(
                        buffer,
                        detail::concat("s", stage, ".sw", idx, ".in",
                                       port),
                        stage, tid);
                    if (tracer)
                        tracer->setThreadName(
                            stage, tid,
                            detail::concat("sw", idx, ".in", port));
                });
        }
    }

    // The time series tracks the lifetime counters plus the live
    // occupancy; gauges register on the first sample (the hooks run
    // before the row is taken) and are refreshed only when due.
    telemetry->addSampleHook([this]() {
        obs::MetricRegistry &m = telemetry->metrics();
        m.gauge("net.generated")
            .set(static_cast<double>(counters.generated));
        m.gauge("net.injected")
            .set(static_cast<double>(counters.injected));
        m.gauge("net.delivered")
            .set(static_cast<double>(counters.delivered));
        m.gauge("net.discarded")
            .set(static_cast<double>(counters.discarded()));
        m.gauge("net.faultDropped")
            .set(static_cast<double>(counters.faultDropped));
        m.gauge("net.inFlight")
            .set(static_cast<double>(packetsInFlight()));
        m.gauge("net.sourceQueued")
            .set(static_cast<double>(packetsAtSources()));

        std::uint64_t grants = 0;
        std::uint64_t stale = 0;
        if (cfg.placement == BufferPlacement::Input) {
            for (const auto &stage : switches) {
                for (const auto &sw : stage) {
                    const auto &stats =
                        static_cast<const SwitchModel &>(*sw)
                            .arbiterStats();
                    grants += stats.grantsIssued;
                    stale += stats.staleOverrides;
                }
            }
        }
        m.gauge("arb.grants").set(static_cast<double>(grants));
        m.gauge("arb.staleOverrides")
            .set(static_cast<double>(stale));
    });
}

SwitchUnit &
NetworkSimulator::switchAt(std::uint32_t stage, std::uint32_t index)
{
    damq_assert(stage < switches.size(), "bad stage ", stage);
    damq_assert(index < switches[stage].size(), "bad switch ", index);
    return *switches[stage][index];
}

void
NetworkSimulator::step()
{
    ++currentCycle;
    if (telemetry)
        telemetry->beginCycle(currentCycle);
    injectStructuralFaults();
    moveTrafficForward();
    generateAndInject();
    runAudit();
    watchdogCheck();
    if (telemetry)
        telemetry->endCycle();

    if (measuring) {
        std::uint64_t queued = 0;
        for (const auto &q : sourceQueues)
            queued += q.size();
        sourceQueueSamples.add(static_cast<double>(queued) /
                               static_cast<double>(cfg.numPorts));

        std::uint64_t buffered = 0;
        std::uint64_t switch_count = 0;
        for (const auto &stage : switches) {
            for (const auto &sw : stage) {
                buffered += sw->totalPackets();
                ++switch_count;
            }
        }
        switchOccupancySamples.add(static_cast<double>(buffered) /
                                   static_cast<double>(switch_count));
    }
}

void
NetworkSimulator::moveTrafficForward()
{
    const std::uint32_t last_stage = topo.numStages() - 1;

    // Steps 1+2: every switch decides and pops its departures.
    // Back-pressure tests only look *downstream*, and deliveries
    // are deferred until every switch has transmitted, so the
    // decisions are made against a consistent start-of-cycle
    // snapshot even though the pops are interleaved.
    //
    // With per-input buffers, each downstream buffer has exactly
    // one upstream writer, so a start-of-cycle space check cannot
    // be invalidated.  The central pool and output queues are
    // shared across inputs, and several switches can commit into
    // the same downstream structure in one cycle — so the blocking
    // back-pressure test also counts the arrivals already granted
    // this cycle.  (Two outputs of one switch can never reach the
    // same downstream switch through the shuffle, so accounting
    // between transmit() calls is exact.)
    const bool shared_structures =
        cfg.placement != BufferPlacement::Input;
    std::unordered_map<std::uint64_t, std::uint32_t> &pending =
        pendingScratch;
    pending.clear();
    auto pending_key = [&](std::uint32_t stage, std::uint32_t sw,
                           PortId out) {
        const std::uint64_t structure =
            cfg.placement == BufferPlacement::Output ? out : 0;
        return (static_cast<std::uint64_t>(stage) *
                    topo.switchesPerStage() +
                sw) *
                   topo.radix() +
               structure;
    };

    std::vector<Move> &moves = moveScratch;
    moves.clear();
    for (std::uint32_t stage = 0; stage < topo.numStages(); ++stage) {
        for (std::uint32_t idx = 0; idx < topo.switchesPerStage();
             ++idx) {
            // A stuck arbiter issues no grants at all this cycle.
            if (injector.arbiterStuck(componentOf(stage, idx),
                                      currentCycle))
                continue;
            auto can_send = [&, stage](PortId, PortId out,
                                       const Packet &pkt) {
                if (cfg.protocol == FlowControl::Discarding)
                    return true; // transmit blindly; receiver may drop
                if (stage == last_stage)
                    return true; // sinks always accept
                const StageCoord next =
                    topo.nextStageInput(stage, idx, out);
                // A delayed credit makes the downstream switch
                // report "full" even when space exists: transfers
                // stall but no packet is lost.
                if (injector.creditDelayed(
                        componentOf(stage + 1, next.switchIndex),
                        currentCycle))
                    return false;
                const PortId next_out =
                    topo.outputPortFor(pkt.dest, stage + 1);
                std::uint32_t held = 0;
                if (shared_structures) {
                    const auto found = pending.find(pending_key(
                        stage + 1, next.switchIndex, next_out));
                    if (found != pending.end())
                        held = found->second;
                }
                return switches[stage + 1][next.switchIndex]->canAccept(
                    next.port, next_out, pkt.lengthSlots + held);
            };
            // When a grant-legality audit is due, split the
            // input-buffered switch's transmit into arbitrate +
            // pop so the schedule itself can be checked.
            std::vector<Packet> &sent = sentScratch;
            if (cfg.placement == BufferPlacement::Input &&
                auditor.due(currentCycle)) {
                auto *sm = static_cast<SwitchModel *>(
                    switches[stage][idx].get());
                const GrantList grants = sm->arbitrate(can_send);
                auditor.record(
                    currentCycle,
                    injector.componentName(componentOf(stage, idx)),
                    auditGrantLegality(
                        grants, cfg.radix, cfg.radix,
                        sm->buffer(0).maxReadsPerCycle()));
                sent = sm->popGranted(grants);
            } else {
                switches[stage][idx]->transmitInto(can_send, sent);
            }
            for (Packet &pkt : sent) {
                if (shared_structures && stage != last_stage) {
                    const StageCoord next = topo.nextStageInput(
                        stage, idx, pkt.outPort);
                    const PortId next_out =
                        topo.outputPortFor(pkt.dest, stage + 1);
                    pending[pending_key(stage + 1, next.switchIndex,
                                        next_out)] +=
                        pkt.lengthSlots;
                }
                moves.push_back(Move{stage, idx, pkt});
            }
        }
    }

    for (Move &move : moves) {
        const PortId left_through = move.packet.outPort;
        const std::size_t from =
            componentOf(move.stage, move.switchIndex);
        // Link faults: the packet can vanish or arrive with a
        // flipped header bit.  The receiving side verifies the
        // sealed checksum before using any header field, so a
        // corrupted packet is detected and discarded — never
        // misrouted or silently delivered.
        if (injector.dropOnLink(from, currentCycle, move.packet)) {
            ++counters.faultDropped;
            traceLoss(move.packet, "drop@fault");
            continue;
        }
        injector.corruptOnLink(from, currentCycle, move.packet);
        if (injector.enabled() && !headerIntact(move.packet)) {
            injector.recordDetectedCorruption();
            ++counters.faultDropped;
            traceLoss(move.packet, "drop@corrupt");
            continue;
        }
        if (move.stage == last_stage) {
            deliver(move.packet,
                    topo.sinkFor(move.switchIndex, left_through));
            continue;
        }
        const StageCoord next =
            topo.nextStageInput(move.stage, move.switchIndex,
                                left_through);
        Packet pkt = move.packet;
        pkt.outPort = topo.outputPortFor(pkt.dest, move.stage + 1);
        ++pkt.hops;
        SwitchUnit &target = *switches[move.stage + 1][next.switchIndex];
        const bool accepted = target.tryReceive(next.port, pkt);
        if (!accepted) {
            damq_assert(cfg.protocol == FlowControl::Discarding,
                        "blocking protocol transmitted into a full "
                        "buffer — back-pressure check is broken");
            ++counters.discardedInternal;
            traceLoss(pkt, "drop@internal");
        }
    }
}

void
NetworkSimulator::traceLoss(const Packet &pkt, const char *why)
{
    if (!telemetry)
        return;
    obs::PacketTracer *tr = telemetry->trace();
    if (!tr)
        return;
    tr->instant(why, "pkt", currentCycle, endpointPid, pkt.source);
    tr->asyncEnd("pkt", "pkt", pkt.id, currentCycle, endpointPid,
                 pkt.source);
}

void
NetworkSimulator::generateAndInject()
{
    for (NodeId src = 0; src < cfg.numPorts; ++src) {
        if (draining) {
            // Drain mode: no new traffic, but blocked source
            // queues keep retrying below.
            if (cfg.protocol == FlowControl::Blocking &&
                !sourceQueues[src].empty() &&
                tryInject(src, sourceQueues[src].front()))
                sourceQueues[src].pop_front();
            continue;
        }
        double gen_prob = cfg.offeredLoad;
        if (cfg.burstiness > 1.0) {
            // Two-state on/off source: on a fraction 1/B of the
            // time, generating at rate offered * B while on.
            const double mean_on =
                static_cast<double>(cfg.meanBurstCycles);
            const double mean_off = mean_on * (cfg.burstiness - 1.0);
            if (sourceOn[src]) {
                if (rng.bernoulli(1.0 / mean_on))
                    sourceOn[src] = false;
            } else {
                if (rng.bernoulli(1.0 / mean_off))
                    sourceOn[src] = true;
            }
            gen_prob = sourceOn[src]
                           ? cfg.offeredLoad * cfg.burstiness
                           : 0.0;
        }
        if (rng.bernoulli(gen_prob)) {
            Packet pkt;
            pkt.id = nextPacketId++;
            pkt.source = src;
            pkt.dest = pattern->destinationFor(src, rng);
            pkt.lengthSlots = 1;
            pkt.generatedAt = currentCycle;
            pkt.seq = nextSeq[src]++;
            sealHeader(pkt);
            ++counters.generated;
            if (telemetry) {
                if (obs::PacketTracer *tr = telemetry->trace())
                    tr->instant("gen", "pkt", currentCycle,
                                endpointPid, src);
            }

            if (cfg.protocol == FlowControl::Blocking) {
                sourceQueues[src].push_back(pkt);
            } else if (!tryInject(src, pkt)) {
                ++counters.discardedAtEntry;
                if (telemetry) {
                    if (obs::PacketTracer *tr = telemetry->trace())
                        tr->instant("drop@entry", "pkt",
                                    currentCycle, endpointPid, src);
                }
            }
        }

        if (cfg.protocol == FlowControl::Blocking &&
            !sourceQueues[src].empty()) {
            // The link from the source delivers at most one packet
            // per cycle, and only the head may try.
            if (tryInject(src, sourceQueues[src].front()))
                sourceQueues[src].pop_front();
        }
    }
}

bool
NetworkSimulator::tryInject(NodeId src, Packet pkt)
{
    const StageCoord coord = topo.firstStageInput(src);
    pkt.outPort = topo.outputPortFor(pkt.dest, 0);
    pkt.injectedAt = currentCycle;
    SwitchUnit &first = *switches[0][coord.switchIndex];
    if (!first.canAccept(coord.port, pkt.outPort, pkt.lengthSlots))
        return false;
    const bool accepted = first.tryReceive(coord.port, pkt);
    damq_assert(accepted, "canAccept/tryReceive disagree");
    ++counters.injected;
    if (telemetry) {
        if (obs::PacketTracer *tr = telemetry->trace())
            tr->asyncBegin("pkt", "pkt", pkt.id, currentCycle,
                           endpointPid, src,
                           detail::concat("{\"src\": ", pkt.source,
                                          ", \"dest\": ", pkt.dest,
                                          "}"));
    }
    return true;
}

void
NetworkSimulator::deliver(const Packet &pkt, NodeId sink)
{
    if (pkt.dest != sink) {
        ++counters.misrouted;
        damq_panic("packet ", pkt.id, " for node ", pkt.dest,
                   " delivered to node ", sink,
                   " — omega routing is broken");
    }
    ++counters.delivered;
    if (telemetry) {
        if (obs::PacketTracer *tr = telemetry->trace())
            tr->asyncEnd("pkt", "pkt", pkt.id, currentCycle,
                         endpointPid, sink);
    }
    if (measuring) {
        const double latency =
            static_cast<double>(currentCycle - pkt.injectedAt) *
            static_cast<double>(kClocksPerNetworkCycle);
        latencyClocks.add(latency);
        perSourceLatency[pkt.source].add(latency);
    }
}

NetworkResult
NetworkSimulator::run()
{
    for (Cycle c = 0; c < cfg.common.warmupCycles; ++c)
        step();

    const NetworkCounters at_start = counters;
    measuring = true;
    latencyClocks.reset();
    sourceQueueSamples.reset();
    switchOccupancySamples.reset();
    for (auto &stats : perSourceLatency)
        stats.reset();

    for (Cycle c = 0; c < cfg.common.measureCycles; ++c)
        step();
    measuring = false;

    NetworkResult result;
    result.window = counters - at_start;
    result.measuredCycles = cfg.common.measureCycles;
    result.offeredLoad = cfg.offeredLoad;
    const double denom = static_cast<double>(cfg.numPorts) *
                         static_cast<double>(cfg.common.measureCycles);
    result.deliveredThroughput =
        static_cast<double>(result.window.delivered) / denom;
    result.discardFraction =
        result.window.generated == 0
            ? 0.0
            : static_cast<double>(result.window.discarded()) /
                  static_cast<double>(result.window.generated);
    result.latencyClocks = latencyClocks;
    result.avgSourceQueueLen = sourceQueueSamples.mean();
    result.avgSwitchOccupancy = switchOccupancySamples.mean();

    // Jain fairness over the per-source mean latencies.
    double sum = 0.0;
    double sum_sq = 0.0;
    std::size_t active = 0;
    double worst = 0.0;
    for (const RunningStats &stats : perSourceLatency) {
        if (stats.count() == 0)
            continue;
        const double mean = stats.mean();
        sum += mean;
        sum_sq += mean * mean;
        worst = std::max(worst, mean);
        ++active;
    }
    result.latencyFairness =
        active == 0 || sum_sq == 0.0
            ? 1.0
            : sum * sum / (static_cast<double>(active) * sum_sq);
    result.worstSourceLatency = worst;

    if (telemetry)
        telemetry->writeFiles();
    return result;
}

std::uint64_t
NetworkSimulator::packetsInFlight() const
{
    std::uint64_t total = 0;
    for (const auto &stage : switches)
        for (const auto &sw : stage)
            total += sw->totalPackets();
    return total;
}

std::uint64_t
NetworkSimulator::packetsAtSources() const
{
    std::uint64_t total = 0;
    for (const auto &q : sourceQueues)
        total += q.size();
    return total;
}

void
NetworkSimulator::debugValidate() const
{
    for (const auto &stage : switches)
        for (const auto &sw : stage)
            sw->debugValidate();
}

void
NetworkSimulator::injectStructuralFaults()
{
    if (!injector.enabled())
        return;
    for (std::uint32_t stage = 0; stage < topo.numStages(); ++stage) {
        for (std::uint32_t idx = 0; idx < topo.switchesPerStage();
             ++idx) {
            const std::size_t comp = componentOf(stage, idx);
            if (!injector.rollSlotLeak(comp, currentCycle))
                continue;
            // Deterministic target without an extra draw.
            const PortId input =
                static_cast<PortId>(currentCycle % cfg.radix);
            if (switches[stage][idx]->faultLeakSlot(input)) {
                injector.recordFault(
                    FaultKind::SlotLeak, comp, currentCycle,
                    detail::concat("slot lost via input ", input));
            }
        }
    }
}

void
NetworkSimulator::runAudit()
{
    if (!auditor.due(currentCycle))
        return;
    auditor.beginAudit();
    for (std::uint32_t stage = 0; stage < topo.numStages(); ++stage) {
        for (std::uint32_t idx = 0; idx < topo.switchesPerStage();
             ++idx) {
            auditor.record(
                currentCycle,
                injector.componentName(componentOf(stage, idx)),
                switches[stage][idx]->checkInvariants());
            if (cfg.placement != BufferPlacement::Input)
                continue;
            // Per-source FIFO delivery order, walked in place via
            // forEachInQueue — no queue snapshot is copied.
            const auto *sm = static_cast<const SwitchModel *>(
                switches[stage][idx].get());
            for (PortId in = 0; in < sm->numPorts(); ++in) {
                auditor.record(
                    currentCycle,
                    injector.componentName(componentOf(stage, idx)),
                    auditQueueFifoOrder(sm->buffer(in)));
            }
        }
    }
    // End-to-end conservation: every packet that entered stage 0
    // must be delivered, discarded, removed by a fault, or still
    // buffered — nothing may vanish unaccounted.
    const std::uint64_t accounted =
        counters.delivered + counters.discardedInternal +
        counters.faultDropped + packetsInFlight();
    if (counters.injected != accounted) {
        auditor.record(
            currentCycle, "network",
            {detail::concat(
                "packet accounting broken: injected ",
                counters.injected, " != delivered ",
                counters.delivered, " + discarded ",
                counters.discardedInternal, " + fault-dropped ",
                counters.faultDropped, " + in-flight ",
                packetsInFlight())});
    }
}

void
NetworkSimulator::watchdogCheck()
{
    if (!watchdog.enabled())
        return;
    for (std::uint32_t stage = 0; stage < topo.numStages(); ++stage) {
        for (std::uint32_t idx = 0; idx < topo.switchesPerStage();
             ++idx) {
            const std::size_t comp = componentOf(stage, idx);
            const std::uint64_t transmitted =
                switches[stage][idx]->unitStats().transmitted;
            const bool moved = transmitted != prevTransmitted[comp];
            prevTransmitted[comp] = transmitted;
            watchdog.observe(comp, currentCycle,
                             switches[stage][idx]->totalPackets() > 0,
                             moved);
        }
    }
    if (watchdog.check(currentCycle,
                       [this] { return snapshotText(); })) {
        damq_warn("deadlock watchdog fired:\n",
                  watchdog.diagnostic());
    }
}

bool
NetworkSimulator::drain(Cycle max_cycles)
{
    draining = true;
    for (Cycle c = 0; c < max_cycles; ++c) {
        if (packetsInFlight() == 0 && packetsAtSources() == 0)
            break;
        step();
    }
    draining = false;
    return packetsInFlight() == 0 && packetsAtSources() == 0;
}

FaultReport
NetworkSimulator::faultReport() const
{
    FaultReport report;
    injector.fillReport(report);
    auditor.fillReport(report);
    watchdog.fillReport(report);
    return report;
}

std::string
NetworkSimulator::snapshotText() const
{
    std::ostringstream out;
    out << "    snapshot at cycle " << currentCycle << " (seed "
        << cfg.common.seed << ", fault seed " << cfg.common.faults.seed << ")\n";
    for (std::uint32_t stage = 0; stage < topo.numStages(); ++stage) {
        for (std::uint32_t idx = 0; idx < topo.switchesPerStage();
             ++idx) {
            const SwitchUnit &sw = *switches[stage][idx];
            out << "    stage" << stage << ".sw" << idx << ": "
                << sw.totalPackets() << " packets in "
                << sw.totalUsedSlots() << " slots";
            if (cfg.placement == BufferPlacement::Input) {
                const auto *sm =
                    static_cast<const SwitchModel *>(&sw);
                for (PortId in = 0; in < sm->numPorts(); ++in) {
                    for (PortId o = 0; o < sm->numPorts(); ++o) {
                        if (const Packet *head =
                                sm->buffer(in).peek(o))
                            out << " in" << in << "->out" << o
                                << " head dest " << head->dest;
                    }
                }
            }
            out << "\n";
        }
    }
    return out.str();
}

} // namespace damq

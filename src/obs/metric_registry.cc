#include "obs/metric_registry.hh"

#include "common/csv_writer.hh"
#include "common/logging.hh"

namespace damq {
namespace obs {

MetricRegistry::MetricRegistry(Cycle sample_stride)
    : stride(sample_stride)
{
}

Counter &
MetricRegistry::counter(const std::string &name)
{
    for (auto &named : counters) {
        if (named.name == name)
            return *named.metric;
    }
    damq_assert(columns.empty(),
                "counter '", name,
                "' registered after the first time-series sample");
    counters.push_back({name, std::make_unique<Counter>()});
    return *counters.back().metric;
}

Gauge &
MetricRegistry::gauge(const std::string &name)
{
    for (auto &named : gauges) {
        if (named.name == name)
            return *named.metric;
    }
    damq_assert(columns.empty(),
                "gauge '", name,
                "' registered after the first time-series sample");
    gauges.push_back({name, std::make_unique<Gauge>()});
    return *gauges.back().metric;
}

Histogram &
MetricRegistry::histogram(const std::string &name, double bin_width,
                          std::size_t num_bins)
{
    for (auto &named : histograms) {
        if (named.name == name) {
            damq_assert(named.metric->numBins() == num_bins,
                        "histogram '", name,
                        "' re-registered with a different geometry");
            return *named.metric;
        }
    }
    histograms.push_back(
        {name, std::make_unique<Histogram>(bin_width, num_bins)});
    return *histograms.back().metric;
}

void
MetricRegistry::sample(Cycle now)
{
    if (columns.empty()) {
        columns.reserve(counters.size() + gauges.size());
        for (const auto &named : counters)
            columns.push_back(named.name);
        for (const auto &named : gauges)
            columns.push_back(named.name);
    }
    damq_assert(columns.size() == counters.size() + gauges.size(),
                "metric registered after the first sample");
    std::vector<double> row;
    row.reserve(columns.size());
    for (const auto &named : counters)
        row.push_back(static_cast<double>(named.metric->value()));
    for (const auto &named : gauges)
        row.push_back(named.metric->value());
    cycles.push_back(now);
    rows.push_back(std::move(row));
}

std::uint64_t
MetricRegistry::counterValue(const std::string &name) const
{
    for (const auto &named : counters) {
        if (named.name == name)
            return named.metric->value();
    }
    return 0;
}

void
MetricRegistry::writeJson(std::ostream &out) const
{
    JsonWriter json(out);
    json.beginObject();
    json.field("schema", "damq-metrics-v1");
    json.field("sampleStride", static_cast<std::uint64_t>(stride));

    json.key("counters");
    json.beginObject();
    for (const auto &named : counters)
        json.field(named.name, named.metric->value());
    json.endObject();

    json.key("gauges");
    json.beginObject();
    for (const auto &named : gauges)
        json.field(named.name, named.metric->value());
    json.endObject();

    json.key("histograms");
    json.beginArray();
    for (const auto &named : histograms) {
        const Histogram &hist = *named.metric;
        json.beginObject();
        json.field("name", named.name);
        json.field("binWidth", hist.binLowerEdge(1));
        json.field("count", hist.count());
        json.field("overflow", hist.overflowCount());
        json.field("p50", hist.quantile(0.50));
        json.field("p90", hist.quantile(0.90));
        json.field("p99", hist.quantile(0.99));
        json.key("bins");
        json.beginArray();
        // Trailing empty bins are elided so sparse histograms stay
        // small; the bin index is implicit in the position.
        std::size_t last = hist.numBins();
        while (last > 0 && hist.binCount(last - 1) == 0)
            --last;
        for (std::size_t i = 0; i < last; ++i)
            json.value(hist.binCount(i));
        json.endArray();
        json.endObject();
    }
    json.endArray();

    json.key("series");
    json.beginObject();
    json.key("columns");
    json.beginArray();
    for (const std::string &name : columns)
        json.value(name);
    json.endArray();
    json.key("rows");
    json.beginArray();
    for (std::size_t i = 0; i < rows.size(); ++i) {
        json.beginArray();
        json.value(static_cast<std::uint64_t>(cycles[i]));
        for (const double v : rows[i])
            json.value(v);
        json.endArray();
    }
    json.endArray();
    json.endObject();

    json.endObject();
    json.finish();
}

void
MetricRegistry::writeCsv(std::ostream &out) const
{
    CsvWriter csv(out);
    std::vector<std::string> header;
    header.reserve(columns.size() + 1);
    header.push_back("cycle");
    for (const std::string &name : columns)
        header.push_back(name);
    csv.header(header);
    std::vector<std::string> fields(header.size());
    for (std::size_t i = 0; i < rows.size(); ++i) {
        fields[0] = std::to_string(cycles[i]);
        for (std::size_t c = 0; c < rows[i].size(); ++c)
            fields[c + 1] = formatJsonNumber(rows[i][c]);
        csv.row(fields);
    }
}

} // namespace obs
} // namespace damq

/**
 * @file
 * Per-packet lifecycle recorder with Chrome-trace-format export.
 *
 * The tracer collects discrete events (packet generated, injected,
 * buffered at a hop, granted/dequeued, delivered, discarded) and
 * serializes them as Chrome trace JSON — the `{"traceEvents": [...]}`
 * document that chrome://tracing and https://ui.perfetto.dev open
 * directly.  Timestamps are simulation cycles (the viewer's "us"
 * unit reads as cycles); rows are organized with the standard
 * pid/tid hierarchy, named via metadata events:
 *
 *  - one *process* per pipeline stage (Omega) or node (mesh);
 *  - one *thread* per input buffer, so a buffer's packet
 *    residencies appear as 'X' (complete) spans on its own row;
 *  - one async 'b'/'e' pair per packet (id = packet id) spanning
 *    injection to delivery, which perfetto draws as a flow.
 *
 * Event storage is bounded by @c max_events: once the cap is hit
 * new events are counted as dropped instead of stored, so tracing a
 * saturated sweep cannot exhaust memory.
 */

#ifndef DAMQ_OBS_PACKET_TRACER_HH
#define DAMQ_OBS_PACKET_TRACER_HH

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "common/types.hh"

namespace damq {
namespace obs {

/** Records trace events and writes Chrome trace JSON. */
class PacketTracer
{
  public:
    /** @param max_events  storage cap; further events are dropped
     *                     (and counted). */
    explicit PacketTracer(std::uint64_t max_events = 1'000'000);

    PacketTracer(const PacketTracer &) = delete;
    PacketTracer &operator=(const PacketTracer &) = delete;

    /** Name the trace row group @p pid ("stage0", "node3,1", ...). */
    void setProcessName(std::int64_t pid, const std::string &name);

    /** Name row @p tid of group @p pid ("sw2.in1", ...). */
    void setThreadName(std::int64_t pid, std::int64_t tid,
                       const std::string &name);

    /**
     * Instant event ('i') at cycle @p ts.  @p args_json, when
     * non-empty, must be one complete JSON object ("{...}") and is
     * spliced into the event verbatim.
     */
    void instant(const std::string &name, const char *category,
                 Cycle ts, std::int64_t pid, std::int64_t tid,
                 const std::string &args_json = "");

    /** Complete event ('X'): a span of @p dur cycles from @p ts. */
    void complete(const std::string &name, const char *category,
                  Cycle ts, Cycle dur, std::int64_t pid,
                  std::int64_t tid,
                  const std::string &args_json = "");

    /** Async begin ('b') for flow @p id (e.g. a packet id). */
    void asyncBegin(const std::string &name, const char *category,
                    std::uint64_t id, Cycle ts, std::int64_t pid,
                    std::int64_t tid,
                    const std::string &args_json = "");

    /** Async end ('e') matching an asyncBegin with the same id. */
    void asyncEnd(const std::string &name, const char *category,
                  std::uint64_t id, Cycle ts, std::int64_t pid,
                  std::int64_t tid);

    /** Events stored (metadata events excluded). */
    std::uint64_t eventCount() const { return events.size(); }

    /** Events discarded after the cap was reached. */
    std::uint64_t droppedEvents() const { return dropped; }

    /** Write the `{"traceEvents": [...]}` document. */
    void writeChromeTrace(std::ostream &out) const;

  private:
    struct Event
    {
        std::string name;
        const char *category;  ///< static string
        char phase;            ///< 'i', 'X', 'b', 'e'
        Cycle ts;
        Cycle dur;             ///< 'X' only
        std::int64_t pid;
        std::int64_t tid;
        std::uint64_t id;      ///< 'b'/'e' only
        std::string args;      ///< preformatted JSON object or empty
    };

    struct NameMeta
    {
        bool thread;           ///< thread_name vs process_name
        std::int64_t pid;
        std::int64_t tid;
        std::string name;
    };

    /** Append @p event unless the cap is hit. */
    void record(Event event);

    std::uint64_t maxEvents;
    std::uint64_t dropped = 0;
    std::vector<Event> events;
    std::vector<NameMeta> names;
};

} // namespace obs
} // namespace damq

#endif // DAMQ_OBS_PACKET_TRACER_HH

#include "obs/telemetry.hh"

#include <fstream>
#include <iostream>
#include <utility>

#include "common/logging.hh"

namespace damq {
namespace obs {

Telemetry::Telemetry(const TelemetryConfig &config)
    : cfg(config), registry(config.metricsEvery)
{
    if (cfg.tracePackets)
        tracer = std::make_unique<PacketTracer>(cfg.maxTraceEvents);
}

void
Telemetry::endCycle()
{
    if (!registry.sampleDue(now))
        return;
    for (const auto &hook : sampleHooks)
        hook();
    registry.sample(now);
}

void
Telemetry::addSampleHook(std::function<void()> hook)
{
    sampleHooks.push_back(std::move(hook));
}

QueueProbe &
Telemetry::attachProbe(BufferModel &buffer, const std::string &label,
                       std::int64_t pid, std::int64_t tid)
{
    probes.push_back(std::make_unique<QueueProbe>(
        registry, clock(), buffer, label, tracer.get(), pid, tid));
    buffer.attachProbe(probes.back().get());
    return *probes.back();
}

namespace {

/** Open @p path for writing or die with a useful message. */
std::ofstream
openSink(const std::string &path)
{
    std::ofstream out(path);
    if (!out)
        damq_fatal("telemetry: cannot write '", path, "'");
    return out;
}

} // namespace

int
Telemetry::writeFiles() const
{
    if (cfg.outputPrefix.empty())
        return 0;

    int written = 0;

    {
        const std::string path = cfg.outputPrefix + ".metrics.json";
        std::ofstream out = openSink(path);
        registry.writeJson(out);
        std::cerr << "telemetry: wrote " << path << "\n";
        ++written;
    }

    if (registry.sampleStride() != 0) {
        const std::string path = cfg.outputPrefix + ".metrics.csv";
        std::ofstream out = openSink(path);
        registry.writeCsv(out);
        std::cerr << "telemetry: wrote " << path << " ("
                  << registry.seriesRowCount() << " samples)\n";
        ++written;
    }

    if (tracer) {
        const std::string path = cfg.outputPrefix + ".trace.json";
        std::ofstream out = openSink(path);
        tracer->writeChromeTrace(out);
        std::cerr << "telemetry: wrote " << path << " ("
                  << tracer->eventCount() << " events";
        if (tracer->droppedEvents() != 0)
            std::cerr << ", " << tracer->droppedEvents()
                      << " dropped at the " << cfg.maxTraceEvents
                      << "-event cap";
        std::cerr << ")\n";
        ++written;
    }

    return written;
}

} // namespace obs
} // namespace damq

/**
 * @file
 * BufferProbe implementation feeding the telemetry subsystem.
 *
 * One QueueProbe watches one input buffer.  It maintains two
 * histograms in the owning MetricRegistry:
 *
 *  - `occ:<label>`  — buffer occupancy (committed slots) observed at
 *    every enqueue and dequeue — and, under the flit-level switching
 *    modes, at every flit arrival/departure that moves the slot
 *    count — bin width one slot, one bin per slot of capacity;
 *  - `wait:<label>` — packet waiting time in cycles from enqueue to
 *    dequeue, bin width one cycle (long tails land in the overflow
 *    bin and still count toward quantiles).
 *
 * It also bumps the registry-wide `buf.enqueues` / `buf.dequeues`
 * counters, and — when a PacketTracer is attached — emits one
 * complete ('X') trace span per packet residency on the probe's
 * pid/tid row.  Packets still buffered when the run ends (or wiped
 * by clear()) produce no span.
 *
 * The probe reads the current cycle through a pointer into the
 * owning Telemetry object, so the simulator only has to publish the
 * clock once per cycle instead of threading it through every push.
 */

#ifndef DAMQ_OBS_QUEUE_PROBE_HH
#define DAMQ_OBS_QUEUE_PROBE_HH

#include <cstdint>
#include <string>
#include <unordered_map>

#include "common/types.hh"
#include "obs/metric_registry.hh"
#include "obs/packet_tracer.hh"
#include "queueing/buffer_model.hh"

namespace damq {
namespace obs {

/** Telemetry observer for one input buffer. */
class QueueProbe : public BufferProbe
{
  public:
    /**
     * @param registry  owning registry (histograms + counters live
     *                  there).
     * @param clock     current simulation cycle, published by the
     *                  owning Telemetry; must outlive the probe.
     * @param buffer    the buffer this probe will be attached to
     *                  (its capacity sizes the occupancy histogram).
     * @param label     stable identity for metric names, e.g.
     *                  "s0.sw2.in1".
     * @param tracer    optional packet tracer for residency spans.
     * @param pid, tid  trace row of this buffer (tracer != nullptr).
     */
    QueueProbe(MetricRegistry &registry, const Cycle *clock,
               const BufferModel &buffer, const std::string &label,
               PacketTracer *tracer = nullptr, std::int64_t pid = 0,
               std::int64_t tid = 0);

    void onEnqueue(const BufferModel &buffer,
                   const Packet &pkt) override;
    void onDequeue(const BufferModel &buffer, QueueKey key,
                   const Packet &pkt) override;
    void onClear(const BufferModel &buffer) override;
    void onFlitProgress(const BufferModel &buffer) override;

    /** Metric-name label this probe was built with. */
    const std::string &label() const { return tag; }

  private:
    const Cycle *clock;
    std::string tag;
    Histogram &occupancy;
    Histogram &waiting;
    Counter &enqueues;
    Counter &dequeues;
    PacketTracer *tracer;
    std::int64_t pid;
    std::int64_t tid;

    /** Enqueue cycle of every packet currently inside the buffer. */
    std::unordered_map<PacketId, Cycle> pendingSince;
};

} // namespace obs
} // namespace damq

#endif // DAMQ_OBS_QUEUE_PROBE_HH

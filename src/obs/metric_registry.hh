/**
 * @file
 * Named metrics with per-cycle time-series sampling.
 *
 * A MetricRegistry holds three metric kinds:
 *
 *  - **counters**: monotone 64-bit event totals (packets generated,
 *    grants issued, ...);
 *  - **gauges**: instantaneous doubles set by the owner right
 *    before a sample (buffered packets, mean source-queue length);
 *  - **histograms**: stats::Histogram distributions (per-queue
 *    occupancy, waiting times) — summarized at the end of a run,
 *    not sampled over time.
 *
 * Counters and gauges form the columns of a *time series*: every
 * @c sampleStride cycles the registry appends one row with the
 * current value of every column, in registration order.  The series
 * serializes to CSV (one row per sample) and to the metrics JSON
 * document; both spell doubles via formatJsonNumber so the output
 * is bit-reproducible.
 *
 * The registry is deliberately allocation-light but not lock-free:
 * one simulator owns one registry, and sweep tasks never share one.
 */

#ifndef DAMQ_OBS_METRIC_REGISTRY_HH
#define DAMQ_OBS_METRIC_REGISTRY_HH

#include <cstdint>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "common/json_writer.hh"
#include "common/types.hh"
#include "stats/histogram.hh"

namespace damq {
namespace obs {

/** Monotone event counter. */
class Counter
{
  public:
    /** Add @p delta events (default one). */
    void inc(std::uint64_t delta = 1) { count += delta; }

    /** Events so far. */
    std::uint64_t value() const { return count; }

  private:
    std::uint64_t count = 0;
};

/** Instantaneous value, set by the owner before each sample. */
class Gauge
{
  public:
    /** Record the current level. */
    void set(double v) { level = v; }

    /** Last recorded level. */
    double value() const { return level; }

  private:
    double level = 0.0;
};

/** Named counters/gauges/histograms plus their time series. */
class MetricRegistry
{
  public:
    /** @param sample_stride  cycles between time-series samples
     *                        (0 = no time series). */
    explicit MetricRegistry(Cycle sample_stride = 0);

    MetricRegistry(const MetricRegistry &) = delete;
    MetricRegistry &operator=(const MetricRegistry &) = delete;

    /** Find-or-create the counter @p name. */
    Counter &counter(const std::string &name);

    /** Find-or-create the gauge @p name. */
    Gauge &gauge(const std::string &name);

    /**
     * Find-or-create the histogram @p name with the given geometry.
     * Asking for an existing name with a different geometry is a
     * bug (panics).
     */
    Histogram &histogram(const std::string &name, double bin_width,
                         std::size_t num_bins);

    /** Cycles between samples (0 = time series disabled). */
    Cycle sampleStride() const { return stride; }

    /** True when @p now lands on the sampling stride. */
    bool sampleDue(Cycle now) const
    {
        return stride != 0 && now % stride == 0;
    }

    /**
     * Append one time-series row for cycle @p now: the value of
     * every counter and gauge, in registration order.  All columns
     * must be registered before the first sample — the column set
     * is frozen then, so every row has the same shape.
     */
    void sample(Cycle now);

    /** Column names of the time series (counters, then gauges). */
    const std::vector<std::string> &seriesColumns() const
    {
        return columns;
    }

    /** Sampled cycle numbers, one per row. */
    const std::vector<Cycle> &seriesCycles() const { return cycles; }

    /** Row @p i of the time series (seriesColumns() order). */
    const std::vector<double> &seriesRow(std::size_t i) const
    {
        return rows[i];
    }

    /** Number of time-series rows recorded. */
    std::size_t seriesRowCount() const { return rows.size(); }

    /** Value of counter @p name (0 when absent) — test access. */
    std::uint64_t counterValue(const std::string &name) const;

    /**
     * Write the whole registry as one JSON document:
     * `{schema, sampleStride, counters, gauges, histograms, series}`.
     * The schema tag is "damq-metrics-v1"; the smoke tests pin it.
     */
    void writeJson(std::ostream &out) const;

    /** Write the time series as CSV: `cycle,<col>,...` rows. */
    void writeCsv(std::ostream &out) const;

  private:
    template <typename T>
    struct Named
    {
        std::string name;
        std::unique_ptr<T> metric; ///< stable address across growth
    };

    Cycle stride;
    std::vector<Named<Counter>> counters;
    std::vector<Named<Gauge>> gauges;
    std::vector<Named<Histogram>> histograms;

    std::vector<std::string> columns; ///< frozen at first sample
    std::vector<Cycle> cycles;
    std::vector<std::vector<double>> rows;
};

} // namespace obs
} // namespace damq

#endif // DAMQ_OBS_METRIC_REGISTRY_HH

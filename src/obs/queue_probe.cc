#include "obs/queue_probe.hh"

#include <string>

namespace damq {
namespace obs {

namespace {

/** Waiting-time histogram range; longer waits hit the overflow bin. */
constexpr std::size_t kWaitBins = 1024;

} // namespace

QueueProbe::QueueProbe(MetricRegistry &registry, const Cycle *clock,
                       const BufferModel &buffer,
                       const std::string &label, PacketTracer *tracer,
                       std::int64_t pid, std::int64_t tid)
    : clock(clock), tag(label),
      occupancy(registry.histogram("occ:" + label, 1.0,
                                   buffer.capacitySlots() + 1)),
      waiting(registry.histogram("wait:" + label, 1.0, kWaitBins)),
      enqueues(registry.counter("buf.enqueues")),
      dequeues(registry.counter("buf.dequeues")),
      tracer(tracer), pid(pid), tid(tid)
{
}

void
QueueProbe::onEnqueue(const BufferModel &buffer, const Packet &pkt)
{
    enqueues.inc();
    occupancy.add(static_cast<double>(buffer.usedSlots()));
    pendingSince.emplace(pkt.id, *clock);
}

void
QueueProbe::onDequeue(const BufferModel &buffer, QueueKey key,
                      const Packet &pkt)
{
    dequeues.inc();
    occupancy.add(static_cast<double>(buffer.usedSlots()));

    Cycle entered = *clock;
    if (const auto it = pendingSince.find(pkt.id);
        it != pendingSince.end()) {
        entered = it->second;
        pendingSince.erase(it);
    }
    const Cycle wait = *clock - entered;
    waiting.add(static_cast<double>(wait));

    if (tracer) {
        tracer->complete("p" + std::to_string(pkt.id), "queue",
                         entered, wait, pid, tid,
                         "{\"pkt\": " + std::to_string(pkt.id) +
                             ", \"out\": " + std::to_string(key.out) +
                             ", \"wait\": " + std::to_string(wait) +
                             "}");
    }
}

void
QueueProbe::onClear(const BufferModel &)
{
    pendingSince.clear();
}

void
QueueProbe::onFlitProgress(const BufferModel &buffer)
{
    // Under wormhole/VCT a packet's footprint grows and shrinks one
    // flit at a time between the enqueue and dequeue edges; sample
    // the occupancy at each step so `occ:` reflects slots actually
    // held, not just whole-packet residency.  Packet-mode runs never
    // reach here.
    occupancy.add(static_cast<double>(buffer.usedSlots()));
}

} // namespace obs
} // namespace damq

/**
 * @file
 * Facade tying the telemetry pieces together for a simulator.
 *
 * A simulator owns at most one Telemetry object (none when
 * telemetry is off — the sims keep a null unique_ptr and every hook
 * site is a branch-on-null, so the disabled path stays
 * byte-identical to a build without telemetry).  The facade bundles:
 *
 *  - a MetricRegistry (counters, gauges, histograms, time series);
 *  - an optional PacketTracer for per-packet lifecycle events;
 *  - the QueueProbe instances attached to the input buffers;
 *  - the simulation clock the probes read.
 *
 * Per-cycle protocol: the simulator calls beginCycle(now) before
 * doing any work in a cycle (so probe events carry the right
 * timestamp) and endCycle() after, which runs the registered sample
 * hooks (gauge refreshers) and appends a time-series row whenever
 * the configured stride is due.
 *
 * File output: writeFiles() emits `<prefix>.metrics.json`,
 * `<prefix>.metrics.csv` (when sampling) and `<prefix>.trace.json`
 * (when tracing), announcing each on stderr — never stdout, which
 * belongs to the byte-identical bench tables.
 */

#ifndef DAMQ_OBS_TELEMETRY_HH
#define DAMQ_OBS_TELEMETRY_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/types.hh"
#include "obs/metric_registry.hh"
#include "obs/packet_tracer.hh"
#include "obs/queue_probe.hh"

namespace damq {
namespace obs {

/** What to collect and where to put it. */
struct TelemetryConfig
{
    /** Cycles between time-series samples; 0 disables the series. */
    Cycle metricsEvery = 0;

    /** Record per-packet lifecycle events (Chrome trace). */
    bool tracePackets = false;

    /** Trace storage cap; see PacketTracer. */
    std::uint64_t maxTraceEvents = 1'000'000;

    /**
     * Output file prefix for writeFiles(); empty means the caller
     * consumes the data programmatically instead.
     */
    std::string outputPrefix;

    /** Whether any collection is requested at all. */
    bool enabled() const { return metricsEvery != 0 || tracePackets; }
};

/** Per-simulator telemetry bundle.  See the file comment. */
class Telemetry
{
  public:
    explicit Telemetry(const TelemetryConfig &config);

    Telemetry(const Telemetry &) = delete;
    Telemetry &operator=(const Telemetry &) = delete;

    /** The configuration this bundle was built with. */
    const TelemetryConfig &config() const { return cfg; }

    /** The metric registry (counters/gauges/histograms/series). */
    MetricRegistry &metrics() { return registry; }
    const MetricRegistry &metrics() const { return registry; }

    /** The packet tracer, or nullptr when tracing is off. */
    PacketTracer *trace() { return tracer.get(); }
    const PacketTracer *trace() const { return tracer.get(); }

    /** Clock location for probes; valid for this object's lifetime. */
    const Cycle *clock() const { return &now; }

    /** Publish the cycle about to be simulated. */
    void beginCycle(Cycle cycle) { now = cycle; }

    /**
     * Finish the published cycle: when a time-series sample is due,
     * run every sample hook (typically gauge refreshers) and append
     * the row.
     */
    void endCycle();

    /**
     * Register @p hook to run just before each time-series sample.
     * Simulators use this to refresh gauges (buffered packets,
     * source-queue depth) only when a row is actually taken.
     */
    void addSampleHook(std::function<void()> hook);

    /**
     * Create a QueueProbe bound to this bundle's registry, clock and
     * tracer, attach it to @p buffer, and keep it alive for the
     * lifetime of the Telemetry object.
     */
    QueueProbe &attachProbe(BufferModel &buffer,
                            const std::string &label,
                            std::int64_t pid = 0,
                            std::int64_t tid = 0);

    /**
     * Write the collected data to `<outputPrefix>.*` files (see the
     * file comment); no-op when outputPrefix is empty.  Returns the
     * number of files written.
     */
    int writeFiles() const;

  private:
    TelemetryConfig cfg;
    Cycle now = 0;
    MetricRegistry registry;
    std::unique_ptr<PacketTracer> tracer;
    std::vector<std::unique_ptr<QueueProbe>> probes;
    std::vector<std::function<void()>> sampleHooks;
};

} // namespace obs
} // namespace damq

#endif // DAMQ_OBS_TELEMETRY_HH

#include "obs/packet_tracer.hh"

#include <utility>

#include "common/json_writer.hh"

namespace damq {
namespace obs {

PacketTracer::PacketTracer(std::uint64_t max_events)
    : maxEvents(max_events)
{
}

void
PacketTracer::setProcessName(std::int64_t pid, const std::string &name)
{
    names.push_back({false, pid, 0, name});
}

void
PacketTracer::setThreadName(std::int64_t pid, std::int64_t tid,
                            const std::string &name)
{
    names.push_back({true, pid, tid, name});
}

void
PacketTracer::record(Event event)
{
    if (events.size() >= maxEvents) {
        ++dropped;
        return;
    }
    events.push_back(std::move(event));
}

void
PacketTracer::instant(const std::string &name, const char *category,
                      Cycle ts, std::int64_t pid, std::int64_t tid,
                      const std::string &args_json)
{
    record({name, category, 'i', ts, 0, pid, tid, 0, args_json});
}

void
PacketTracer::complete(const std::string &name, const char *category,
                       Cycle ts, Cycle dur, std::int64_t pid,
                       std::int64_t tid, const std::string &args_json)
{
    record({name, category, 'X', ts, dur, pid, tid, 0, args_json});
}

void
PacketTracer::asyncBegin(const std::string &name, const char *category,
                         std::uint64_t id, Cycle ts, std::int64_t pid,
                         std::int64_t tid, const std::string &args_json)
{
    record({name, category, 'b', ts, 0, pid, tid, id, args_json});
}

void
PacketTracer::asyncEnd(const std::string &name, const char *category,
                       std::uint64_t id, Cycle ts, std::int64_t pid,
                       std::int64_t tid)
{
    record({name, category, 'e', ts, 0, pid, tid, id, ""});
}

void
PacketTracer::writeChromeTrace(std::ostream &out) const
{
    JsonWriter json(out);
    json.beginObject();
    json.field("displayTimeUnit", "ms");
    json.key("traceEvents");
    json.beginArray();

    for (const NameMeta &meta : names) {
        json.beginObject();
        json.field("name",
                   meta.thread ? "thread_name" : "process_name");
        json.field("ph", "M");
        json.field("pid", meta.pid);
        if (meta.thread)
            json.field("tid", meta.tid);
        json.key("args");
        json.beginObject();
        json.field("name", meta.name);
        json.endObject();
        json.endObject();
    }

    for (const Event &event : events) {
        json.beginObject();
        json.field("name", event.name);
        json.field("cat", event.category);
        const char phase[2] = {event.phase, '\0'};
        json.field("ph", phase);
        json.field("ts", static_cast<std::uint64_t>(event.ts));
        if (event.phase == 'X')
            json.field("dur", static_cast<std::uint64_t>(event.dur));
        json.field("pid", event.pid);
        json.field("tid", event.tid);
        if (event.phase == 'b' || event.phase == 'e')
            json.field("id", event.id);
        if (!event.args.empty()) {
            json.key("args");
            json.rawValue(event.args);
        }
        json.endObject();
    }

    json.endArray();
    json.endObject();
    json.finish();
}

} // namespace obs
} // namespace damq

/**
 * @file
 * Conformance suite for the flit-level switching modes (wormhole
 * and virtual cut-through) introduced by the FlowControlScheme API:
 *
 *  - credit conservation: after a drained run every link's credit
 *    counter is back at its cap and the engine-wide issued/returned
 *    totals match exactly (they telescope per packet);
 *  - no VC interleaving: the per-cycle flit invariant audit (every
 *    active stream's packet is its queue's head, credits + used
 *    slots == cap, at most one partially-arrived packet per input
 *    buffer) reports zero violations under sustained load;
 *  - wormhole vs VCT occupancy: with per-buffer slots equal to the
 *    packet length, VCT admits at most one packet per input buffer
 *    while wormhole packs partial packets — the two modes produce
 *    observably different results on a 2-hop (2x2 torus) path;
 *  - shard bit-identity: a wormhole torus at 1, 2, and 8 shards is
 *    byte-for-byte identical (counters, Welford latency moments,
 *    occupancy snapshot);
 *  - the packet-synchronized path is untouched: flit state is only
 *    allocated when a flit-level mode is requested.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "network/core/flit.hh"
#include "network/core/flow_control.hh"
#include "network/network_sim.hh"
#include "network/torus_sim.hh"
#include "runner/sim_flags.hh"

namespace damq {
namespace {

// ------------------------------------------------- scheme factory

TEST(FlowControlSchemeTest, PacketSyncKeepsRequestedProtocol)
{
    const auto scheme = FlowControlScheme::make(
        Switching::PacketSync, FlowControl::Blocking);
    EXPECT_FALSE(scheme->flitLevel());
    EXPECT_FALSE(scheme->creditBased());
    EXPECT_EQ(scheme->protocol(), FlowControl::Blocking);
    EXPECT_EQ(scheme->headSlotsNeeded(4), 4u);
}

TEST(FlowControlSchemeTest, FlitModesUpgradeBlockingToCredit)
{
    const auto wh = FlowControlScheme::make(Switching::Wormhole,
                                            FlowControl::Blocking);
    EXPECT_TRUE(wh->flitLevel());
    EXPECT_TRUE(wh->creditBased());
    EXPECT_EQ(wh->protocol(), FlowControl::Credit);
    EXPECT_EQ(wh->headSlotsNeeded(4), 1u);
    EXPECT_FALSE(wh->reservesWholePacket());

    const auto vct = FlowControlScheme::make(
        Switching::VirtualCutThrough, FlowControl::OnOff);
    EXPECT_TRUE(vct->flitLevel());
    EXPECT_FALSE(vct->creditBased());
    EXPECT_EQ(vct->protocol(), FlowControl::OnOff);
    EXPECT_EQ(vct->headSlotsNeeded(4), 4u);
    EXPECT_TRUE(vct->reservesWholePacket());
}

TEST(FlitTypeTest, TypeOfIndexMatchesPosition)
{
    EXPECT_EQ(flitTypeOf(0, 1), FlitType::HeadTail);
    EXPECT_EQ(flitTypeOf(0, 4), FlitType::Head);
    EXPECT_EQ(flitTypeOf(1, 4), FlitType::Body);
    EXPECT_EQ(flitTypeOf(2, 4), FlitType::Body);
    EXPECT_EQ(flitTypeOf(3, 4), FlitType::Tail);
    EXPECT_TRUE(isTail(FlitType::HeadTail));
    EXPECT_TRUE(isHead(FlitType::HeadTail));
    EXPECT_FALSE(isTail(FlitType::Head));
    EXPECT_FALSE(isHead(FlitType::Body));
}

TEST(SwitchingNameTest, RoundTripsAllModes)
{
    for (Switching s :
         {Switching::PacketSync, Switching::StoreAndForward,
          Switching::CutThrough, Switching::Wormhole,
          Switching::VirtualCutThrough}) {
        const auto parsed = trySwitchingFromString(switchingName(s));
        ASSERT_TRUE(parsed.has_value()) << switchingName(s);
        EXPECT_EQ(*parsed, s);
    }
    EXPECT_FALSE(trySwitchingFromString("warp").has_value());
}

// --------------------------------------------------- run fixtures

TorusConfig
flitTorus(Switching switching)
{
    TorusConfig cfg;
    cfg.width = 4;
    cfg.height = 4;
    cfg.switching = switching;
    cfg.flitsPerPacket = 4;
    cfg.slotsPerBuffer = 10;
    cfg.offeredLoad = 0.3;
    cfg.common.seed = 42;
    cfg.common.warmupCycles = 200;
    cfg.common.measureCycles = 800;
    cfg.common.auditEveryCycles = 64;
    cfg.common.watchdogStallCycles = 512;
    return cfg;
}

// --------------------------------------------- credit conservation

void
expectCreditsClosed(Switching switching)
{
    TorusSimulator sim(flitTorus(switching));
    const TorusResult result = sim.run();
    ASSERT_GT(result.window.delivered, 0u);
    EXPECT_TRUE(sim.drain(20000));
    sim.debugValidate();

    // Every credit consumed on a link must have come back: the
    // counters are at their caps and the lifetime totals telescope.
    EXPECT_TRUE(sim.syncEngine().flitCreditsAtRest());
    const FaultReport report = sim.faultReport();
    EXPECT_GT(report.creditsIssued, 0u);
    EXPECT_EQ(report.creditsIssued, report.creditsReturned);
    EXPECT_EQ(report.auditViolations, 0u);
    EXPECT_FALSE(report.watchdogFired);
}

TEST(FlitCreditTest, WormholeCreditsConservePerLink)
{
    expectCreditsClosed(Switching::Wormhole);
}

TEST(FlitCreditTest, VctCreditsConservePerLink)
{
    expectCreditsClosed(Switching::VirtualCutThrough);
}

TEST(FlitCreditTest, OnOffModeRunsWithoutCreditCounters)
{
    TorusConfig cfg = flitTorus(Switching::Wormhole);
    cfg.protocol = FlowControl::OnOff;
    TorusSimulator sim(cfg);
    const TorusResult result = sim.run();
    ASSERT_GT(result.window.delivered, 0u);
    EXPECT_TRUE(sim.drain(20000));
    // On/off backpressure keeps no counters — nothing issued.
    const FaultReport report = sim.faultReport();
    EXPECT_EQ(report.creditsIssued, 0u);
    EXPECT_EQ(report.creditsReturned, 0u);
    EXPECT_EQ(report.auditViolations, 0u);
    EXPECT_FALSE(report.watchdogFired);
}

// --------------------------------------------- no VC interleaving

TEST(FlitVcTest, SaturatedWormholeTorusNeverInterleavesVcs)
{
    // Saturation load with a per-cycle audit: the flit invariant
    // check asserts every active stream's packet is still its
    // queue's head (a second packet's flits on the same VC would
    // break that) and that the tail always freed the VC.
    TorusConfig cfg = flitTorus(Switching::Wormhole);
    cfg.offeredLoad = 0.9;
    cfg.common.auditEveryCycles = 1;
    cfg.common.measureCycles = 2000;
    TorusSimulator sim(cfg);
    const TorusResult result = sim.run();
    ASSERT_GT(result.window.delivered, 0u);
    const FaultReport report = sim.faultReport();
    EXPECT_EQ(report.auditViolations, 0u);
    EXPECT_FALSE(report.watchdogFired);
    EXPECT_EQ(result.watchdogTrips, 0u);
}

TEST(FlitVcTest, SaturatedVctTorusAuditsClean)
{
    TorusConfig cfg = flitTorus(Switching::VirtualCutThrough);
    cfg.offeredLoad = 0.9;
    cfg.common.auditEveryCycles = 1;
    cfg.common.measureCycles = 2000;
    TorusSimulator sim(cfg);
    const TorusResult result = sim.run();
    ASSERT_GT(result.window.delivered, 0u);
    EXPECT_EQ(sim.faultReport().auditViolations, 0u);
    EXPECT_FALSE(sim.faultReport().watchdogFired);
}

// ------------------------------- wormhole vs VCT occupancy (2 hops)

TEST(FlitOccupancyTest, WormholeAndVctDivergeOnTwoHopPaths)
{
    // 2x2 torus: every route is at most one hop per dimension, so
    // all paths are <= 2 hops.  With per-buffer capacity of two
    // packets' worth (the VCT minimum at two VCs), VCT's
    // whole-packet reservation admits at most one packet per
    // (buffer, VC) while wormhole packs partial packets behind a
    // blocked head — the occupancy behavior (and with it
    // throughput/latency) must diverge under load.
    TorusConfig base;
    base.width = 2;
    base.height = 2;
    base.flitsPerPacket = 4;
    base.slotsPerBuffer = 8;
    base.offeredLoad = 0.8;
    base.common.seed = 7;
    base.common.warmupCycles = 200;
    base.common.measureCycles = 2000;
    base.common.auditEveryCycles = 16;

    TorusConfig wormhole = base;
    wormhole.switching = Switching::Wormhole;
    TorusSimulator whSim(wormhole);
    const TorusResult wh = whSim.run();

    TorusConfig vct = base;
    vct.switching = Switching::VirtualCutThrough;
    TorusSimulator vctSim(vct);
    const TorusResult vc = vctSim.run();

    ASSERT_GT(wh.window.delivered, 0u);
    ASSERT_GT(vc.window.delivered, 0u);
    EXPECT_EQ(whSim.faultReport().auditViolations, 0u);
    EXPECT_EQ(vctSim.faultReport().auditViolations, 0u);

    // Same seed, same traffic, same buffers — only the switching
    // mode differs.  If the flit layer ignored the scheme the two
    // runs would be bit-identical.
    EXPECT_NE(whSim.snapshotText(), vctSim.snapshotText());
    const bool diverged =
        wh.window.delivered != vc.window.delivered ||
        wh.latencyCycles.mean() != vc.latencyCycles.mean();
    EXPECT_TRUE(diverged);

    // Wormhole's 1-slot head condition is strictly weaker than
    // VCT's whole-packet reservation, so at saturation it keeps the
    // wires at least as busy.
    EXPECT_GE(wh.window.delivered, vc.window.delivered);
}

// ------------------------------------------------ shard identity

struct Observed
{
    std::uint64_t delivered = 0;
    std::uint64_t injected = 0;
    std::uint64_t creditsIssued = 0;
    std::uint64_t creditsReturned = 0;
    double latencyMean = 0.0;
    double latencyStddev = 0.0;
    double latencyP99 = 0.0;
    std::string snapshot;
};

Observed
runSharded(Switching switching, std::uint32_t shards)
{
    TorusConfig cfg = flitTorus(switching);
    cfg.width = 8;
    cfg.height = 8;
    cfg.offeredLoad = 0.5;
    cfg.common.shards = shards;
    TorusSimulator sim(cfg);
    const TorusResult result = sim.run();
    Observed obs;
    obs.delivered = sim.lifetime().delivered;
    obs.injected = sim.lifetime().injected;
    obs.creditsIssued = sim.faultReport().creditsIssued;
    obs.creditsReturned = sim.faultReport().creditsReturned;
    obs.latencyMean = result.latencyCycles.mean();
    obs.latencyStddev = result.latencyCycles.stddev();
    obs.latencyP99 = result.latencyP99;
    obs.snapshot = sim.snapshotText();
    return obs;
}

void
expectIdentical(const Observed &a, const Observed &b,
                const char *what)
{
    SCOPED_TRACE(what);
    EXPECT_EQ(a.delivered, b.delivered);
    EXPECT_EQ(a.injected, b.injected);
    EXPECT_EQ(a.creditsIssued, b.creditsIssued);
    EXPECT_EQ(a.creditsReturned, b.creditsReturned);
    // Exact double equality on the Welford moments: a reordering
    // of the delivery stream would show up here even if the
    // multiset of samples were preserved.
    EXPECT_EQ(a.latencyMean, b.latencyMean);
    EXPECT_EQ(a.latencyStddev, b.latencyStddev);
    EXPECT_EQ(a.latencyP99, b.latencyP99);
    EXPECT_EQ(a.snapshot, b.snapshot);
}

TEST(FlitShardTest, WormholeTorusIsBitIdenticalAcrossShardCounts)
{
    const Observed one = runSharded(Switching::Wormhole, 1);
    const Observed two = runSharded(Switching::Wormhole, 2);
    const Observed eight = runSharded(Switching::Wormhole, 8);
    ASSERT_GT(one.delivered, 0u);
    expectIdentical(one, two, "wormhole: 1 vs 2 shards");
    expectIdentical(one, eight, "wormhole: 1 vs 8 shards");
}

TEST(FlitShardTest, VctTorusIsBitIdenticalAcrossShardCounts)
{
    const Observed one =
        runSharded(Switching::VirtualCutThrough, 1);
    const Observed eight =
        runSharded(Switching::VirtualCutThrough, 8);
    ASSERT_GT(one.delivered, 0u);
    expectIdentical(one, eight, "vct: 1 vs 8 shards");
}

// --------------------------------------------------- omega network

TEST(FlitOmegaTest, WormholeOmegaDrainsWithCreditsClosed)
{
    NetworkConfig cfg;
    cfg.numPorts = 16;
    cfg.radix = 4;
    cfg.slotsPerBuffer = 8;
    cfg.switching = Switching::Wormhole;
    cfg.flitsPerPacket = 4;
    cfg.offeredLoad = 0.4;
    cfg.common.seed = 11;
    cfg.common.warmupCycles = 200;
    cfg.common.measureCycles = 800;
    cfg.common.auditEveryCycles = 32;
    NetworkSimulator sim(cfg);
    const NetworkResult result = sim.run();
    ASSERT_GT(result.window.delivered, 0u);
    EXPECT_TRUE(sim.drain(20000));
    sim.debugValidate();
    EXPECT_TRUE(sim.syncEngine().flitCreditsAtRest());
    const FaultReport report = sim.faultReport();
    EXPECT_EQ(report.creditsIssued, report.creditsReturned);
    EXPECT_EQ(report.auditViolations, 0u);
}

// -------------------------------------- packet path is zero-cost

TEST(FlitOffTest, PacketSyncAllocatesNoFlitState)
{
    TorusConfig cfg;
    cfg.width = 4;
    cfg.height = 4;
    cfg.common.warmupCycles = 100;
    cfg.common.measureCycles = 200;
    TorusSimulator sim(cfg);
    EXPECT_FALSE(sim.syncEngine().flitMode());
    sim.run();
    const FaultReport report = sim.faultReport();
    EXPECT_EQ(report.creditsIssued, 0u);
    EXPECT_EQ(report.creditsReturned, 0u);
}

// ----------------------------- admission policies at flit level

TEST(FlitAdmissionTest, DynamicThresholdWormholeStaysConformant)
{
    // Head admission feeds headSlotsNeeded through the admission
    // policy layer; with dynamic threshold installed the credit
    // invariants and the per-cycle flit audit must still close.
    TorusConfig cfg = flitTorus(Switching::Wormhole);
    cfg.sharing.kind = SharingPolicy::DynamicThreshold;
    cfg.sharing.dtAlpha = 1.0;
    TorusSimulator sim(cfg);
    const TorusResult result = sim.run();
    ASSERT_GT(result.window.delivered, 0u);
    EXPECT_TRUE(sim.drain(20000));
    sim.debugValidate();
    EXPECT_TRUE(sim.syncEngine().flitCreditsAtRest());
    const FaultReport report = sim.faultReport();
    EXPECT_EQ(report.creditsIssued, report.creditsReturned);
    EXPECT_EQ(report.auditViolations, 0u);
}

TEST(FlitAdmissionTest, VoqRunsUnderVirtualCutThrough)
{
    // VCT pre-charges the whole packet at head admission, which is
    // exactly the accounting the VOQ private-slot guarantee needs.
    TorusConfig cfg = flitTorus(Switching::VirtualCutThrough);
    cfg.bufferType = BufferType::Voq;
    // One whole 4-flit packet per queue on top of each queue's
    // private slot: a VCT head charges flitsPerPacket slots, and
    // the guarantee reserves a slot for every other empty queue,
    // so 10 queues need 10 * flits slots for admission to clear.
    cfg.slotsPerBuffer = 10 * cfg.flitsPerPacket;
    TorusSimulator sim(cfg);
    const TorusResult result = sim.run();
    ASSERT_GT(result.window.delivered, 0u);
    EXPECT_TRUE(sim.drain(20000));
    sim.debugValidate();
    const FaultReport report = sim.faultReport();
    EXPECT_EQ(report.auditViolations, 0u);
}

TEST(FlitAdmissionDeathTest, VoqRejectsWormhole)
{
    // Wormhole body flits land without an admission check, so they
    // could eat another queue's private slots — the combination is
    // rejected up front.
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    TorusConfig cfg = flitTorus(Switching::Wormhole);
    cfg.bufferType = BufferType::Voq;
    cfg.slotsPerBuffer = 12;
    EXPECT_EXIT({ TorusSimulator sim(cfg); },
                ::testing::ExitedWithCode(1), "private-slot");
}

// ------------------------------------------- unified CLI surface

/** Parse @p extra through @p args as if typed on a command line. */
void
parseArgs(ArgParser &args, std::vector<std::string> extra)
{
    std::vector<char *> argv;
    static char prog[] = "test_flit";
    argv.push_back(prog);
    for (std::string &s : extra)
        argv.push_back(s.data());
    args.parse(static_cast<int>(argv.size()), argv.data());
}

TEST(SwitchingFlagsTest, DefaultsLeaveBenchConfigUntouched)
{
    ArgParser args("t", "t");
    addSwitchingFlags(args, "packet-sync", "blocking");
    parseArgs(args, {});
    Switching switching = Switching::CutThrough;
    FlowControl protocol = FlowControl::Discarding;
    std::uint32_t flits = 7;
    applySwitchingFlags(args, switching, protocol, flits);
    EXPECT_EQ(switching, Switching::CutThrough);
    EXPECT_EQ(protocol, FlowControl::Discarding);
    EXPECT_EQ(flits, 7u);
}

TEST(SwitchingFlagsTest, CanonicalFlagsSetEveryField)
{
    ArgParser args("t", "t");
    addSwitchingFlags(args, "packet-sync", "blocking");
    parseArgs(args, {"--switching", "vct", "--flow-control",
                     "on-off", "--flits-per-packet", "6"});
    Switching switching = Switching::PacketSync;
    FlowControl protocol = FlowControl::Blocking;
    std::uint32_t flits = 4;
    applySwitchingFlags(args, switching, protocol, flits);
    EXPECT_EQ(switching, Switching::VirtualCutThrough);
    EXPECT_EQ(protocol, FlowControl::OnOff);
    EXPECT_EQ(flits, 6u);
}

TEST(SwitchingFlagsDeathTest, RemovedModeAliasIsRejected)
{
    // The --mode / --protocol aliases are gone: the parser treats
    // them like any other unknown option and exits with usage.
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    EXPECT_EXIT(
        {
            ArgParser args("t", "t");
            addSwitchingFlags(args, "packet-sync", "blocking");
            parseArgs(args, {"--mode", "wormhole"});
        },
        testing::ExitedWithCode(1), "unknown option '--mode'");
    EXPECT_EXIT(
        {
            ArgParser args("t", "t");
            addSwitchingFlags(args, "packet-sync", "blocking");
            parseArgs(args, {"--protocol", "credit"});
        },
        testing::ExitedWithCode(1), "unknown option '--protocol'");
}

TEST(SwitchingFlagsDeathTest, BadSwitchingValueExitsWithUsage)
{
    ArgParser args("t", "t");
    addSwitchingFlags(args, "packet-sync", "blocking");
    parseArgs(args, {"--switching", "warp"});
    Switching switching = Switching::PacketSync;
    FlowControl protocol = FlowControl::Blocking;
    std::uint32_t flits = 4;
    EXPECT_EXIT(
        applySwitchingFlags(args, switching, protocol, flits),
        testing::ExitedWithCode(1), "unknown switching mode");
}

} // namespace
} // namespace damq

/**
 * @file
 * Unit tests for SwitchModel: reception/discard accounting, grant
 * execution, statistics, and reset.
 */

#include <gtest/gtest.h>

#include "switchsim/switch_model.hh"

namespace damq {
namespace {

Packet
makePacket(PacketId id, PortId out)
{
    Packet p;
    p.id = id;
    p.outPort = out;
    p.lengthSlots = 1;
    return p;
}

CanSendFn
alwaysSend()
{
    return [](PortId, QueueKey, const Packet &) { return true; };
}

TEST(SwitchModel, ReceiveStoresAndCounts)
{
    SwitchModel sw(4, BufferType::Damq, 4, ArbitrationPolicy::Dumb);
    EXPECT_TRUE(sw.tryReceive(0, makePacket(1, 2)));
    EXPECT_EQ(sw.stats().received, 1u);
    EXPECT_EQ(sw.buffer(0).totalPackets(), 1u);
    EXPECT_EQ(sw.totalPackets(), 1u);
    EXPECT_EQ(sw.totalUsedSlots(), 1u);
}

TEST(SwitchModel, FullBufferDiscards)
{
    SwitchModel sw(4, BufferType::Damq, 2, ArbitrationPolicy::Dumb);
    EXPECT_TRUE(sw.tryReceive(0, makePacket(1, 2)));
    EXPECT_TRUE(sw.tryReceive(0, makePacket(2, 2)));
    EXPECT_FALSE(sw.tryReceive(0, makePacket(3, 2)));
    EXPECT_EQ(sw.stats().discarded, 1u);
    // A different input has its own buffer and still has room.
    EXPECT_TRUE(sw.tryReceive(1, makePacket(4, 2)));
}

TEST(SwitchModel, CanAcceptMatchesTryReceive)
{
    SwitchModel sw(4, BufferType::Samq, 4, ArbitrationPolicy::Dumb);
    EXPECT_TRUE(sw.canAccept(0, 1, 1));
    EXPECT_TRUE(sw.tryReceive(0, makePacket(1, 1)));
    // SAMQ partition for output 1 (1 slot) is now full.
    EXPECT_FALSE(sw.canAccept(0, 1, 1));
    EXPECT_TRUE(sw.canAccept(0, 2, 1));
}

TEST(SwitchModel, ArbitrateAndPopMoveTraffic)
{
    SwitchModel sw(4, BufferType::Damq, 4, ArbitrationPolicy::Smart);
    sw.tryReceive(0, makePacket(1, 2));
    sw.tryReceive(1, makePacket(2, 3));

    const GrantList grants = sw.arbitrate(alwaysSend());
    EXPECT_EQ(grants.size(), 2u);
    const auto popped = sw.popGranted(grants);
    EXPECT_EQ(popped.size(), 2u);
    EXPECT_EQ(sw.stats().transmitted, 2u);
    EXPECT_EQ(sw.totalPackets(), 0u);
}

TEST(SwitchModel, ResetClearsEverything)
{
    SwitchModel sw(4, BufferType::Fifo, 4, ArbitrationPolicy::Smart);
    sw.tryReceive(0, makePacket(1, 1));
    sw.reset();
    EXPECT_EQ(sw.totalPackets(), 0u);
    EXPECT_EQ(sw.stats().received, 0u);
    EXPECT_EQ(sw.stats().discarded, 0u);
    sw.debugValidate();
}

TEST(SwitchModel, GeometryAccessors)
{
    SwitchModel sw(4, BufferType::Safc, 8, ArbitrationPolicy::Dumb);
    EXPECT_EQ(sw.numPorts(), 4u);
    EXPECT_EQ(sw.bufferType(), BufferType::Safc);
    EXPECT_EQ(sw.buffer(0).maxReadsPerCycle(), 4u);
}

} // namespace
} // namespace damq

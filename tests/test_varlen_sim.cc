/**
 * @file
 * Tests for the variable-length extension: length distributions,
 * packet conservation, load accounting, and the paper's conjecture
 * that DAMQ's advantage persists (indeed grows) with variable
 * packet lengths.
 */

#include <gtest/gtest.h>

#include "common/random.hh"
#include "network/varlen_sim.hh"

namespace damq {
namespace {

TEST(LengthDistribution, MeanOfUniform14)
{
    LengthDistribution dist{{1.0, 1.0, 1.0, 1.0}};
    EXPECT_DOUBLE_EQ(dist.mean(), 2.5);
}

TEST(LengthDistribution, SamplesStayInRangeAndMatchMean)
{
    LengthDistribution dist{{1.0, 1.0, 1.0, 1.0}};
    Random rng(7);
    double total = 0.0;
    const int n = 40000;
    for (int i = 0; i < n; ++i) {
        const auto len = dist.sample(rng);
        ASSERT_GE(len, 1u);
        ASSERT_LE(len, 4u);
        total += len;
    }
    EXPECT_NEAR(total / n, 2.5, 0.05);
}

TEST(LengthDistribution, DegenerateSingleLength)
{
    LengthDistribution dist{{1.0}};
    Random rng(3);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(dist.sample(rng), 1u);
    EXPECT_DOUBLE_EQ(dist.mean(), 1.0);
}

TEST(LengthDistribution, SkewedWeights)
{
    LengthDistribution dist{{0.0, 0.0, 0.0, 1.0}};
    Random rng(3);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(dist.sample(rng), 4u);
}

VarLenConfig
baseConfig()
{
    VarLenConfig cfg;
    cfg.numPorts = 64;
    cfg.radix = 4;
    cfg.bufferType = BufferType::Damq;
    cfg.slotsPerBuffer = 8;
    cfg.offeredSlotLoad = 0.3;
    cfg.common.seed = 77;
    cfg.common.warmupCycles = 300;
    cfg.common.measureCycles = 1500;
    return cfg;
}

TEST(VarLenSim, ConservesPackets)
{
    VarLenConfig cfg = baseConfig();
    cfg.offeredSlotLoad = 0.6;
    VarLenNetworkSimulator sim(cfg);
    for (int i = 0; i < 800; ++i)
        sim.step();
    sim.debugValidate();
    EXPECT_EQ(sim.lifetimeGenerated(),
              sim.lifetimeDelivered() + sim.packetsEverywhere());
}

TEST(VarLenSim, DeliversApproximatelyOfferedSlotLoad)
{
    VarLenConfig cfg = baseConfig();
    cfg.offeredSlotLoad = 0.25;
    cfg.common.measureCycles = 4000;
    VarLenNetworkSimulator sim(cfg);
    const VarLenResult result = sim.run();
    EXPECT_NEAR(result.deliveredSlotThroughput, 0.25, 0.03);
}

TEST(VarLenSim, FixedLengthDegeneratesToBasicBehavior)
{
    VarLenConfig cfg = baseConfig();
    cfg.lengths = LengthDistribution{{1.0}}; // all 1-slot packets
    cfg.offeredSlotLoad = 0.2;
    VarLenNetworkSimulator sim(cfg);
    const VarLenResult result = sim.run();
    EXPECT_GT(result.deliveredPackets, 0u);
    // A 1-slot packet takes 1 cycle per hop, 3 hops, 12 clocks per
    // cycle -> 36-clock floor.
    EXPECT_GE(result.latencyClocks.min(), 36.0);
}

TEST(VarLenSim, DamqBeatsFifoWithVariableLengths)
{
    // Section 5's conjecture.  Compare saturation (full offered
    // load) throughput in slots.
    VarLenConfig cfg = baseConfig();
    cfg.offeredSlotLoad = 1.0;
    cfg.common.warmupCycles = 500;
    cfg.common.measureCycles = 2500;

    cfg.bufferType = BufferType::Fifo;
    const double fifo =
        VarLenNetworkSimulator(cfg).run().deliveredSlotThroughput;
    cfg.bufferType = BufferType::Damq;
    const double damq =
        VarLenNetworkSimulator(cfg).run().deliveredSlotThroughput;

    EXPECT_GT(damq, fifo * 1.15);
}

TEST(VarLenSim, Deterministic)
{
    VarLenConfig cfg = baseConfig();
    VarLenNetworkSimulator a(cfg);
    VarLenNetworkSimulator b(cfg);
    const VarLenResult ra = a.run();
    const VarLenResult rb = b.run();
    EXPECT_EQ(ra.deliveredPackets, rb.deliveredPackets);
    EXPECT_EQ(ra.deliveredSlots, rb.deliveredSlots);
}

TEST(VarLenSim, SamqPartitionsAlsoRun)
{
    VarLenConfig cfg = baseConfig();
    cfg.bufferType = BufferType::Samq;
    cfg.slotsPerBuffer = 16; // 4 per partition, fits a max packet
    VarLenNetworkSimulator sim(cfg);
    const VarLenResult result = sim.run();
    EXPECT_GT(result.deliveredPackets, 0u);
    sim.debugValidate();
}

} // namespace
} // namespace damq

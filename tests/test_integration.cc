/**
 * @file
 * Cross-layer integration tests tying the reproduction to the
 * paper's headline claims (scaled down to test-suite runtimes):
 * the Table 2 ordering from the Markov layer, the Table 4
 * saturation ordering from the network layer, and agreement
 * between independently implemented layers where they overlap.
 */

#include <gtest/gtest.h>

#include "markov/switch2x2.hh"
#include "network/network_sim.hh"
#include "network/saturation.hh"

namespace damq {
namespace {

NetworkConfig
paperConfig()
{
    NetworkConfig cfg;
    cfg.numPorts = 64;
    cfg.radix = 4;
    cfg.slotsPerBuffer = 4;
    cfg.protocol = FlowControl::Blocking;
    cfg.arbitration = ArbitrationPolicy::Smart;
    cfg.traffic = "uniform";
    cfg.common.seed = 7;
    cfg.common.warmupCycles = 400;
    cfg.common.measureCycles = 2500;
    return cfg;
}

TEST(PaperClaims, Table2OrderingAtHighLoad)
{
    // At 90 % traffic with 4 slots: DAMQ < SAFC < SAMQ < FIFO.
    const double fifo =
        analyzeDiscarding2x2(BufferType::Fifo, 4, 0.9)
            .discardProbability;
    const double samq =
        analyzeDiscarding2x2(BufferType::Samq, 4, 0.9)
            .discardProbability;
    const double safc =
        analyzeDiscarding2x2(BufferType::Safc, 4, 0.9)
            .discardProbability;
    const double damq =
        analyzeDiscarding2x2(BufferType::Damq, 4, 0.9)
            .discardProbability;

    EXPECT_LT(damq, safc);
    EXPECT_LT(safc, samq);
    EXPECT_LT(samq, fifo);
}

TEST(PaperClaims, Table4SaturationOrdering)
{
    // DAMQ saturates highest; all four saturate somewhere in
    // (0.3, 1.0); DAMQ's margin over FIFO is large (paper: +40 %).
    NetworkConfig cfg = paperConfig();
    double sat[4];
    const BufferType types[4] = {BufferType::Fifo, BufferType::Samq,
                                 BufferType::Safc, BufferType::Damq};
    for (int i = 0; i < 4; ++i) {
        cfg.bufferType = types[i];
        sat[i] = measureSaturation(cfg).saturationThroughput;
        EXPECT_GT(sat[i], 0.3) << bufferTypeName(types[i]);
        EXPECT_LT(sat[i], 1.0) << bufferTypeName(types[i]);
    }
    const double fifo = sat[0];
    const double damq = sat[3];
    EXPECT_GT(damq, fifo * 1.2);
    EXPECT_GT(damq, sat[1]); // beats SAMQ
    EXPECT_GT(damq, sat[2]); // beats SAFC
}

TEST(PaperClaims, LatenciesNearlyEqualBelowSaturation)
{
    // Table 4: at loads <= 0.4 buffer type barely matters... at
    // 0.25 the four are within a few clocks of each other.
    NetworkConfig cfg = paperConfig();
    double lat[4];
    const BufferType types[4] = {BufferType::Fifo, BufferType::Samq,
                                 BufferType::Safc, BufferType::Damq};
    for (int i = 0; i < 4; ++i) {
        cfg.bufferType = types[i];
        lat[i] = latencyAtLoad(cfg, 0.25);
    }
    for (int i = 1; i < 4; ++i) {
        EXPECT_NEAR(lat[i], lat[0], 8.0)
            << bufferTypeName(types[i]);
    }
}

TEST(PaperClaims, DiscardingDamqDiscardsFarLessThanFifo)
{
    // Table 3 shape at 0.5 offered load.
    NetworkConfig cfg = paperConfig();
    cfg.protocol = FlowControl::Discarding;
    cfg.offeredLoad = 0.5;

    cfg.bufferType = BufferType::Fifo;
    const double fifo = NetworkSimulator(cfg).run().discardFraction;
    cfg.bufferType = BufferType::Damq;
    const double damq = NetworkSimulator(cfg).run().discardFraction;

    EXPECT_GT(fifo, 0.0);
    EXPECT_LT(damq, fifo * 0.5);
}

TEST(PaperClaims, DumbAndSmartArbitrationSimilarBelowSaturation)
{
    // Table 3's observation: at 0.5 offered, dumb ~ smart.
    NetworkConfig cfg = paperConfig();
    cfg.protocol = FlowControl::Discarding;
    cfg.offeredLoad = 0.5;
    cfg.bufferType = BufferType::Damq;

    cfg.arbitration = ArbitrationPolicy::Smart;
    const double smart = NetworkSimulator(cfg).run().discardFraction;
    cfg.arbitration = ArbitrationPolicy::Dumb;
    const double dumb = NetworkSimulator(cfg).run().discardFraction;

    EXPECT_NEAR(smart, dumb, 0.02);
}

TEST(PaperClaims, MoreSlotsBarelyMoveDamqSaturation)
{
    // Table 5: DAMQ's saturation moves little from 4 to 8 slots
    // (the control logic, not the storage, is what matters).
    NetworkConfig cfg = paperConfig();
    cfg.bufferType = BufferType::Damq;
    cfg.slotsPerBuffer = 4;
    const double four = measureSaturation(cfg).saturationThroughput;
    cfg.slotsPerBuffer = 8;
    const double eight = measureSaturation(cfg).saturationThroughput;
    EXPECT_LT(eight - four, 0.15);
    EXPECT_GE(eight, four - 0.03); // more storage never really hurts
}

TEST(PaperClaims, FifoGainsMoreFromExtraSlotsThanDamq)
{
    NetworkConfig cfg = paperConfig();
    cfg.bufferType = BufferType::Fifo;
    cfg.slotsPerBuffer = 3;
    const double fifo3 = measureSaturation(cfg).saturationThroughput;
    cfg.bufferType = BufferType::Damq;
    const double damq3 = measureSaturation(cfg).saturationThroughput;
    // Even FIFO-8 should not reach DAMQ-3 (Table 5: 0.56 vs 0.63).
    cfg.bufferType = BufferType::Fifo;
    cfg.slotsPerBuffer = 8;
    const double fifo8 = measureSaturation(cfg).saturationThroughput;
    EXPECT_GT(fifo8, fifo3);
    EXPECT_GT(damq3, fifo8);
}

TEST(PaperClaims, HotSpotEqualizesAllBufferTypes)
{
    // Table 6: with 5 % hot-spot traffic everything tree-saturates
    // at the same throughput (~0.24).
    NetworkConfig cfg = paperConfig();
    cfg.traffic = "hotspot";
    cfg.common.warmupCycles = 1500;
    cfg.common.measureCycles = 2500;

    cfg.bufferType = BufferType::Fifo;
    const double fifo = measureSaturation(cfg).saturationThroughput;
    cfg.bufferType = BufferType::Damq;
    const double damq = measureSaturation(cfg).saturationThroughput;

    EXPECT_NEAR(fifo, damq, 0.05);
    EXPECT_NEAR(damq, 0.24, 0.06);
}

} // namespace
} // namespace damq

/**
 * @file
 * Unit tests for the stats library: RunningStats, Histogram, and
 * the text table renderer.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "stats/histogram.hh"
#include "stats/running_stats.hh"
#include "stats/text_table.hh"

namespace damq {
namespace {

TEST(RunningStats, EmptyIsSane)
{
    RunningStats s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStats, KnownMoments)
{
    RunningStats s;
    for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        s.add(x);
    EXPECT_EQ(s.count(), 8u);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_DOUBLE_EQ(s.variance(), 4.0);
    EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 9.0);
    EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, SampleVarianceUsesBessel)
{
    RunningStats s;
    s.add(1.0);
    s.add(3.0);
    EXPECT_DOUBLE_EQ(s.variance(), 1.0);
    EXPECT_DOUBLE_EQ(s.sampleVariance(), 2.0);
}

TEST(RunningStats, MergeMatchesSequential)
{
    RunningStats all;
    RunningStats a;
    RunningStats b;
    for (int i = 0; i < 100; ++i) {
        const double x = std::sin(i * 0.7) * 10 + i * 0.1;
        all.add(x);
        (i % 2 == 0 ? a : b).add(x);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), all.count());
    EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
    EXPECT_NEAR(a.variance(), all.variance(), 1e-10);
    EXPECT_DOUBLE_EQ(a.min(), all.min());
    EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeWithEmpty)
{
    RunningStats a;
    a.add(5.0);
    RunningStats empty;
    a.merge(empty);
    EXPECT_EQ(a.count(), 1u);
    empty.merge(a);
    EXPECT_EQ(empty.count(), 1u);
    EXPECT_DOUBLE_EQ(empty.mean(), 5.0);
}

TEST(RunningStats, ResetClearsEverything)
{
    RunningStats s;
    s.add(1.0);
    s.reset();
    EXPECT_EQ(s.count(), 0u);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
}

TEST(Histogram, BinsByTruncation)
{
    Histogram h(10.0, 5);
    h.add(0.0);
    h.add(9.99);
    h.add(10.0);
    h.add(49.0);
    h.add(50.0); // overflow
    EXPECT_EQ(h.count(), 5u);
    EXPECT_EQ(h.binCount(0), 2u);
    EXPECT_EQ(h.binCount(1), 1u);
    EXPECT_EQ(h.binCount(4), 1u);
    EXPECT_EQ(h.overflowCount(), 1u);
}

TEST(Histogram, NegativeClampsToFirstBin)
{
    Histogram h(1.0, 4);
    h.add(-3.0);
    EXPECT_EQ(h.binCount(0), 1u);
}

TEST(Histogram, QuantileInterpolates)
{
    Histogram h(1.0, 100);
    for (int i = 0; i < 100; ++i)
        h.add(i + 0.5);
    EXPECT_NEAR(h.quantile(0.5), 50.0, 1.5);
    EXPECT_NEAR(h.quantile(0.99), 99.0, 1.5);
    EXPECT_NEAR(h.quantile(0.0), 0.0, 1.0);
}

TEST(Histogram, ResetEmpties)
{
    Histogram h(1.0, 4);
    h.add(1.0);
    h.reset();
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.binCount(1), 0u);
}

TEST(Histogram, AsciiRenderingMentionsCounts)
{
    Histogram h(1.0, 4);
    h.add(0.5);
    h.add(0.6);
    const std::string art = h.renderAscii();
    EXPECT_NE(art.find("#"), std::string::npos);
    EXPECT_NE(art.find("2"), std::string::npos);
}

TEST(TextTable, RendersAlignedColumns)
{
    TextTable t;
    t.setHeader({"name", "value"});
    t.addRow({"alpha", "1"});
    t.addRow({"b", "22"});
    const std::string out = t.render();
    EXPECT_NE(out.find("| alpha |"), std::string::npos);
    EXPECT_NE(out.find("name"), std::string::npos);
    // All lines between rules have the same width.
    std::size_t width = 0;
    std::size_t pos = 0;
    while (pos < out.size()) {
        const std::size_t eol = out.find('\n', pos);
        const std::size_t len = eol - pos;
        if (width == 0)
            width = len;
        EXPECT_EQ(len, width);
        pos = eol + 1;
    }
}

TEST(TextTable, IncrementalRowConstruction)
{
    TextTable t;
    t.setHeader({"a", "b"});
    t.startRow();
    t.addCell("1");
    t.addCell("2");
    EXPECT_EQ(t.numRows(), 1u);
    const std::string csv = t.renderCsv();
    EXPECT_EQ(csv, "a,b\n1,2\n");
}

TEST(TextTable, EmptyTableRendersNothing)
{
    TextTable t;
    EXPECT_EQ(t.render(), "");
}

} // namespace
} // namespace damq

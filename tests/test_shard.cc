/**
 * @file
 * Bit-identity tests for the sharded synchronized engine: the same
 * configuration run at 1, 2, and 8 shards must produce byte-for-byte
 * identical results — every counter, every Welford latency moment,
 * every histogram quantile, and the diagnostic occupancy snapshot.
 *
 * Three configurations cover the three advance paths:
 *   - a clean blocking 2-VC torus (the fully sharded receive path),
 *   - the same torus with link faults and retransmit+reroute
 *     recovery (the coordinator-replayed move loop),
 *   - a blocking Omega network (stage-major switch ids, the
 *     topology the paper's tables run on).
 *
 * Plus the guard rails: an explicit crosscheck that a one-shard run
 * equals a default-config run of the unsharded engine, and the clean
 * CLI-level failure when shards exceed the switch count.
 */

#include <gtest/gtest.h>

#include <string>

#include "network/network_sim.hh"
#include "network/torus_sim.hh"

namespace damq {
namespace {

/** Everything a run can externally observe, for exact comparison. */
struct Observed
{
    NetworkCounters window;
    NetworkCounters lifetime;
    double deliveredThroughput;
    double discardFraction;
    std::uint64_t latencyCount;
    double latencyMean;
    double latencyStddev;
    double latencyMin;
    double latencyMax;
    double latencyP50;
    double latencyP99;
    std::string snapshot;
};

void
expectIdentical(const Observed &a, const Observed &b,
                const char *what)
{
    SCOPED_TRACE(what);
    EXPECT_EQ(a.window.generated, b.window.generated);
    EXPECT_EQ(a.window.injected, b.window.injected);
    EXPECT_EQ(a.window.delivered, b.window.delivered);
    EXPECT_EQ(a.window.discardedAtEntry, b.window.discardedAtEntry);
    EXPECT_EQ(a.window.discardedInternal,
              b.window.discardedInternal);
    EXPECT_EQ(a.window.faultDropped, b.window.faultDropped);
    EXPECT_EQ(a.lifetime.generated, b.lifetime.generated);
    EXPECT_EQ(a.lifetime.injected, b.lifetime.injected);
    EXPECT_EQ(a.lifetime.delivered, b.lifetime.delivered);
    EXPECT_EQ(a.lifetime.discardedAtEntry,
              b.lifetime.discardedAtEntry);
    EXPECT_EQ(a.lifetime.discardedInternal,
              b.lifetime.discardedInternal);
    EXPECT_EQ(a.lifetime.faultDropped, b.lifetime.faultDropped);
    // Exact double equality is the point: the latency stream is
    // Welford-accumulated in delivery order, so even a reordering
    // that preserves the multiset of samples would show up here.
    EXPECT_EQ(a.deliveredThroughput, b.deliveredThroughput);
    EXPECT_EQ(a.discardFraction, b.discardFraction);
    EXPECT_EQ(a.latencyCount, b.latencyCount);
    EXPECT_EQ(a.latencyMean, b.latencyMean);
    EXPECT_EQ(a.latencyStddev, b.latencyStddev);
    EXPECT_EQ(a.latencyMin, b.latencyMin);
    EXPECT_EQ(a.latencyMax, b.latencyMax);
    EXPECT_EQ(a.latencyP50, b.latencyP50);
    EXPECT_EQ(a.latencyP99, b.latencyP99);
    EXPECT_EQ(a.snapshot, b.snapshot);
}

// ------------------------------------------------------------ torus

TorusConfig
torusBase()
{
    TorusConfig cfg;
    cfg.width = 8;
    cfg.height = 8;
    cfg.offeredLoad = 0.6;
    cfg.common.seed = 99;
    cfg.common.warmupCycles = 200;
    cfg.common.measureCycles = 400;
    return cfg;
}

Observed
runTorus(TorusConfig cfg, std::uint32_t shards,
         std::uint64_t *retransmits = nullptr)
{
    cfg.common.shards = shards;
    TorusSimulator sim(cfg);
    const TorusResult result = sim.run();
    if (retransmits)
        *retransmits = sim.faultReport().recovery.retransmits;
    Observed obs;
    obs.window = result.window;
    obs.lifetime = sim.lifetime();
    obs.deliveredThroughput = result.deliveredThroughput;
    obs.discardFraction = result.discardFraction;
    obs.latencyCount = result.latencyCycles.count();
    obs.latencyMean = result.latencyCycles.mean();
    obs.latencyStddev = result.latencyCycles.stddev();
    obs.latencyMin = result.latencyCycles.min();
    obs.latencyMax = result.latencyCycles.max();
    obs.latencyP50 = result.latencyP50;
    obs.latencyP99 = result.latencyP99;
    obs.snapshot = sim.snapshotText();
    return obs;
}

TEST(ShardIdentity, BlockingTorusIsBitIdenticalAcrossShardCounts)
{
    // Clean run: no faults, no recovery — the receive phase itself
    // runs sharded (the coordinator only replays sink deliveries).
    const Observed one = runTorus(torusBase(), 1);
    const Observed two = runTorus(torusBase(), 2);
    const Observed eight = runTorus(torusBase(), 8);
    ASSERT_GT(one.lifetime.delivered, 0u);
    expectIdentical(one, two, "torus: 1 vs 2 shards");
    expectIdentical(one, eight, "torus: 1 vs 8 shards");
}

TEST(ShardIdentity, RecoveringFaultyTorusIsBitIdentical)
{
    // Link faults plus retransmit+reroute recovery: per-packet
    // fault draws and link-layer state force the move loop back
    // onto the coordinator, but arbitration, pops, and injection
    // still run sharded — and the fault-plan PRNG must see exactly
    // the same draw sequence at any shard count.
    TorusConfig cfg = torusBase();
    cfg.common.faults.seed = 7;
    cfg.common.faults.packetDropRate = 0.01;
    cfg.common.faults.linkDownFraction = 0.05;
    cfg.common.recovery.policy = RecoveryPolicy::RetransmitReroute;
    std::uint64_t retransmits1 = 0;
    std::uint64_t retransmits8 = 0;
    const Observed one = runTorus(cfg, 1, &retransmits1);
    const Observed two = runTorus(cfg, 2);
    const Observed eight = runTorus(cfg, 8, &retransmits8);
    ASSERT_GT(one.lifetime.delivered, 0u);
    // The protocol must actually have fired (otherwise this run
    // would not exercise the recovery path at all), and equally
    // often at both shard counts.
    EXPECT_GT(retransmits1, 0u);
    EXPECT_EQ(retransmits1, retransmits8);
    expectIdentical(one, two, "faulty torus: 1 vs 2 shards");
    expectIdentical(one, eight, "faulty torus: 1 vs 8 shards");
}

TEST(ShardIdentity, SoftFaultTorusIsBitIdentical)
{
    // The memoized per-switch fault hooks (stuck arbiters, delayed
    // credits) are queried concurrently from the sharded
    // arbitration phase; the pre-roll in phaseFaults must keep the
    // draw order identical at any shard count.
    TorusConfig cfg = torusBase();
    cfg.common.faults.seed = 11;
    cfg.common.faults.arbiterStuckRate = 0.002;
    cfg.common.faults.creditDelayRate = 0.002;
    const Observed one = runTorus(cfg, 1);
    const Observed eight = runTorus(cfg, 8);
    ASSERT_GT(one.lifetime.delivered, 0u);
    expectIdentical(one, eight, "soft-fault torus: 1 vs 8 shards");
}

// ------------------------------------------------------------ omega

Observed
runOmega(std::uint32_t shards)
{
    NetworkConfig cfg;
    cfg.numPorts = 64;
    cfg.radix = 4;
    cfg.offeredLoad = 0.7;
    cfg.common.seed = 5;
    cfg.common.warmupCycles = 200;
    cfg.common.measureCycles = 400;
    cfg.common.shards = shards;
    NetworkSimulator sim(cfg);
    const NetworkResult result = sim.run();
    Observed obs;
    obs.window = result.window;
    obs.lifetime = sim.lifetime();
    obs.deliveredThroughput = result.deliveredThroughput;
    obs.discardFraction = result.discardFraction;
    obs.latencyCount = result.latencyClocks.count();
    obs.latencyMean = result.latencyClocks.mean();
    obs.latencyStddev = result.latencyClocks.stddev();
    obs.latencyMin = result.latencyClocks.min();
    obs.latencyMax = result.latencyClocks.max();
    obs.latencyP50 = result.latencyFairness;
    obs.latencyP99 = result.worstSourceLatency;
    obs.snapshot = sim.snapshotText();
    return obs;
}

TEST(ShardIdentity, OmegaIsBitIdenticalAcrossShardCounts)
{
    const Observed one = runOmega(1);
    const Observed two = runOmega(2);
    const Observed eight = runOmega(8);
    ASSERT_GT(one.lifetime.delivered, 0u);
    expectIdentical(one, two, "omega: 1 vs 2 shards");
    expectIdentical(one, eight, "omega: 1 vs 8 shards");
}

// ------------------------------------------------------ guard rails

TEST(ShardIdentity, DefaultConfigMatchesExplicitOneShard)
{
    // The unsharded default (shards field untouched) and an
    // explicit --shards 1 must be the same engine: no thread pool,
    // same results.
    const Observed implicit = runTorus(torusBase(), 0 + 1);
    TorusConfig cfg = torusBase(); // leaves cfg.common.shards == 1
    TorusSimulator sim(cfg);
    const TorusResult result = sim.run();
    EXPECT_EQ(result.window.delivered, implicit.window.delivered);
    EXPECT_EQ(result.latencyCycles.mean(), implicit.latencyMean);
    EXPECT_EQ(sim.snapshotText(), implicit.snapshot);
}

TEST(ShardDeathTest, MoreShardsThanSwitchesFailsCleanly)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    TorusConfig cfg = torusBase(); // 64 switches
    cfg.common.shards = 65;
    // damq_fatal: clean diagnostic + exit(1), not a crash — the
    // validation runs before any worker thread spawns.
    EXPECT_EXIT({ TorusSimulator sim(cfg); },
                ::testing::ExitedWithCode(1), "exceeds");
}

} // namespace
} // namespace damq

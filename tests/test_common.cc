/**
 * @file
 * Unit tests for the common library: RNG quality and determinism,
 * bit utilities, string helpers, and the argument parser.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <set>
#include <vector>

#include "common/arg_parser.hh"
#include "common/bit_util.hh"
#include "common/random.hh"
#include "common/ring_queue.hh"
#include "common/string_util.hh"

namespace damq {
namespace {

// ---------------------------------------------------------- RingQueue

TEST(RingQueue, FifoOrderAcrossGrowth)
{
    RingQueue<int> q;
    EXPECT_TRUE(q.empty());
    EXPECT_EQ(q.capacity(), 0u);
    for (int i = 0; i < 100; ++i)
        q.push_back(i);
    EXPECT_EQ(q.size(), 100u);
    for (int i = 0; i < 100; ++i) {
        EXPECT_EQ(q.front(), i);
        q.pop_front();
    }
    EXPECT_TRUE(q.empty());
}

TEST(RingQueue, WrapsWithoutReallocatingAtSteadyState)
{
    RingQueue<int> q;
    for (int i = 0; i < 5; ++i)
        q.push_back(i);
    const std::size_t cap = q.capacity();
    // Stream many times the capacity through a part-full queue:
    // head wraps the ring repeatedly, capacity never changes.
    for (int i = 5; i < 1000; ++i) {
        q.push_back(i);
        EXPECT_EQ(q.front(), i - 5);
        q.pop_front();
    }
    EXPECT_EQ(q.capacity(), cap);
    EXPECT_EQ(q.size(), 5u);
}

TEST(RingQueue, GrowPreservesOrderWhenHeadIsWrapped)
{
    RingQueue<int> q;
    // Misalign head first, then force growth mid-wrap.
    for (int i = 0; i < 8; ++i)
        q.push_back(i);
    for (int i = 0; i < 5; ++i)
        q.pop_front();
    for (int i = 8; i < 20; ++i)
        q.push_back(i); // crosses the old capacity boundary
    for (int i = 5; i < 20; ++i) {
        EXPECT_EQ(q.front(), i);
        q.pop_front();
    }
    EXPECT_TRUE(q.empty());
}

TEST(RingQueue, ClearRetainsCapacity)
{
    RingQueue<int> q;
    for (int i = 0; i < 50; ++i)
        q.push_back(i);
    const std::size_t cap = q.capacity();
    EXPECT_GE(cap, 50u);
    q.clear();
    EXPECT_TRUE(q.empty());
    EXPECT_EQ(q.capacity(), cap);
    q.push_back(7);
    EXPECT_EQ(q.front(), 7);
}

TEST(SplitMix64, KnownSequenceIsDeterministic)
{
    SplitMix64 a(42);
    SplitMix64 b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(SplitMix64, DifferentSeedsDiverge)
{
    SplitMix64 a(1);
    SplitMix64 b(2);
    EXPECT_NE(a.next(), b.next());
}

TEST(Xoshiro, SatisfiesUniformRandomBitGenerator)
{
    static_assert(Xoshiro256StarStar::min() == 0);
    static_assert(Xoshiro256StarStar::max() == ~std::uint64_t{0});
    Xoshiro256StarStar gen(7);
    // Consecutive outputs should not repeat trivially.
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 1000; ++i)
        seen.insert(gen());
    EXPECT_EQ(seen.size(), 1000u);
}

TEST(Random, UniformStaysInUnitInterval)
{
    Random rng(3);
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Random, UniformMeanIsAboutHalf)
{
    Random rng(11);
    double total = 0.0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        total += rng.uniform();
    EXPECT_NEAR(total / n, 0.5, 0.01);
}

TEST(Random, BernoulliMatchesProbability)
{
    Random rng(5);
    const int n = 200000;
    int hits = 0;
    for (int i = 0; i < n; ++i)
        hits += rng.bernoulli(0.3) ? 1 : 0;
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Random, BernoulliEdgesAreExact)
{
    Random rng(5);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(rng.bernoulli(0.0));
        EXPECT_TRUE(rng.bernoulli(1.0));
    }
}

TEST(Random, BelowCoversRangeUniformly)
{
    Random rng(17);
    std::vector<int> counts(7, 0);
    const int n = 70000;
    for (int i = 0; i < n; ++i)
        ++counts[rng.below(7)];
    for (const int c : counts)
        EXPECT_NEAR(c, n / 7, n / 7 / 5); // within 20 %
}

TEST(Random, RangeIsInclusive)
{
    Random rng(23);
    bool saw_lo = false;
    bool saw_hi = false;
    for (int i = 0; i < 10000; ++i) {
        const auto v = rng.range(-2, 2);
        EXPECT_GE(v, -2);
        EXPECT_LE(v, 2);
        saw_lo = saw_lo || v == -2;
        saw_hi = saw_hi || v == 2;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Random, SameSeedSameStream)
{
    Random a(99);
    Random b(99);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.below(1000000), b.below(1000000));
}

TEST(BitUtil, IsPow2)
{
    EXPECT_TRUE(isPow2(1));
    EXPECT_TRUE(isPow2(2));
    EXPECT_TRUE(isPow2(64));
    EXPECT_FALSE(isPow2(0));
    EXPECT_FALSE(isPow2(3));
    EXPECT_FALSE(isPow2(96));
}

TEST(BitUtil, FloorLog2)
{
    EXPECT_EQ(floorLog2(1), 0u);
    EXPECT_EQ(floorLog2(2), 1u);
    EXPECT_EQ(floorLog2(3), 1u);
    EXPECT_EQ(floorLog2(64), 6u);
    EXPECT_EQ(floorLog2(127), 6u);
}

TEST(BitUtil, ExactLogBase)
{
    EXPECT_EQ(exactLogBase(64, 4), 3u);
    EXPECT_EQ(exactLogBase(64, 2), 6u);
    EXPECT_EQ(exactLogBase(64, 8), 2u);
    EXPECT_EQ(exactLogBase(1, 4), 0u);
}

TEST(BitUtil, Ipow)
{
    EXPECT_EQ(ipow(4, 0), 1u);
    EXPECT_EQ(ipow(4, 3), 64u);
    EXPECT_EQ(ipow(2, 10), 1024u);
}

TEST(BitUtil, RadixDigitMsbFirst)
{
    // 27 in base 4 over 3 digits is 1 2 3 (MSB first).
    EXPECT_EQ(radixDigitMsbFirst(27, 4, 3, 0), 1u);
    EXPECT_EQ(radixDigitMsbFirst(27, 4, 3, 1), 2u);
    EXPECT_EQ(radixDigitMsbFirst(27, 4, 3, 2), 3u);
}

TEST(StringUtil, FormatFixed)
{
    EXPECT_EQ(formatFixed(1.23456, 2), "1.23");
    EXPECT_EQ(formatFixed(0.0, 3), "0.000");
}

TEST(StringUtil, PaperStyleProbabilityFormatting)
{
    EXPECT_EQ(formatProbabilityPaperStyle(0.0), "0");
    EXPECT_EQ(formatProbabilityPaperStyle(0.0001), "0+");
    EXPECT_EQ(formatProbabilityPaperStyle(0.00049), "0+");
    EXPECT_EQ(formatProbabilityPaperStyle(0.074), "0.074");
    EXPECT_EQ(formatProbabilityPaperStyle(0.242), "0.242");
}

TEST(StringUtil, SplitKeepsEmptyFields)
{
    const auto fields = split("a,,b", ',');
    ASSERT_EQ(fields.size(), 3u);
    EXPECT_EQ(fields[0], "a");
    EXPECT_EQ(fields[1], "");
    EXPECT_EQ(fields[2], "b");
}

TEST(StringUtil, Padding)
{
    EXPECT_EQ(padLeft("x", 3), "  x");
    EXPECT_EQ(padRight("x", 3), "x  ");
    EXPECT_EQ(padLeft("long", 2), "long");
}

TEST(ArgParser, DefaultsAndOverrides)
{
    ArgParser args("prog", "test");
    args.addOption("load", "0.5", "offered load");
    args.addOption("buffer", "damq", "buffer type");
    args.addFlag("verbose", "talk more");

    const char *argv[] = {"prog", "--load", "0.75", "--verbose"};
    args.parse(4, const_cast<char **>(argv));

    EXPECT_DOUBLE_EQ(args.getDouble("load"), 0.75);
    EXPECT_EQ(args.getString("buffer"), "damq");
    EXPECT_TRUE(args.getFlag("verbose"));
}

TEST(ArgParser, EqualsSyntax)
{
    ArgParser args("prog", "test");
    args.addOption("slots", "4", "slots per buffer");
    const char *argv[] = {"prog", "--slots=8"};
    args.parse(2, const_cast<char **>(argv));
    EXPECT_EQ(args.getInt("slots"), 8);
}

TEST(ArgParser, UsageMentionsOptions)
{
    ArgParser args("prog", "summary text");
    args.addOption("seed", "1", "rng seed");
    const std::string usage = args.usage();
    EXPECT_NE(usage.find("--seed"), std::string::npos);
    EXPECT_NE(usage.find("rng seed"), std::string::npos);
    EXPECT_NE(usage.find("summary text"), std::string::npos);
}

} // namespace
} // namespace damq

/**
 * @file
 * Property tests: the linked-list DamqBuffer must be operation-for-
 * operation equivalent to the simple ReferenceMultiQueue oracle
 * under long random operation streams, while its hardware-style
 * invariants (slot conservation, list integrity) hold continuously.
 */

#include <gtest/gtest.h>

#include <tuple>

#include "common/random.hh"
#include "queueing/damq_buffer.hh"
#include "queueing/reference_multi_queue.hh"

namespace damq {
namespace {

struct Config
{
    std::uint64_t seed;
    PortId outputs;
    std::uint32_t slots;
    std::uint32_t maxLen;
};

class DamqVsOracle : public ::testing::TestWithParam<Config>
{
};

TEST_P(DamqVsOracle, EquivalentUnderRandomOperations)
{
    const Config cfg = GetParam();
    DamqBuffer damq(cfg.outputs, cfg.slots);
    ReferenceMultiQueue oracle(cfg.outputs, cfg.slots);
    Random rng(cfg.seed);

    PacketId next_id = 0;
    for (int step = 0; step < 5000; ++step) {
        const int op = static_cast<int>(rng.below(100));
        if (op < 55) {
            // Push a random packet.
            Packet p;
            p.id = next_id++;
            p.outPort = static_cast<PortId>(rng.below(cfg.outputs));
            p.lengthSlots =
                1 + static_cast<std::uint32_t>(rng.below(cfg.maxLen));
            const bool damq_ok = damq.canAccept(p.outPort,
                                                p.lengthSlots);
            const bool oracle_ok = oracle.canAccept(p.outPort,
                                                    p.lengthSlots);
            ASSERT_EQ(damq_ok, oracle_ok)
                << "admission disagreement at step " << step;
            if (damq_ok) {
                damq.push(p);
                oracle.push(p);
            }
        } else if (op < 95) {
            // Pop from a random non-empty queue.
            const PortId out =
                static_cast<PortId>(rng.below(cfg.outputs));
            const Packet *dh = damq.peek(out);
            const Packet *oh = oracle.peek(out);
            ASSERT_EQ(dh == nullptr, oh == nullptr)
                << "visibility disagreement at step " << step;
            if (dh) {
                ASSERT_EQ(dh->id, oh->id);
                const Packet dp = damq.pop(out);
                const Packet op2 = oracle.pop(out);
                ASSERT_EQ(dp.id, op2.id);
                ASSERT_EQ(dp.lengthSlots, op2.lengthSlots);
            }
        } else {
            // Occasionally clear both.
            damq.clear();
            oracle.clear();
        }

        // Continuous structural checks.
        damq.debugValidate();
        ASSERT_EQ(damq.totalPackets(), oracle.totalPackets());
        ASSERT_EQ(damq.usedSlots(), oracle.usedSlots());
        for (PortId out = 0; out < cfg.outputs; ++out) {
            ASSERT_EQ(damq.queueLength(out), oracle.queueLength(out));
            const Packet *dh = damq.peek(out);
            const Packet *oh = oracle.peek(out);
            ASSERT_EQ(dh == nullptr, oh == nullptr);
            if (dh) {
                ASSERT_EQ(dh->id, oh->id);
            }
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, DamqVsOracle,
    ::testing::Values(Config{1, 4, 4, 1},   // the paper's geometry
                      Config{2, 4, 4, 1},
                      Config{3, 4, 8, 1},
                      Config{4, 2, 3, 1},   // odd capacity
                      Config{5, 4, 12, 4},  // ComCoBB: 12 slots, 4-slot pkts
                      Config{6, 8, 16, 2},  // wide switch
                      Config{7, 3, 5, 3},
                      Config{8, 5, 20, 4},
                      Config{9, 2, 2, 1},   // minimal
                      Config{10, 6, 24, 4}),
    [](const ::testing::TestParamInfo<Config> &info) {
        const Config &c = info.param;
        return "seed" + std::to_string(c.seed) + "_q" +
               std::to_string(c.outputs) + "_s" +
               std::to_string(c.slots) + "_l" +
               std::to_string(c.maxLen);
    });

TEST(DamqFreeListOrder, SlotsRecycleFifo)
{
    // The free list is a queue (slots return to its tail), so a
    // buffer cycling one packet forever must rotate through all
    // slots rather than hammering one — matching the hardware and
    // keeping wear uniform.  Observe via snapshot stability.
    DamqBuffer buf(2, 4);
    Packet p;
    p.id = 1;
    p.outPort = 0;
    p.lengthSlots = 1;
    for (int i = 0; i < 16; ++i) {
        buf.push(p);
        buf.pop(0);
        buf.debugValidate();
    }
    EXPECT_EQ(buf.freeSlotCount(), 4u);
}

TEST(DamqStress, FullDrainCyclesAtEveryCapacity)
{
    for (std::uint32_t slots = 1; slots <= 24; ++slots) {
        DamqBuffer buf(4, slots);
        // Fill completely with 1-slot packets round-robin.
        PacketId id = 0;
        while (buf.canAccept(id % 4, 1)) {
            Packet p;
            p.id = id;
            p.outPort = static_cast<PortId>(id % 4);
            buf.push(p);
            ++id;
        }
        EXPECT_EQ(buf.usedSlots(), slots);
        buf.debugValidate();
        // Drain everything.
        for (PortId out = 0; out < 4; ++out) {
            while (buf.peek(out))
                buf.pop(out);
        }
        EXPECT_TRUE(buf.empty());
        EXPECT_EQ(buf.freeSlotCount(), slots);
        buf.debugValidate();
    }
}

} // namespace
} // namespace damq

/**
 * @file
 * Detect-and-recover tests: the CRC the link layer seals frames
 * with, the RecoveryPolicy config surface, the link-state mask, the
 * up*-down* fault router's legality guarantees, and the end-to-end
 * promises of the protocol — retransmission makes transient drops
 * and corruptions lossless, rerouting keeps a blocking torus
 * delivering around permanently dead links with the deadlock
 * watchdog armed and silent, and every run closes its packet
 * accounting exactly.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <optional>
#include <string>
#include <vector>

#include "common/crc.hh"
#include "network/core/fault_router.hh"
#include "network/core/grid_topology.hh"
#include "network/core/link_state.hh"
#include "network/core/recovery.hh"
#include "network/mesh_sim.hh"
#include "network/network_sim.hh"
#include "network/torus_sim.hh"

namespace damq {
namespace {

// --------------------------------------------------- policy parsing

TEST(RecoveryPolicyParse, RoundTripsEveryCanonicalName)
{
    const RecoveryPolicy all[] = {RecoveryPolicy::None,
                                  RecoveryPolicy::Retransmit,
                                  RecoveryPolicy::RetransmitReroute};
    for (const RecoveryPolicy policy : all) {
        const std::optional<RecoveryPolicy> parsed =
            tryRecoveryPolicyFromString(recoveryPolicyName(policy));
        ASSERT_TRUE(parsed.has_value())
            << recoveryPolicyName(policy);
        EXPECT_EQ(*parsed, policy);
    }
}

TEST(RecoveryPolicyParse, RerouteShorthandAndBadInput)
{
    const std::optional<RecoveryPolicy> shorthand =
        tryRecoveryPolicyFromString("reroute");
    ASSERT_TRUE(shorthand.has_value());
    EXPECT_EQ(*shorthand, RecoveryPolicy::RetransmitReroute);

    EXPECT_FALSE(tryRecoveryPolicyFromString("").has_value());
    EXPECT_FALSE(tryRecoveryPolicyFromString("resend").has_value());
    EXPECT_FALSE(
        tryRecoveryPolicyFromString("retransmit ").has_value());
}

TEST(RecoveryConfigSurface, PolicyPredicatesMatchThePolicy)
{
    RecoveryConfig cfg;
    EXPECT_FALSE(cfg.enabled());
    EXPECT_FALSE(cfg.reroute());
    cfg.policy = RecoveryPolicy::Retransmit;
    EXPECT_TRUE(cfg.enabled());
    EXPECT_FALSE(cfg.reroute());
    cfg.policy = RecoveryPolicy::RetransmitReroute;
    EXPECT_TRUE(cfg.enabled());
    EXPECT_TRUE(cfg.reroute());
}

// ------------------------------------------------------------ CRC-32C

TEST(Crc32c, MatchesThePublishedCheckValue)
{
    // The CRC catalog check value: CRC-32C("123456789").
    const char digits[] = "123456789";
    EXPECT_EQ(crc32c(digits, 9), 0xE3069283u);
}

TEST(Crc32c, IncrementalUpdatesMatchOneShot)
{
    const char text[] = "link-level retransmission";
    const std::size_t len = sizeof(text) - 1;
    const std::uint32_t oneshot = crc32c(text, len);

    for (std::size_t split = 0; split <= len; ++split) {
        std::uint32_t crc = crc32cInit();
        crc = crc32cUpdate(crc, text, split);
        crc = crc32cUpdate(crc, text + split, len - split);
        EXPECT_EQ(crc32cFinish(crc), oneshot) << "split " << split;
    }
}

TEST(Crc32c, ValueFoldMatchesLittleEndianByteFold)
{
    const std::uint64_t value = 0x0123456789ABCDEFull;
    unsigned char bytes[sizeof(value)];
    for (std::size_t i = 0; i < sizeof(value); ++i)
        bytes[i] = static_cast<unsigned char>(value >> (8 * i));

    const std::uint32_t by_value = crc32cFinish(
        crc32cUpdateValue(crc32cInit(), value));
    const std::uint32_t by_bytes = crc32c(bytes, sizeof(bytes));
    EXPECT_EQ(by_value, by_bytes);
}

TEST(Crc32c, EverySingleBitFlipIsDetected)
{
    unsigned char frame[16];
    for (std::size_t i = 0; i < sizeof(frame); ++i)
        frame[i] = static_cast<unsigned char>(37 * i + 11);
    const std::uint32_t sealed = crc32c(frame, sizeof(frame));

    for (std::size_t bit = 0; bit < 8 * sizeof(frame); ++bit) {
        frame[bit / 8] ^= static_cast<unsigned char>(1u << (bit % 8));
        EXPECT_NE(crc32c(frame, sizeof(frame)), sealed)
            << "bit " << bit;
        frame[bit / 8] ^= static_cast<unsigned char>(1u << (bit % 8));
    }
}

// ----------------------------------------------------- LinkStateMask

TEST(LinkStateMaskBasics, VersionBumpsOnlyOnStateFlips)
{
    core::LinkStateMask mask(8);
    EXPECT_EQ(mask.deadLinks(), 0u);
    EXPECT_EQ(mask.version(), 0u);
    EXPECT_TRUE(mask.linkUp(3));

    mask.setLinkDown(3);
    EXPECT_TRUE(mask.linkDown(3));
    EXPECT_EQ(mask.deadLinks(), 1u);
    EXPECT_EQ(mask.version(), 1u);

    mask.setLinkDown(3); // idempotent: no flip, no version bump
    EXPECT_EQ(mask.version(), 1u);
    mask.setLinkUp(5); // already up
    EXPECT_EQ(mask.version(), 1u);

    mask.setLinkDown(5);
    EXPECT_EQ(mask.deadLinks(), 2u);
    EXPECT_EQ(mask.version(), 2u);

    mask.setLinkUp(3);
    EXPECT_TRUE(mask.linkUp(3));
    EXPECT_EQ(mask.deadLinks(), 1u);
    EXPECT_EQ(mask.version(), 3u);
}

TEST(LinkStateMaskBasics, VisitsDeadLinksInAscendingOrder)
{
    core::LinkStateMask mask(16);
    mask.setLinkDown(9);
    mask.setLinkDown(2);
    mask.setLinkDown(14);

    std::vector<core::LinkId> seen;
    mask.forEachDeadLink(
        [&seen](core::LinkId link) { seen.push_back(link); });
    EXPECT_EQ(seen, (std::vector<core::LinkId>{2, 9, 14}));
}

// ------------------------------------------------- up*-down* routing

/** Both directions of the duplex link out of @p sw through @p out. */
void
killBothWays(const core::Topology &topo, core::LinkStateMask &mask,
             core::SwitchId sw, PortId out)
{
    const std::uint32_t ports = topo.portsPerSwitch();
    mask.setLinkDown(core::linkIdOf(sw, out, ports));
    const core::HopTarget next = topo.hop(sw, out);
    ASSERT_FALSE(next.toSink);
    for (PortId back = 0; back < ports; ++back) {
        if (!topo.hasLink(next.switchId, back))
            continue;
        const core::HopTarget rev = topo.hop(next.switchId, back);
        if (!rev.toSink && rev.switchId == sw)
            mask.setLinkDown(
                core::linkIdOf(next.switchId, back, ports));
    }
}

/**
 * Follow the router from @p from toward @p dest, asserting every
 * step is phase-legal (never down then up), crosses only live
 * links, and terminates.  Returns the hop count, or -1 when the
 * router reported the destination unroutable.
 */
int
walkTo(core::FaultRouter &router, const core::Topology &topo,
       const core::LinkStateMask &mask, core::SwitchId from,
       NodeId dest)
{
    core::SwitchId sw = from;
    bool went_down = false;
    int hops = 0;
    for (;;) {
        const core::FaultRouter::Hop hop =
            router.nextHop(sw, dest, went_down);
        if (hop.port == kInvalidPort)
            return -1;
        if (went_down) {
            // The up*-down* invariant: once descending, a packet
            // never climbs again within one link-state epoch.
            EXPECT_TRUE(hop.down)
                << "down->up turn at switch " << sw;
        }
        EXPECT_TRUE(mask.linkUp(core::linkIdOf(
            sw, hop.port, topo.portsPerSwitch())))
            << "routed onto dead link at switch " << sw;
        went_down = went_down || hop.down;
        const core::HopTarget next = topo.hop(sw, hop.port);
        ++hops;
        if (next.toSink) {
            EXPECT_EQ(next.sink, dest);
            return hops;
        }
        sw = next.switchId;
        if (hops > 64) {
            ADD_FAILURE() << "route " << from << " -> " << dest
                          << " did not terminate";
            return -2;
        }
    }
}

TEST(FaultRouterUnit, CleanMaskPassesThroughToMinimalRouting)
{
    const core::TorusTopology topo(4, 4);
    core::LinkStateMask mask(topo.numLinks());
    core::FaultRouter router(topo, mask);

    EXPECT_FALSE(router.active());
    for (core::SwitchId sw = 0; sw < topo.numSwitches(); ++sw) {
        for (NodeId dest = 0; dest < topo.numEndpoints(); ++dest) {
            const core::FaultRouter::Hop hop =
                router.nextHop(sw, dest, false);
            EXPECT_EQ(hop.port, topo.route(sw, dest));
            EXPECT_FALSE(hop.down);
        }
        for (PortId out = 0; out < topo.portsPerSwitch(); ++out) {
            EXPECT_FALSE(router.downHop(sw, out));
            for (PortId in = 0; in < topo.portsPerSwitch(); ++in)
                EXPECT_FALSE(router.illegalTurn(sw, in, out));
        }
    }
}

TEST(FaultRouterUnit, ReroutesEveryPairAroundDeadLinks)
{
    const core::TorusTopology topo(4, 4);
    core::LinkStateMask mask(topo.numLinks());
    core::FaultRouter router(topo, mask);

    // Three severed cables, graph still connected.
    killBothWays(topo, mask, 5, kEast);
    killBothWays(topo, mask, 10, kNorth);
    killBothWays(topo, mask, 0, kWest);
    ASSERT_TRUE(router.active());

    for (core::SwitchId sw = 0; sw < topo.numSwitches(); ++sw) {
        for (NodeId dest = 0; dest < topo.numEndpoints(); ++dest) {
            const int hops = walkTo(router, topo, mask, sw, dest);
            EXPECT_GT(hops, 0)
                << "no route " << sw << " -> " << dest;
        }
    }
}

TEST(FaultRouterUnit, IsolatedSwitchIsReportedUnroutable)
{
    const core::TorusTopology topo(4, 4);
    core::LinkStateMask mask(topo.numLinks());
    core::FaultRouter router(topo, mask);

    // Sever all four cables of switch 5: a partitioned fabric.
    for (const PortId out : {kEast, kWest, kNorth, kSouth})
        killBothWays(topo, mask, 5, out);

    for (core::SwitchId sw = 0; sw < topo.numSwitches(); ++sw) {
        if (sw == 5)
            continue;
        // Nobody can reach the island...
        EXPECT_EQ(walkTo(router, topo, mask, sw, 5), -1);
        // ...or leave it.
        EXPECT_EQ(walkTo(router, topo, mask, 5, sw), -1);
        // The island can still deliver to its own endpoint, and the
        // mainland still routes among itself.
        EXPECT_GT(walkTo(router, topo, mask, 5, 5), 0);
        EXPECT_GT(walkTo(router, topo, mask, sw, sw), 0);
    }
}

TEST(FaultRouterUnit, DuplexLinksHaveExactlyOneDownDirection)
{
    const core::TorusTopology topo(4, 4);
    core::LinkStateMask mask(topo.numLinks());
    core::FaultRouter router(topo, mask);
    killBothWays(topo, mask, 6, kSouth);

    for (core::SwitchId sw = 0; sw < topo.numSwitches(); ++sw) {
        for (PortId out = 0; out < topo.portsPerSwitch(); ++out) {
            const core::HopTarget next = topo.hop(sw, out);
            if (next.toSink) {
                // Delivery is terminal: always a legal down-hop.
                EXPECT_TRUE(router.downHop(sw, out));
                continue;
            }
            // Find the reverse direction of the same cable.
            PortId back = kInvalidPort;
            for (PortId p = 0; p < topo.portsPerSwitch(); ++p) {
                const core::HopTarget rev =
                    topo.hop(next.switchId, p);
                if (!rev.toSink && rev.switchId == sw) {
                    back = p;
                    break;
                }
            }
            ASSERT_NE(back, kInvalidPort);
            // The orientation is a strict total order, so one
            // direction descends and the other climbs.
            EXPECT_NE(router.downHop(sw, out),
                      router.downHop(next.switchId, back));
        }
    }
}

TEST(FaultRouterUnit, IllegalTurnIsExactlyDownBufferThenUpHop)
{
    const core::TorusTopology topo(4, 4);
    core::LinkStateMask mask(topo.numLinks());
    core::FaultRouter router(topo, mask);
    killBothWays(topo, mask, 9, kEast);

    bool found_one = false;
    for (core::SwitchId sw = 0; sw < topo.numSwitches(); ++sw) {
        for (PortId in = 0; in < topo.portsPerSwitch(); ++in) {
            for (PortId out = 0; out < topo.portsPerSwitch();
                 ++out) {
                const core::HopTarget prev = topo.hop(sw, in);
                const core::HopTarget next = topo.hop(sw, out);
                if (prev.toSink || next.toSink) {
                    // Local injection buffers and delivery hops are
                    // never part of a fabric dependency cycle.
                    EXPECT_FALSE(router.illegalTurn(sw, in, out));
                    continue;
                }
                // Find the directed link feeding input `in`.
                PortId feed = kInvalidPort;
                for (PortId p = 0; p < topo.portsPerSwitch(); ++p) {
                    const core::HopTarget fwd =
                        topo.hop(prev.switchId, p);
                    if (!fwd.toSink && fwd.switchId == sw) {
                        feed = p;
                        break;
                    }
                }
                ASSERT_NE(feed, kInvalidPort);
                const bool expected =
                    router.downHop(prev.switchId, feed) &&
                    !router.downHop(sw, out);
                EXPECT_EQ(router.illegalTurn(sw, in, out), expected)
                    << "sw " << sw << " in " << in << " out " << out;
                found_one = found_one || expected;
            }
        }
    }
    // A torus orientation always has down->up turns somewhere.
    EXPECT_TRUE(found_one);
}

// --------------------------------- retransmission makes drops lossless

/** injected == delivered + discarded + fault-dropped + in flight. */
template <typename Sim>
void
expectAccountingClosed(const Sim &sim)
{
    const NetworkCounters &life = sim.lifetime();
    EXPECT_EQ(life.injected, life.delivered + life.discarded() +
                                 life.faultDropped +
                                 sim.packetsInFlight());
    EXPECT_EQ(life.misrouted, 0u);
}

MeshConfig
faultyMesh(RecoveryPolicy policy)
{
    MeshConfig cfg;
    cfg.width = 4;
    cfg.height = 4;
    cfg.offeredLoad = 0.2;
    cfg.common.warmupCycles = 200;
    cfg.common.measureCycles = 3000;
    cfg.common.faults.seed = 11;
    cfg.common.faults.packetDropRate = 0.005;
    cfg.common.faults.headerBitFlipRate = 0.005;
    cfg.common.auditEveryCycles = 100;
    cfg.common.recovery.policy = policy;
    return cfg;
}

TEST(Retransmission, MeshTransientFaultsBecomeLossless)
{
    MeshSimulator none(faultyMesh(RecoveryPolicy::None));
    none.run();
    const FaultReport detect_only = none.faultReport();
    ASSERT_GT(none.lifetime().faultDropped, 0u);
    EXPECT_FALSE(detect_only.recovery.anyActivity());

    MeshSimulator rtx(faultyMesh(RecoveryPolicy::Retransmit));
    rtx.run();
    const FaultReport recovered = rtx.faultReport();

    // The injector still fires; the protocol absorbs every hit.
    EXPECT_GT(recovered.injectedOf(FaultKind::PacketDrop), 0u);
    EXPECT_GT(recovered.injectedOf(FaultKind::HeaderBitFlip), 0u);
    EXPECT_EQ(rtx.lifetime().faultDropped, 0u);
    EXPECT_GT(recovered.recovery.packetsRecovered, 0u);
    EXPECT_GT(recovered.recovery.retransmits, 0u);
    EXPECT_EQ(recovered.recovery.packetsLostAfterRetry, 0u);
    EXPECT_EQ(recovered.recovery.deadLinksDeclared, 0u);
    EXPECT_EQ(recovered.auditViolations, 0u);
    expectAccountingClosed(rtx);
}

TEST(Retransmission, TorusWithTwoVcsIsAlsoLossless)
{
    TorusConfig cfg; // blocking, two dateline VCs
    cfg.width = 4;
    cfg.height = 4;
    cfg.offeredLoad = 0.2;
    cfg.common.warmupCycles = 200;
    cfg.common.measureCycles = 3000;
    cfg.common.faults.seed = 11;
    cfg.common.faults.packetDropRate = 0.005;
    cfg.common.faults.headerBitFlipRate = 0.005;
    cfg.common.auditEveryCycles = 100;
    cfg.common.watchdogStallCycles = 2000;
    cfg.common.recovery.policy = RecoveryPolicy::Retransmit;

    TorusSimulator sim(cfg);
    const TorusResult result = sim.run();
    const FaultReport report = sim.faultReport();

    EXPECT_GT(report.totalInjected(), 0u);
    EXPECT_EQ(sim.lifetime().faultDropped, 0u);
    EXPECT_GT(report.recovery.packetsRecovered, 0u);
    EXPECT_EQ(report.recovery.packetsLostAfterRetry, 0u);
    EXPECT_EQ(report.auditViolations, 0u);
    EXPECT_EQ(result.watchdogTrips, 0u);
    expectAccountingClosed(sim);
}

// -------------------------------- rerouting around permanent failures

TorusConfig
brokenTorus(double fraction, RecoveryPolicy policy)
{
    TorusConfig cfg; // 8x8, blocking, two dateline VCs
    cfg.offeredLoad = 0.08;
    cfg.common.warmupCycles = 500;
    cfg.common.measureCycles = 4000;
    cfg.common.faults.seed = 1988;
    cfg.common.faults.linkDownFraction = fraction;
    cfg.common.auditEveryCycles = 250;
    cfg.common.watchdogStallCycles = 2000;
    cfg.common.recovery.policy = policy;
    return cfg;
}

TEST(Rerouting, TorusSustainsDeliveryAroundDeadLinks)
{
    TorusSimulator sim(
        brokenTorus(0.10, RecoveryPolicy::RetransmitReroute));
    const TorusResult result = sim.run();
    const FaultReport report = sim.faultReport();

    // The protocol burned through its retries and declared the
    // forced-down links dead, then detoured around them.
    EXPECT_GT(report.recovery.deadLinksDeclared, 0u);
    EXPECT_GT(report.recovery.packetsRerouted, 0u);

    // Delivery is sustained at the offered load...
    EXPECT_GT(result.deliveredThroughput, 0.07);
    // ...with the watchdog armed and silent, and the accounting
    // identity intact at every audit.
    EXPECT_EQ(result.watchdogTrips, 0u);
    EXPECT_FALSE(report.watchdogFired);
    EXPECT_EQ(report.auditViolations, 0u);
    expectAccountingClosed(sim);

    // Detection-only loses a large share of the same traffic.
    TorusSimulator none(brokenTorus(0.10, RecoveryPolicy::None));
    none.run();
    ASSERT_GT(none.lifetime().faultDropped, 0u);
    EXPECT_LT(sim.lifetime().faultDropped * 10,
              none.lifetime().faultDropped);
}

TEST(Rerouting, SameSeedSameOutcome)
{
    const TorusConfig cfg =
        brokenTorus(0.05, RecoveryPolicy::RetransmitReroute);

    TorusSimulator a(cfg);
    TorusSimulator b(cfg);
    const TorusResult ra = a.run();
    const TorusResult rb = b.run();

    EXPECT_EQ(a.lifetime().injected, b.lifetime().injected);
    EXPECT_EQ(a.lifetime().delivered, b.lifetime().delivered);
    EXPECT_EQ(a.lifetime().faultDropped, b.lifetime().faultDropped);
    EXPECT_EQ(ra.deliveredThroughput, rb.deliveredThroughput);
    EXPECT_EQ(ra.latencyP99, rb.latencyP99);

    const FaultReport fa = a.faultReport();
    const FaultReport fb = b.faultReport();
    EXPECT_EQ(fa.recovery.framesSent, fb.recovery.framesSent);
    EXPECT_EQ(fa.recovery.retransmits, fb.recovery.retransmits);
    EXPECT_EQ(fa.recovery.deadLinksDeclared,
              fb.recovery.deadLinksDeclared);
    EXPECT_EQ(fa.recovery.packetsRerouted,
              fb.recovery.packetsRerouted);
}

TEST(Rerouting, EpisodicLinkFaultsHealThroughRevivalProbes)
{
    TorusConfig cfg;
    cfg.width = 4;
    cfg.height = 4;
    cfg.offeredLoad = 0.2;
    cfg.common.warmupCycles = 200;
    cfg.common.measureCycles = 6000;
    cfg.common.faults.seed = 5;
    cfg.common.faults.linkDownRate = 2e-4;
    cfg.common.faults.linkDownCycles = 300;
    cfg.common.auditEveryCycles = 250;
    cfg.common.watchdogStallCycles = 2000;
    cfg.common.recovery.policy = RecoveryPolicy::RetransmitReroute;
    cfg.common.recovery.reviveProbeCycles = 32;

    TorusSimulator sim(cfg);
    const TorusResult result = sim.run();
    const FaultReport report = sim.faultReport();

    ASSERT_GT(report.injectedOf(FaultKind::LinkDown), 0u);
    EXPECT_GT(report.recovery.deadLinksDeclared, 0u);
    // Episodes end, probes notice, links come back.
    EXPECT_GT(report.recovery.linksRevived, 0u);
    EXPECT_EQ(result.watchdogTrips, 0u);
    EXPECT_EQ(report.auditViolations, 0u);
    expectAccountingClosed(sim);
}

// ------------------------------------------------ router-down episodes

TEST(RouterDown, FrozenSwitchEpisodesAreDetectedAndAccounted)
{
    NetworkConfig cfg;
    cfg.numPorts = 16;
    cfg.radix = 4;
    cfg.offeredLoad = 0.3;
    cfg.common.warmupCycles = 200;
    cfg.common.measureCycles = 4000;
    cfg.common.faults.seed = 21;
    cfg.common.faults.routerDownRate = 1e-4;
    cfg.common.faults.routerDownCycles = 100;
    cfg.common.auditEveryCycles = 200;

    NetworkSimulator sim(cfg);
    sim.run();
    const FaultReport report = sim.faultReport();

    ASSERT_GT(report.injectedOf(FaultKind::RouterDown), 0u);
    // Frames into a frozen switch are lost — and charged.
    EXPECT_GT(sim.lifetime().faultDropped, 0u);
    EXPECT_EQ(report.auditViolations, 0u);
    expectAccountingClosed(sim);
}

} // namespace
} // namespace damq

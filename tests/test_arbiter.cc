/**
 * @file
 * Unit tests for the crossbar arbiters: schedule validity (one
 * grant per output, read-port limits), longest-queue selection,
 * dumb vs smart rotation, stale-count fairness, and back-pressure
 * filtering.
 */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "queueing/buffer_factory.hh"
#include "switchsim/arbiter.hh"

namespace damq {
namespace {

Packet
makePacket(PacketId id, PortId out)
{
    Packet p;
    p.id = id;
    p.outPort = out;
    p.lengthSlots = 1;
    return p;
}

/** Test fixture holding four buffers of a chosen type. */
class ArbiterFixture
{
  public:
    ArbiterFixture(BufferType type, std::uint32_t slots = 8)
    {
        for (int i = 0; i < 4; ++i) {
            owned.push_back(makeBuffer(type, 4, slots));
            buffers.push_back(owned.back().get());
        }
    }

    BufferModel &buf(PortId i) { return *buffers[i]; }

    static bool alwaysSend(PortId, QueueKey, const Packet &)
    {
        return true;
    }

    std::vector<std::unique_ptr<BufferModel>> owned;
    std::vector<BufferModel *> buffers;
};

void
expectValidSchedule(const GrantList &grants,
                    const std::vector<BufferModel *> &buffers)
{
    std::vector<int> per_output(4, 0);
    std::vector<int> per_input(4, 0);
    for (const Grant &g : grants) {
        ++per_output[g.output];
        ++per_input[g.input];
    }
    for (int c : per_output)
        EXPECT_LE(c, 1);
    for (PortId i = 0; i < 4; ++i)
        EXPECT_LE(per_input[i],
                  static_cast<int>(buffers[i]->maxReadsPerCycle()));
}

TEST(DumbArbiter, EmptyBuffersYieldNoGrants)
{
    ArbiterFixture fx(BufferType::Damq);
    DumbArbiter arb(4, 4);
    EXPECT_TRUE(arb.arbitrate(fx.buffers,
                              ArbiterFixture::alwaysSend).empty());
}

TEST(DumbArbiter, GrantsAreConflictFree)
{
    ArbiterFixture fx(BufferType::Damq);
    // Everybody wants output 2.
    for (PortId i = 0; i < 4; ++i)
        fx.buf(i).push(makePacket(i, 2));
    DumbArbiter arb(4, 4);
    const GrantList grants =
        arb.arbitrate(fx.buffers, ArbiterFixture::alwaysSend);
    expectValidSchedule(grants, fx.buffers);
    ASSERT_EQ(grants.size(), 1u);
    EXPECT_EQ(grants[0].output, 2u);
}

TEST(DumbArbiter, FullDemandSaturatesAllOutputs)
{
    ArbiterFixture fx(BufferType::Damq);
    for (PortId i = 0; i < 4; ++i)
        for (PortId o = 0; o < 4; ++o)
            fx.buf(i).push(makePacket(i * 4 + o, o));
    DumbArbiter arb(4, 4);
    const GrantList grants =
        arb.arbitrate(fx.buffers, ArbiterFixture::alwaysSend);
    expectValidSchedule(grants, fx.buffers);
    EXPECT_EQ(grants.size(), 4u);
}

TEST(DumbArbiter, PicksLongestQueue)
{
    ArbiterFixture fx(BufferType::Damq);
    fx.buf(0).push(makePacket(1, 1));
    fx.buf(0).push(makePacket(2, 3));
    fx.buf(0).push(makePacket(3, 3));
    DumbArbiter arb(4, 4);
    const GrantList grants =
        arb.arbitrate(fx.buffers, ArbiterFixture::alwaysSend);
    ASSERT_EQ(grants.size(), 1u);
    EXPECT_EQ(grants[0].output, 3u); // queue 3 is longer
}

TEST(DumbArbiter, RotatesPriorityEveryCycle)
{
    ArbiterFixture fx(BufferType::Damq);
    DumbArbiter arb(4, 4);
    // All four inputs always compete for output 0; with dumb
    // rotation each must win exactly a quarter of the turns.
    std::vector<int> wins(4, 0);
    for (int cycle = 0; cycle < 100; ++cycle) {
        for (PortId i = 0; i < 4; ++i) {
            fx.buf(i).clear();
            fx.buf(i).push(makePacket(i, 0));
        }
        const GrantList grants =
            arb.arbitrate(fx.buffers, ArbiterFixture::alwaysSend);
        ASSERT_EQ(grants.size(), 1u);
        ++wins[grants[0].input];
    }
    for (const int w : wins)
        EXPECT_EQ(w, 25);
}

TEST(DumbArbiter, RespectsBackPressure)
{
    ArbiterFixture fx(BufferType::Damq);
    fx.buf(0).push(makePacket(1, 1));
    fx.buf(0).push(makePacket(2, 2));
    DumbArbiter arb(4, 4);
    auto blocked1 = [](PortId, QueueKey out, const Packet &) {
        return out.out != 1;
    };
    const GrantList grants = arb.arbitrate(fx.buffers, blocked1);
    ASSERT_EQ(grants.size(), 1u);
    EXPECT_EQ(grants[0].output, 2u);
}

TEST(SafcArbitration, OneBufferCanFeedAllOutputs)
{
    ArbiterFixture fx(BufferType::Safc);
    for (PortId o = 0; o < 4; ++o)
        fx.buf(0).push(makePacket(o, o));
    DumbArbiter arb(4, 4);
    const GrantList grants =
        arb.arbitrate(fx.buffers, ArbiterFixture::alwaysSend);
    expectValidSchedule(grants, fx.buffers);
    EXPECT_EQ(grants.size(), 4u);
    for (const Grant &g : grants)
        EXPECT_EQ(g.input, 0u);
}

TEST(SingleReadPort, DamqEmitsAtMostOnePerCycle)
{
    ArbiterFixture fx(BufferType::Damq);
    for (PortId o = 0; o < 4; ++o)
        fx.buf(0).push(makePacket(o, o));
    DumbArbiter arb(4, 4);
    const GrantList grants =
        arb.arbitrate(fx.buffers, ArbiterFixture::alwaysSend);
    EXPECT_EQ(grants.size(), 1u);
}

TEST(SmartArbiter, HoldsPriorityThroughFruitlessTurns)
{
    ArbiterFixture fx(BufferType::Damq);
    SmartArbiter arb(4, 4);

    // Cycle 1: input 0 (priority holder) has nothing; input 1
    // transmits.  Priority must stay at input 0.
    fx.buf(1).push(makePacket(1, 0));
    GrantList grants =
        arb.arbitrate(fx.buffers, ArbiterFixture::alwaysSend);
    ASSERT_EQ(grants.size(), 1u);
    EXPECT_EQ(grants[0].input, 1u);

    // Cycle 2: both 0 and 1 compete; 0 should win because its
    // fruitless turn was not counted.
    fx.buf(0).push(makePacket(2, 0));
    fx.buf(1).push(makePacket(3, 0));
    grants = arb.arbitrate(fx.buffers, ArbiterFixture::alwaysSend);
    ASSERT_EQ(grants.size(), 1u);
    EXPECT_EQ(grants[0].input, 0u);
}

TEST(SmartArbiter, StaleQueuePreemptsLongerQueue)
{
    ArbiterFixture fx(BufferType::Damq, 16);
    SmartArbiter arb(4, 4, /*stale_threshold=*/3);

    // Queue 1 of buffer 0 holds one old packet; queue 2 is longer.
    fx.buf(0).push(makePacket(1, 1));
    for (int i = 0; i < 5; ++i)
        fx.buf(0).push(makePacket(10 + i, 2));

    // Block output 1 for a few cycles so its queue goes stale.
    auto blocked1 = [](PortId, QueueKey out, const Packet &) {
        return out.out != 1;
    };
    for (int cycle = 0; cycle < 4; ++cycle) {
        const GrantList grants = arb.arbitrate(fx.buffers, blocked1);
        for (const Grant &g : grants)
            fx.buf(g.input).pop(g.output);
        // Top queue 2 back up so it stays longer.
        fx.buf(0).push(makePacket(100 + cycle, 2));
    }
    EXPECT_GE(arb.staleCount(0, 1), 3u);

    // Output 1 unblocks: the stale queue must win over the longer
    // queue 2.
    const GrantList grants =
        arb.arbitrate(fx.buffers, ArbiterFixture::alwaysSend);
    ASSERT_FALSE(grants.empty());
    EXPECT_EQ(grants[0].input, 0u);
    EXPECT_EQ(grants[0].output, 1u);
    EXPECT_EQ(arb.staleCount(0, 1), 0u); // reset after service
}

TEST(SmartArbiter, StaleCountClearsWhenQueueEmpties)
{
    ArbiterFixture fx(BufferType::Damq);
    SmartArbiter arb(4, 4, 2);
    fx.buf(0).push(makePacket(1, 1));
    auto blocked = [](PortId, QueueKey, const Packet &) {
        return false;
    };
    arb.arbitrate(fx.buffers, blocked);
    EXPECT_EQ(arb.staleCount(0, 1), 1u);
    fx.buf(0).pop(1); // queue drains by other means
    arb.arbitrate(fx.buffers, blocked);
    EXPECT_EQ(arb.staleCount(0, 1), 0u);
}

TEST(ArbiterFactory, ProducesRequestedPolicies)
{
    EXPECT_EQ(makeArbiter(ArbitrationPolicy::Dumb, 4, 4)->policy(),
              ArbitrationPolicy::Dumb);
    EXPECT_EQ(makeArbiter(ArbitrationPolicy::Smart, 4, 4)->policy(),
              ArbitrationPolicy::Smart);
    EXPECT_EQ(tryArbitrationPolicyFromString("smart"),
              ArbitrationPolicy::Smart);
    EXPECT_EQ(tryArbitrationPolicyFromString("DUMB"),
              ArbitrationPolicy::Dumb);
}

TEST(ArbiterReset, ClearsFairnessState)
{
    ArbiterFixture fx(BufferType::Damq);
    SmartArbiter arb(4, 4, 2);
    fx.buf(0).push(makePacket(1, 1));
    auto blocked = [](PortId, QueueKey, const Packet &) {
        return false;
    };
    arb.arbitrate(fx.buffers, blocked);
    EXPECT_GT(arb.staleCount(0, 1), 0u);
    arb.reset();
    EXPECT_EQ(arb.staleCount(0, 1), 0u);
}

} // namespace
} // namespace damq

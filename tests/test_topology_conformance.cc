/**
 * @file
 * Conformance suite for core::Topology implementations.
 *
 * Every topology the shared SimEngine runs on must satisfy the same
 * contract, independent of its geometry:
 *
 *  - following route()/hop() from any source's injection point
 *    reaches every destination's sink in a bounded number of hops
 *    (full reachability — the engine's delivery panic depends on
 *    it);
 *  - every channel is wired to a valid (switch, input port), and a
 *    switch's output channels land on distinct targets (two outputs
 *    feeding one input port would alias buffers);
 *  - two instances built from the same parameters replay identical
 *    routes and hops (determinism — the byte-identity baselines
 *    depend on it);
 *  - grid routes take exactly the minimal number of hops (Manhattan
 *    distance on the mesh, wrap-shortest distance on the torus),
 *    and grid channels are reverse-symmetric (the east channel of A
 *    lands where B's west channel originates).
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <set>
#include <utility>
#include <vector>

#include "network/core/grid_topology.hh"
#include "network/core/omega_graph.hh"
#include "network/core/topology.hh"

namespace damq {
namespace {

/**
 * Walk a packet for @p dest from @p src's injection point; returns
 * the number of switch-to-switch hops taken, or -1 if the walk
 * doesn't reach @p dest's sink within the hop budget.
 */
int
walkToSink(const core::Topology &topo, NodeId src, NodeId dest)
{
    core::SwitchId sw = topo.injectionPoint(src).switchId;
    const int budget = static_cast<int>(topo.numSwitches()) + 2;
    for (int hops = 0; hops <= budget; ++hops) {
        const PortId out = topo.route(sw, dest);
        EXPECT_LT(out, topo.portsPerSwitch());
        const core::HopTarget next = topo.hop(sw, out);
        if (next.toSink)
            return next.sink == dest ? hops : -1;
        EXPECT_LT(next.switchId, topo.numSwitches());
        EXPECT_LT(next.inputPort, topo.portsPerSwitch());
        sw = next.switchId;
    }
    return -1;
}

/** Every (src, dst) pair must be deliverable. */
void
expectFullReachability(const core::Topology &topo)
{
    for (NodeId src = 0; src < topo.numEndpoints(); ++src) {
        for (NodeId dst = 0; dst < topo.numEndpoints(); ++dst) {
            EXPECT_GE(walkToSink(topo, src, dst), 0)
                << "src " << src << " cannot reach dst " << dst;
        }
    }
}

/** Two same-parameter instances must replay identical routes. */
void
expectDeterministicReplay(const core::Topology &a,
                          const core::Topology &b)
{
    ASSERT_EQ(a.numSwitches(), b.numSwitches());
    ASSERT_EQ(a.numEndpoints(), b.numEndpoints());
    for (core::SwitchId sw = 0; sw < a.numSwitches(); ++sw) {
        for (NodeId dst = 0; dst < a.numEndpoints(); ++dst)
            EXPECT_EQ(a.route(sw, dst), b.route(sw, dst))
                << "switch " << sw << " dest " << dst;
    }
    for (NodeId src = 0; src < a.numEndpoints(); ++src) {
        EXPECT_EQ(a.injectionPoint(src).switchId,
                  b.injectionPoint(src).switchId);
        EXPECT_EQ(a.injectionPoint(src).port,
                  b.injectionPoint(src).port);
    }
}

// ---------------------------------------------------------------------
// Omega

void
expectOmegaChannels(const core::OmegaGraph &topo)
{
    const OmegaTopology &net = topo.omega();
    for (core::SwitchId sw = 0; sw < topo.numSwitches(); ++sw) {
        std::set<std::pair<std::uint32_t, std::uint32_t>> targets;
        for (PortId out = 0; out < topo.portsPerSwitch(); ++out) {
            const core::HopTarget next = topo.hop(sw, out);
            if (topo.stageOf(sw) == net.numStages() - 1) {
                EXPECT_TRUE(next.toSink);
                EXPECT_LT(next.sink, topo.numEndpoints());
                targets.insert({~0u, next.sink});
            } else {
                EXPECT_FALSE(next.toSink);
                // Stays stage-local +1 under the flat numbering.
                EXPECT_EQ(topo.stageOf(next.switchId),
                          topo.stageOf(sw) + 1);
                targets.insert({next.switchId, next.inputPort});
            }
        }
        // The shuffle is a permutation: a switch's outputs never
        // collide on one downstream input (or one sink).
        EXPECT_EQ(targets.size(), topo.portsPerSwitch())
            << "aliased channels out of " << topo.switchName(sw);
    }
}

TEST(TopologyConformance, Omega16x4Reachability)
{
    core::OmegaGraph topo(16, 4);
    expectFullReachability(topo);
}

TEST(TopologyConformance, Omega8x2Reachability)
{
    core::OmegaGraph topo(8, 2);
    expectFullReachability(topo);
}

TEST(TopologyConformance, OmegaChannelWiring)
{
    expectOmegaChannels(core::OmegaGraph(16, 4));
    expectOmegaChannels(core::OmegaGraph(8, 2));
}

TEST(TopologyConformance, OmegaDeterministicReplay)
{
    core::OmegaGraph a(16, 4);
    core::OmegaGraph b(16, 4);
    expectDeterministicReplay(a, b);
}

TEST(TopologyConformance, OmegaHopCountIsStageCount)
{
    core::OmegaGraph topo(16, 4);
    const int expected =
        static_cast<int>(topo.omega().numStages()) - 1;
    for (NodeId src = 0; src < topo.numEndpoints(); ++src) {
        for (NodeId dst = 0; dst < topo.numEndpoints(); ++dst)
            EXPECT_EQ(walkToSink(topo, src, dst), expected);
    }
}

// ---------------------------------------------------------------------
// Grids

PortId
oppositeGridPort(PortId out)
{
    switch (out) {
      case kEast: return kWest;
      case kWest: return kEast;
      case kNorth: return kSouth;
      case kSouth: return kNorth;
      default: ADD_FAILURE() << "bad grid port " << out; return out;
    }
}

/** Does node @p sw have a neighbor through @p out? */
bool
gridPortExists(const core::GridTopology &topo, core::SwitchId sw,
               PortId out)
{
    if (topo.wraparound())
        return true;
    const std::uint32_t x = sw % topo.width();
    const std::uint32_t y = sw / topo.width();
    switch (out) {
      case kEast: return x + 1 < topo.width();
      case kWest: return x > 0;
      case kNorth: return y + 1 < topo.height();
      case kSouth: return y > 0;
      default: return false;
    }
}

/**
 * Channel validity + reverse symmetry: leaving through a direction
 * port lands on the neighbor's matching input, and coming back
 * through the opposite port returns home.
 */
void
expectGridChannelSymmetry(const core::GridTopology &topo)
{
    for (core::SwitchId sw = 0; sw < topo.numSwitches(); ++sw) {
        std::set<core::SwitchId> neighbors;
        for (const PortId out : {PortId{kEast}, PortId{kWest},
                                 PortId{kNorth}, PortId{kSouth}}) {
            if (!gridPortExists(topo, sw, out))
                continue;
            const core::HopTarget next = topo.hop(sw, out);
            ASSERT_FALSE(next.toSink);
            ASSERT_LT(next.switchId, topo.numSwitches());
            // A packet arriving from the east entered through the
            // neighbor's west input.
            EXPECT_EQ(next.inputPort, oppositeGridPort(out));
            const core::HopTarget back =
                topo.hop(next.switchId, oppositeGridPort(out));
            ASSERT_FALSE(back.toSink);
            EXPECT_EQ(back.switchId, sw)
                << topo.switchName(sw) << " out " << out;
            neighbors.insert(next.switchId);
        }
        // Distinct link destinations (on 2-wide tori east and west
        // may reach the same node — through different channels —
        // so only open meshes assert full distinctness).
        if (!topo.wraparound() || (topo.width() > 2 &&
                                   topo.height() > 2)) {
            std::size_t expected = 0;
            for (const PortId out : {PortId{kEast}, PortId{kWest},
                                     PortId{kNorth},
                                     PortId{kSouth}}) {
                if (gridPortExists(topo, sw, out))
                    ++expected;
            }
            EXPECT_EQ(neighbors.size(), expected)
                << "aliased links at " << topo.switchName(sw);
        }
        // The local port is the sink of this very node.
        const core::HopTarget local = topo.hop(sw, kLocal);
        EXPECT_TRUE(local.toSink);
        EXPECT_EQ(local.sink, sw);
    }
}

int
meshDistance(const core::GridTopology &topo, NodeId a, NodeId b)
{
    const int ax = static_cast<int>(a % topo.width());
    const int ay = static_cast<int>(a / topo.width());
    const int bx = static_cast<int>(b % topo.width());
    const int by = static_cast<int>(b / topo.width());
    const int dx = ax > bx ? ax - bx : bx - ax;
    const int dy = ay > by ? ay - by : by - ay;
    if (!topo.wraparound())
        return dx + dy;
    const int w = static_cast<int>(topo.width());
    const int h = static_cast<int>(topo.height());
    return std::min(dx, w - dx) + std::min(dy, h - dy);
}

void
expectMinimalGridRoutes(const core::GridTopology &topo)
{
    for (NodeId src = 0; src < topo.numEndpoints(); ++src) {
        for (NodeId dst = 0; dst < topo.numEndpoints(); ++dst) {
            EXPECT_EQ(walkToSink(topo, src, dst),
                      meshDistance(topo, src, dst))
                << "src " << src << " dst " << dst;
        }
    }
}

TEST(TopologyConformance, Mesh4x4)
{
    core::MeshTopology topo(4, 4);
    expectFullReachability(topo);
    expectGridChannelSymmetry(topo);
    expectMinimalGridRoutes(topo);
}

TEST(TopologyConformance, Mesh5x3)
{
    core::MeshTopology topo(5, 3);
    expectFullReachability(topo);
    expectGridChannelSymmetry(topo);
    expectMinimalGridRoutes(topo);
}

TEST(TopologyConformance, MeshDeterministicReplay)
{
    core::MeshTopology a(5, 3);
    core::MeshTopology b(5, 3);
    expectDeterministicReplay(a, b);
}

TEST(TopologyConformance, Torus4x4)
{
    core::TorusTopology topo(4, 4);
    expectFullReachability(topo);
    expectGridChannelSymmetry(topo);
    expectMinimalGridRoutes(topo);
}

TEST(TopologyConformance, Torus5x4)
{
    core::TorusTopology topo(5, 4);
    expectFullReachability(topo);
    expectGridChannelSymmetry(topo);
    expectMinimalGridRoutes(topo);
}

TEST(TopologyConformance, TorusDeterministicReplay)
{
    core::TorusTopology a(5, 4);
    core::TorusTopology b(5, 4);
    expectDeterministicReplay(a, b);
}

TEST(TopologyConformance, TorusTieBreaksPositive)
{
    // On an even ring the two ways around are the same length; the
    // router must pick east/north so replay is deterministic.
    core::TorusTopology topo(4, 4);
    // node 0 -> node 2 (same row, distance 2 both ways): east.
    EXPECT_EQ(topo.route(0, 2), kEast);
    // node 0 -> node 8 (same column, distance 2 both ways): north.
    EXPECT_EQ(topo.route(0, 8), kNorth);
}

TEST(TopologyConformance, TorusWrapsWhereMeshTurnsBack)
{
    core::TorusTopology torus(4, 4);
    core::MeshTopology mesh(4, 4);
    // node 0 -> node 3: the torus goes west (1 wrap hop), the mesh
    // east (3 hops).
    EXPECT_EQ(torus.route(0, 3), kWest);
    EXPECT_EQ(mesh.route(0, 3), kEast);
    EXPECT_EQ(walkToSink(torus, 0, 3), 1);
    EXPECT_EQ(walkToSink(mesh, 0, 3), 3);
}

} // namespace
} // namespace damq

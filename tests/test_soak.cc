/**
 * @file
 * Long fault soaks (ctest label `soak`): the recovery protocol run
 * an order of magnitude longer than the unit suites, under the
 * sanitizers in CI.  A wedge, a leak, or an accounting drift that
 * needs tens of thousands of cycles to surface shows up here, not
 * in the fast suites.
 */

#include <gtest/gtest.h>

#include "fault/fault_report.hh"
#include "network/network_sim.hh"
#include "network/torus_sim.hh"

namespace damq {
namespace {

TEST(FaultSoak, TorusRerouteSurvivesLongRunWithDeadLinks)
{
    TorusConfig cfg; // 8x8, blocking, two dateline VCs
    cfg.offeredLoad = 0.08;
    cfg.common.warmupCycles = 1000;
    cfg.common.measureCycles = 20000;
    cfg.common.faults.seed = 1988;
    cfg.common.faults.linkDownFraction = 0.10;
    cfg.common.auditEveryCycles = 500;
    cfg.common.watchdogStallCycles = 2000;
    cfg.common.recovery.policy = RecoveryPolicy::RetransmitReroute;

    TorusSimulator sim(cfg);
    const TorusResult result = sim.run();
    const FaultReport report = sim.faultReport();

    EXPECT_GT(report.recovery.deadLinksDeclared, 0u);
    EXPECT_GT(report.recovery.packetsRerouted, 0u);
    EXPECT_GT(result.deliveredThroughput, 0.07);
    EXPECT_EQ(result.watchdogTrips, 0u);
    EXPECT_FALSE(report.watchdogFired);
    EXPECT_EQ(report.auditViolations, 0u);

    const NetworkCounters &life = sim.lifetime();
    EXPECT_EQ(life.injected, life.delivered + life.discarded() +
                                 life.faultDropped +
                                 sim.packetsInFlight());
    EXPECT_EQ(life.misrouted, 0u);
}

TEST(FaultSoak, TorusSurvivesLinkChurnWithRevivals)
{
    TorusConfig cfg; // episodes start, die, and heal, repeatedly
    cfg.offeredLoad = 0.08;
    cfg.common.warmupCycles = 1000;
    cfg.common.measureCycles = 20000;
    cfg.common.faults.seed = 7;
    cfg.common.faults.linkDownRate = 5e-5;
    cfg.common.faults.linkDownCycles = 400;
    cfg.common.auditEveryCycles = 500;
    cfg.common.watchdogStallCycles = 2000;
    cfg.common.recovery.policy = RecoveryPolicy::RetransmitReroute;
    cfg.common.recovery.reviveProbeCycles = 64;

    TorusSimulator sim(cfg);
    const TorusResult result = sim.run();
    const FaultReport report = sim.faultReport();

    ASSERT_GT(report.injectedOf(FaultKind::LinkDown), 0u);
    EXPECT_GT(report.recovery.deadLinksDeclared, 0u);
    EXPECT_GT(report.recovery.linksRevived, 0u);
    EXPECT_EQ(result.watchdogTrips, 0u);
    EXPECT_EQ(report.auditViolations, 0u);

    const NetworkCounters &life = sim.lifetime();
    EXPECT_EQ(life.injected, life.delivered + life.discarded() +
                                 life.faultDropped +
                                 sim.packetsInFlight());
}

TEST(FaultSoak, OmegaRetransmissionStaysLosslessOverLongRun)
{
    NetworkConfig cfg;
    cfg.numPorts = 64;
    cfg.radix = 4;
    cfg.offeredLoad = 0.5;
    cfg.common.warmupCycles = 1000;
    cfg.common.measureCycles = 20000;
    cfg.common.faults.seed = 1988;
    cfg.common.faults.packetDropRate = 0.005;
    cfg.common.faults.headerBitFlipRate = 0.005;
    cfg.common.auditEveryCycles = 500;
    cfg.common.recovery.policy = RecoveryPolicy::Retransmit;

    NetworkSimulator sim(cfg);
    sim.run();
    const FaultReport report = sim.faultReport();

    EXPECT_GT(report.totalInjected(), 0u);
    EXPECT_EQ(sim.lifetime().faultDropped, 0u);
    EXPECT_GT(report.recovery.packetsRecovered, 0u);
    EXPECT_EQ(report.recovery.packetsLostAfterRetry, 0u);
    EXPECT_EQ(report.auditViolations, 0u);

    const NetworkCounters &life = sim.lifetime();
    EXPECT_EQ(life.injected, life.delivered + life.discarded() +
                                 life.faultDropped +
                                 sim.packetsInFlight());
    EXPECT_EQ(life.misrouted, 0u);
}

} // namespace
} // namespace damq

/**
 * @file
 * Tests for the alternative buffer placements of Section 2: the
 * centralized pool (with Fujimoto's hogging) and output queueing
 * (Karol et al.), plus their integration into the network
 * simulator and the output-queued Markov model.
 */

#include <gtest/gtest.h>

#include "common/random.hh"
#include "markov/output_queued2x2.hh"
#include "markov/switch2x2.hh"
#include "network/network_sim.hh"
#include "network/saturation.hh"
#include "switchsim/central_buffer_switch.hh"
#include "switchsim/output_queued_switch.hh"
#include "switchsim/switch_unit.hh"

namespace damq {
namespace {

Packet
makePacket(PacketId id, PortId out, std::uint32_t len = 1)
{
    Packet p;
    p.id = id;
    p.outPort = out;
    p.lengthSlots = len;
    return p;
}

CanSendFn
always()
{
    return [](PortId, QueueKey, const Packet &) { return true; };
}

TEST(Placement, NamesRoundTrip)
{
    EXPECT_EQ(tryBufferPlacementFromString("input"),
              BufferPlacement::Input);
    EXPECT_EQ(tryBufferPlacementFromString("CENTRAL"),
              BufferPlacement::Central);
    EXPECT_EQ(tryBufferPlacementFromString("Output"),
              BufferPlacement::Output);
    EXPECT_STREQ(bufferPlacementName(BufferPlacement::Central),
                 "central");
}

TEST(Placement, FactoryEqualStorage)
{
    auto input = makeSwitchUnit(BufferPlacement::Input, 4,
                                BufferType::Damq, 4,
                                ArbitrationPolicy::Smart);
    auto central = makeSwitchUnit(BufferPlacement::Central, 4,
                                  BufferType::Damq, 4,
                                  ArbitrationPolicy::Smart);
    auto output = makeSwitchUnit(BufferPlacement::Output, 4,
                                 BufferType::Damq, 4,
                                 ArbitrationPolicy::Smart);
    // All three organizations get 16 slots total.
    auto *central_cast =
        dynamic_cast<CentralBufferSwitch *>(central.get());
    ASSERT_NE(central_cast, nullptr);
    EXPECT_EQ(central_cast->capacitySlots(), 16u);
    auto *output_cast =
        dynamic_cast<OutputQueuedSwitch *>(output.get());
    ASSERT_NE(output_cast, nullptr);
    EXPECT_EQ(output_cast->perOutputCapacity(), 4u);
    EXPECT_EQ(input->numPorts(), 4u);
}

// -------------------------------------------------------- central pool

TEST(CentralBufferSwitch, SharedPoolAdmission)
{
    CentralBufferSwitch sw(4, 8);
    // One input can consume the whole pool...
    for (int i = 0; i < 8; ++i)
        EXPECT_TRUE(sw.tryReceive(0, makePacket(i, 1)));
    EXPECT_EQ(sw.totalUsedSlots(), 8u);
    // ...and then every other input is locked out: hogging.
    EXPECT_FALSE(sw.canAccept(1, 2, 1));
    EXPECT_FALSE(sw.tryReceive(1, makePacket(99, 2)));
    EXPECT_EQ(sw.unitStats().discarded, 1u);
    EXPECT_EQ(sw.usedSlotsByInput(0), 8u);
    sw.debugValidate();
}

TEST(CentralBufferSwitch, AllOutputsTransmitSimultaneously)
{
    CentralBufferSwitch sw(4, 8);
    for (PortId out = 0; out < 4; ++out)
        sw.tryReceive(out, makePacket(out, out));
    const auto sent = sw.transmit(always());
    EXPECT_EQ(sent.size(), 4u);
    EXPECT_EQ(sw.totalPackets(), 0u);
    sw.debugValidate();
}

TEST(CentralBufferSwitch, PerOutputFifoOrder)
{
    CentralBufferSwitch sw(2, 4);
    sw.tryReceive(0, makePacket(1, 1));
    sw.tryReceive(1, makePacket(2, 1));
    auto sent = sw.transmit(always());
    ASSERT_EQ(sent.size(), 1u);
    EXPECT_EQ(sent[0].id, 1u);
    sent = sw.transmit(always());
    ASSERT_EQ(sent.size(), 1u);
    EXPECT_EQ(sent[0].id, 2u);
}

TEST(CentralBufferSwitch, BackPressureHoldsPacket)
{
    CentralBufferSwitch sw(2, 4);
    sw.tryReceive(0, makePacket(1, 0));
    auto blocked = [](PortId, QueueKey, const Packet &) {
        return false;
    };
    EXPECT_TRUE(sw.transmit(blocked).empty());
    EXPECT_EQ(sw.totalPackets(), 1u);
}

TEST(CentralBufferSwitch, ResetClears)
{
    CentralBufferSwitch sw(2, 4);
    sw.tryReceive(0, makePacket(1, 0));
    sw.reset();
    EXPECT_EQ(sw.totalPackets(), 0u);
    EXPECT_EQ(sw.unitStats().received, 0u);
    sw.debugValidate();
}

// ------------------------------------------------------ output queueing

TEST(OutputQueuedSwitch, NoHeadOfLineBlocking)
{
    OutputQueuedSwitch sw(4, 4);
    // Arrivals from one input to four different outputs all flow
    // out in a single cycle.
    for (PortId out = 0; out < 4; ++out)
        sw.tryReceive(0, makePacket(out, out));
    EXPECT_EQ(sw.transmit(always()).size(), 4u);
}

TEST(OutputQueuedSwitch, AllInputsCanWriteSameOutput)
{
    OutputQueuedSwitch sw(4, 4);
    // The idealized multi-write-port memory: four simultaneous
    // arrivals for the same output all stored.
    for (PortId input = 0; input < 4; ++input)
        EXPECT_TRUE(sw.tryReceive(input, makePacket(input, 2)));
    EXPECT_EQ(sw.usedSlotsAtOutput(2), 4u);
    // But the partition is now full — static allocation.
    EXPECT_FALSE(sw.canAccept(0, 2, 1));
    EXPECT_TRUE(sw.canAccept(0, 1, 1));
    sw.debugValidate();
}

TEST(OutputQueuedSwitch, FifoOrderPerOutput)
{
    OutputQueuedSwitch sw(2, 4);
    sw.tryReceive(0, makePacket(1, 1));
    sw.tryReceive(1, makePacket(2, 1));
    auto sent = sw.transmit(always());
    ASSERT_EQ(sent.size(), 1u);
    EXPECT_EQ(sent[0].id, 1u);
}

TEST(OutputQueuedSwitch, DiscardCountsAgainstFullQueue)
{
    OutputQueuedSwitch sw(2, 1);
    EXPECT_TRUE(sw.tryReceive(0, makePacket(1, 0)));
    EXPECT_FALSE(sw.tryReceive(1, makePacket(2, 0)));
    EXPECT_EQ(sw.unitStats().discarded, 1u);
}

// ----------------------------------------------------------- in network

class PlacementNetworkTest
    : public ::testing::TestWithParam<BufferPlacement>
{
};

TEST_P(PlacementNetworkTest, ConservationHolds)
{
    NetworkConfig cfg;
    cfg.placement = GetParam();
    cfg.offeredLoad = 0.6;
    cfg.common.seed = 41;
    NetworkSimulator sim(cfg);
    for (int i = 0; i < 600; ++i)
        sim.step();
    sim.debugValidate();
    const NetworkCounters &c = sim.lifetime();
    EXPECT_EQ(c.generated, c.delivered + c.discarded() +
                               sim.packetsInFlight() +
                               sim.packetsAtSources());
    EXPECT_EQ(c.misrouted, 0u);
}

TEST_P(PlacementNetworkTest, DiscardingConservationHolds)
{
    NetworkConfig cfg;
    cfg.placement = GetParam();
    cfg.protocol = FlowControl::Discarding;
    cfg.offeredLoad = 0.8;
    cfg.common.seed = 42;
    NetworkSimulator sim(cfg);
    for (int i = 0; i < 600; ++i)
        sim.step();
    const NetworkCounters &c = sim.lifetime();
    EXPECT_EQ(c.generated, c.delivered + c.discarded() +
                               sim.packetsInFlight() +
                               sim.packetsAtSources());
}

INSTANTIATE_TEST_SUITE_P(
    AllPlacements, PlacementNetworkTest,
    ::testing::Values(BufferPlacement::Input,
                      BufferPlacement::Central,
                      BufferPlacement::Output),
    [](const ::testing::TestParamInfo<BufferPlacement> &info) {
        return bufferPlacementName(info.param);
    });

TEST(PlacementNetwork, SaturationOrderingAcrossPlacements)
{
    NetworkConfig cfg;
    cfg.common.warmupCycles = 400;
    cfg.common.measureCycles = 2500;
    cfg.common.seed = 10;

    cfg.placement = BufferPlacement::Input;
    cfg.bufferType = BufferType::Fifo;
    const double fifo = measureSaturation(cfg).saturationThroughput;
    cfg.bufferType = BufferType::Damq;
    const double damq = measureSaturation(cfg).saturationThroughput;
    cfg.placement = BufferPlacement::Output;
    const double outq = measureSaturation(cfg).saturationThroughput;
    cfg.placement = BufferPlacement::Central;
    const double central =
        measureSaturation(cfg).saturationThroughput;

    // Every alternative placement removes FIFO's head-of-line
    // blocking, so all beat input-FIFO; the central pool (ideal
    // bandwidth + pooled space) is the upper bound and beats even
    // DAMQ.  Output queueing sits between FIFO and DAMQ here: its
    // static per-output partitions hurt under the blocking
    // protocol, which is space-driven (see the Markov layer for
    // the same effect on discards).
    EXPECT_GT(outq, fifo);
    EXPECT_GT(damq, fifo * 1.2);
    EXPECT_GE(central, damq - 0.03);
}

// --------------------------------------------------- output-queued Markov

TEST(OutputQueuedMarkov, ZeroTrafficNoDiscards)
{
    const auto r = analyzeOutputQueued2x2(4, 0.0);
    EXPECT_DOUBLE_EQ(r.discardProbability, 0.0);
}

TEST(OutputQueuedMarkov, MonotoneInTrafficAndSlots)
{
    double prev = -1.0;
    for (const double p : {0.25, 0.5, 0.75, 0.9, 0.99}) {
        const double d =
            analyzeOutputQueued2x2(2, p).discardProbability;
        EXPECT_GE(d, prev);
        prev = d;
    }
    prev = 1.0;
    for (const unsigned k : {1u, 2u, 3u, 4u, 6u}) {
        const double d =
            analyzeOutputQueued2x2(k, 0.9).discardProbability;
        EXPECT_LE(d, prev + 1e-12);
        prev = d;
    }
}

TEST(OutputQueuedMarkov, BeatsStaticInputOrganizationsAtEqualStorage)
{
    // Equal total storage: 4 slots per output queue (8 total) vs
    // 4 slots per input buffer (8 total).  Ideal-write-bandwidth
    // output queueing discards less than FIFO and the statically
    // partitioned input organizations...
    for (const double p : {0.75, 0.9, 0.99}) {
        const double outq =
            analyzeOutputQueued2x2(4, p).discardProbability;
        for (const BufferType type :
             {BufferType::Fifo, BufferType::Samq, BufferType::Safc}) {
            const double inq =
                analyzeDiscarding2x2(type, 4, p).discardProbability;
            EXPECT_LE(outq, inq + 1e-9)
                << bufferTypeName(type) << " p=" << p;
        }
    }
}

TEST(OutputQueuedMarkov, DamqBeatsEvenIdealOutputQueueingOnDiscards)
{
    // ...but DAMQ discards less than even ideal output queueing at
    // equal storage: output queues are statically partitioned per
    // output, while the DAMQ pools its slots — under discarding,
    // space flexibility beats write bandwidth.  (Karol et al.'s
    // output-queueing advantage is about *delay*, not loss.)
    for (const double p : {0.75, 0.9, 0.99}) {
        const double outq =
            analyzeOutputQueued2x2(4, p).discardProbability;
        const double damq =
            analyzeDiscarding2x2(BufferType::Damq, 4, p)
                .discardProbability;
        EXPECT_LE(damq, outq + 1e-9) << "p=" << p;
    }
}

TEST(OutputQueuedMarkov, MatchesHandComputedTinyCase)
{
    // cap = 1, p = 1: every cycle both inputs bring one packet.
    // The chain lives on states (q0,q1).  From any state each
    // non-empty queue drains one, then two arrivals land.  Both to
    // the same empty queue -> 1 discard; spread across -> 0.
    // P(same output) = 1/2, and a queue that received last cycle
    // drains first, so the state renews every cycle: expected
    // discards/cycle = from (q0,q1) after drain always (0,0)-ish.
    // Simple renewal: E[discards] = P(both to same queue) * 1 = 0.5
    // -> discard probability = 0.5 / 2 = 0.25.
    const auto r = analyzeOutputQueued2x2(1, 1.0);
    EXPECT_NEAR(r.discardProbability, 0.25, 1e-9);
    EXPECT_NEAR(r.throughput, 1.5, 1e-9);
}

} // namespace
} // namespace damq

/**
 * @file
 * Tests for the Markov machinery: matrix stochasticity, solver
 * agreement (power iteration vs direct elimination), the buffer
 * state algebras, reachable-state-space sizes, and qualitative
 * properties of the Table 2 numbers (monotonicity, DAMQ dominance).
 */

#include <gtest/gtest.h>

#include "markov/buffer_state.hh"
#include "markov/stationary.hh"
#include "markov/switch2x2.hh"
#include "markov/transition_matrix.hh"

namespace damq {
namespace {

TEST(TransitionMatrix, AccumulatesDuplicateEdges)
{
    TransitionMatrix m(2);
    m.addTransition(0, 1, 0.25);
    m.addTransition(0, 1, 0.75);
    m.addTransition(1, 1, 1.0);
    EXPECT_DOUBLE_EQ(m.rowSum(0), 1.0);
    EXPECT_EQ(m.row(0).size(), 1u);
    m.validateStochastic();
}

TEST(TransitionMatrix, LeftMultiply)
{
    TransitionMatrix m(2);
    m.addTransition(0, 0, 0.5);
    m.addTransition(0, 1, 0.5);
    m.addTransition(1, 0, 1.0);
    const auto y = m.leftMultiply({1.0, 0.0});
    EXPECT_DOUBLE_EQ(y[0], 0.5);
    EXPECT_DOUBLE_EQ(y[1], 0.5);
}

TEST(Stationary, TwoStateChainHasKnownSolution)
{
    // P = [[1-a, a], [b, 1-b]] has pi = (b, a)/(a+b).
    const double a = 0.3;
    const double b = 0.1;
    TransitionMatrix m(2);
    m.addTransition(0, 0, 1 - a);
    m.addTransition(0, 1, a);
    m.addTransition(1, 0, b);
    m.addTransition(1, 1, 1 - b);

    const auto power = stationaryPowerIteration(m);
    EXPECT_NEAR(power.distribution[0], b / (a + b), 1e-10);
    EXPECT_NEAR(power.distribution[1], a / (a + b), 1e-10);
    EXPECT_LT(power.residual, 1e-10);

    const auto direct = stationaryDirect(m);
    EXPECT_NEAR(direct.distribution[0], b / (a + b), 1e-12);
    EXPECT_LT(direct.residual, 1e-12);
}

TEST(Stationary, SolversAgreeOnSwitchChains)
{
    for (const BufferType type :
         {BufferType::Fifo, BufferType::Damq, BufferType::Samq,
          BufferType::Safc}) {
        const Switch2x2Chain chain(type, 2, 0.6);
        const auto power = stationaryPowerIteration(chain.matrix());
        const auto direct = stationaryDirect(chain.matrix());
        ASSERT_EQ(power.distribution.size(),
                  direct.distribution.size());
        for (std::size_t i = 0; i < power.distribution.size(); ++i) {
            EXPECT_NEAR(power.distribution[i], direct.distribution[i],
                        1e-8)
                << bufferTypeName(type) << " state " << i;
        }
    }
}

// ------------------------------------------------------- state algebras

TEST(FifoState, EncodesOrderedQueues)
{
    FifoBufferState model(3);
    auto s = model.emptyState();
    EXPECT_EQ(model.totalPackets(s), 0u);
    EXPECT_FALSE(model.hasPacket(s, 0));

    s = model.add(s, 1); // queue: [1]
    s = model.add(s, 0); // queue: [1, 0]
    EXPECT_EQ(model.totalPackets(s), 2u);
    EXPECT_TRUE(model.hasPacket(s, 1));  // head is 1
    EXPECT_FALSE(model.hasPacket(s, 0)); // 0 is blocked behind it
    EXPECT_EQ(model.queueLength(s, 1), 2u);

    s = model.removeHead(s, 1); // queue: [0]
    EXPECT_TRUE(model.hasPacket(s, 0));
    EXPECT_EQ(model.totalPackets(s), 1u);

    s = model.add(s, 1);
    s = model.add(s, 1);
    EXPECT_FALSE(model.canAdd(s, 0)); // full at 3
}

TEST(FifoState, OrderIsPreservedThroughLongSequences)
{
    FifoBufferState model(6);
    auto s = model.emptyState();
    const unsigned pattern[] = {1, 0, 0, 1, 1, 0};
    for (const unsigned d : pattern)
        s = model.add(s, d);
    for (const unsigned d : pattern) {
        ASSERT_TRUE(model.hasPacket(s, d));
        s = model.removeHead(s, d);
    }
    EXPECT_EQ(model.totalPackets(s), 0u);
}

TEST(SharedCountState, PoolIsShared)
{
    SharedCountBufferState model(4);
    auto s = model.emptyState();
    for (int i = 0; i < 4; ++i)
        s = model.add(s, 1);
    EXPECT_EQ(model.queueLength(s, 1), 4u);
    EXPECT_FALSE(model.canAdd(s, 0)); // pool exhausted
    s = model.removeHead(s, 1);
    EXPECT_TRUE(model.canAdd(s, 0)); // freed slot serves any queue
}

TEST(PartitionedCountState, PartitionsAreSeparate)
{
    PartitionedCountBufferState model(4); // 2 per destination
    auto s = model.emptyState();
    s = model.add(s, 0);
    s = model.add(s, 0);
    EXPECT_FALSE(model.canAdd(s, 0));
    EXPECT_TRUE(model.canAdd(s, 1)); // other partition empty
}

TEST(StateModels, BothQueuesVisibleInMultiQueueStates)
{
    SharedCountBufferState model(4);
    auto s = model.emptyState();
    s = model.add(s, 0);
    s = model.add(s, 1);
    EXPECT_TRUE(model.hasPacket(s, 0));
    EXPECT_TRUE(model.hasPacket(s, 1)); // no head-of-line blocking
}

// -------------------------------------------------------- chain shapes

TEST(Switch2x2Chain, ReachableStateCounts)
{
    // The chain enumerates states *reachable from empty*.  For
    // small buffers that is the full product space — FIFO with k
    // slots has (2^(k+1) - 1)^2 joint states, DAMQ-2 has
    // ((k+1)(k+2)/2)^2 = 36 — but for larger buffers the most
    // congested corners are unreachable (departures precede
    // arrivals, so a buffer can never gain a packet in a cycle in
    // which it was forced to transmit).  The exact reachable counts
    // below are regression anchors; their correctness is backed by
    // the Monte-Carlo cross-check suite.
    EXPECT_EQ(Switch2x2Chain(BufferType::Fifo, 2, 0.5).numStates(),
              49u);
    EXPECT_EQ(Switch2x2Chain(BufferType::Fifo, 3, 0.5).numStates(),
              225u);
    EXPECT_EQ(Switch2x2Chain(BufferType::Damq, 2, 0.5).numStates(),
              36u);
    EXPECT_EQ(Switch2x2Chain(BufferType::Damq, 6, 0.5).numStates(),
              604u);
    EXPECT_EQ(Switch2x2Chain(BufferType::Samq, 2, 0.5).numStates(),
              15u);
    EXPECT_EQ(Switch2x2Chain(BufferType::Safc, 6, 0.5).numStates(),
              128u);
}

TEST(Switch2x2Chain, ZeroTrafficMeansNoDiscards)
{
    const auto result = analyzeDiscarding2x2(BufferType::Fifo, 2, 0.0);
    EXPECT_DOUBLE_EQ(result.discardProbability, 0.0);
    EXPECT_DOUBLE_EQ(result.throughput, 0.0);
}

TEST(Switch2x2Chain, DiscardsIncreaseWithTraffic)
{
    for (const BufferType type :
         {BufferType::Fifo, BufferType::Damq, BufferType::Samq,
          BufferType::Safc}) {
        double prev = -1.0;
        for (const double p : {0.25, 0.5, 0.75, 0.9, 0.99}) {
            const auto r = analyzeDiscarding2x2(type, 4, p);
            EXPECT_GE(r.discardProbability, prev)
                << bufferTypeName(type) << " at p=" << p;
            prev = r.discardProbability;
        }
    }
}

TEST(Switch2x2Chain, DiscardsDecreaseWithMoreSlots)
{
    for (const BufferType type :
         {BufferType::Fifo, BufferType::Damq}) {
        double prev = 1.0;
        for (const unsigned k : {2u, 3u, 4u, 5u, 6u}) {
            const auto r = analyzeDiscarding2x2(type, k, 0.9);
            EXPECT_LE(r.discardProbability, prev + 1e-12)
                << bufferTypeName(type) << " k=" << k;
            prev = r.discardProbability;
        }
    }
}

TEST(Switch2x2Chain, DamqDominatesEverythingAtEqualStorage)
{
    // Table 2's central claim.
    for (const double p : {0.5, 0.75, 0.9, 0.99}) {
        for (const unsigned k : {2u, 4u, 6u}) {
            const double damq =
                analyzeDiscarding2x2(BufferType::Damq, k, p)
                    .discardProbability;
            for (const BufferType other :
                 {BufferType::Fifo, BufferType::Samq,
                  BufferType::Safc}) {
                const double them =
                    analyzeDiscarding2x2(other, k, p)
                        .discardProbability;
                EXPECT_LE(damq, them + 1e-12)
                    << "DAMQ vs " << bufferTypeName(other) << " at p="
                    << p << " k=" << k;
            }
        }
    }
}

TEST(Switch2x2Chain, SafcNeverWorseThanSamq)
{
    // The fully connected data path can only help.
    for (const double p : {0.5, 0.75, 0.9, 0.99}) {
        for (const unsigned k : {2u, 4u, 6u}) {
            const double samq =
                analyzeDiscarding2x2(BufferType::Samq, k, p)
                    .discardProbability;
            const double safc =
                analyzeDiscarding2x2(BufferType::Safc, k, p)
                    .discardProbability;
            EXPECT_LE(safc, samq + 1e-9)
                << "p=" << p << " k=" << k;
        }
    }
}

TEST(Switch2x2Chain, Damq3BeatsFifo6)
{
    // The paper highlights that DAMQ with 3 slots discards no more
    // than FIFO with 6 at every traffic level (half the storage).
    for (const double p :
         {0.25, 0.5, 0.75, 0.8, 0.85, 0.9, 0.95, 0.99}) {
        const double damq3 =
            analyzeDiscarding2x2(BufferType::Damq, 3, p)
                .discardProbability;
        const double fifo6 =
            analyzeDiscarding2x2(BufferType::Fifo, 6, p)
                .discardProbability;
        EXPECT_LE(damq3, fifo6 + 5e-3) << "p=" << p;
    }
}

TEST(Switch2x2Chain, LightTrafficFavorsSharedPools)
{
    // At 25 % load with 2 slots, FIFO (shared pool) beats the
    // statically partitioned buffers — the paper calls this out.
    const double fifo =
        analyzeDiscarding2x2(BufferType::Fifo, 2, 0.25)
            .discardProbability;
    const double samq =
        analyzeDiscarding2x2(BufferType::Samq, 2, 0.25)
            .discardProbability;
    EXPECT_LT(fifo, samq);
}

TEST(Switch2x2Chain, ThroughputIsBoundedByDemand)
{
    const auto r = analyzeDiscarding2x2(BufferType::Damq, 4, 0.8);
    // Expected departures can't exceed expected accepted arrivals.
    EXPECT_LE(r.throughput, 2.0 * 0.8 + 1e-9);
    EXPECT_GT(r.throughput, 0.0);
    EXPECT_GT(r.meanOccupancy, 0.0);
}

TEST(Switch2x2Chain, OccupancyGrowsWithTraffic)
{
    for (const BufferType type :
         {BufferType::Fifo, BufferType::Damq}) {
        double prev = -1.0;
        for (const double p : {0.25, 0.5, 0.75, 0.9}) {
            const auto r = analyzeDiscarding2x2(type, 4, p);
            EXPECT_GT(r.meanOccupancy, prev)
                << bufferTypeName(type) << " p=" << p;
            prev = r.meanOccupancy;
        }
    }
}

TEST(Switch2x2Chain, FifoHoldsMorePacketsThanDamqWhenSaturated)
{
    // Head-of-line blocking keeps packets stuck in FIFO buffers:
    // higher occupancy, lower throughput.
    const auto fifo = analyzeDiscarding2x2(BufferType::Fifo, 4, 0.95);
    const auto damq = analyzeDiscarding2x2(BufferType::Damq, 4, 0.95);
    EXPECT_GT(fifo.meanOccupancy, damq.meanOccupancy);
    EXPECT_LT(fifo.throughput, damq.throughput);
}

TEST(Switch2x2Chain, ThroughputPlusDiscardsBalanceArrivals)
{
    // Flow conservation in steady state: accepted arrivals leave
    // eventually, so E[departures] = E[arrivals] - E[discards].
    for (const BufferType type :
         {BufferType::Fifo, BufferType::Samq, BufferType::Safc,
          BufferType::Damq}) {
        const double p = 0.9;
        const auto r = analyzeDiscarding2x2(type, 4, p);
        const double arrivals = 2.0 * p;
        EXPECT_NEAR(r.throughput,
                    arrivals * (1.0 - r.discardProbability), 1e-6)
            << bufferTypeName(type);
    }
}

TEST(Switch2x2Chain, SolverDiagnosticsAreHealthy)
{
    const auto r = analyzeDiscarding2x2(BufferType::Fifo, 4, 0.75);
    EXPECT_GT(r.solverIterations, 0u);
    EXPECT_LT(r.solverResidual, 1e-10);
}

} // namespace
} // namespace damq

/**
 * @file
 * Tests for the reserved-slot DAMQ (the 1992 follow-up to the
 * paper's hot-spot observation): admission rules, the
 * no-monopolization guarantee, Markov-layer behaviour, and
 * network-level integration.
 */

#include <gtest/gtest.h>

#include "markov/switch2x2.hh"
#include "network/network_sim.hh"
#include "queueing/buffer_factory.hh"
#include "queueing/damq_reserved_buffer.hh"

namespace damq {
namespace {

Packet
makePacket(PacketId id, PortId out)
{
    Packet p;
    p.id = id;
    p.outPort = out;
    p.lengthSlots = 1;
    return p;
}

TEST(DamqReserved, FactoryAndNames)
{
    EXPECT_EQ(tryBufferTypeFromString("damqr"), BufferType::DamqR);
    EXPECT_STREQ(bufferTypeName(BufferType::DamqR), "DAMQR");
    EXPECT_EQ(makeBuffer(BufferType::DamqR, 4, 8)->type(),
              BufferType::DamqR);
}

TEST(DamqReserved, OneQueueCannotMonopolizeThePool)
{
    DamqReservedBuffer buf(4, 8);
    // Queue 0 may take at most 8 - 3 = 5 slots while the other
    // three queues are empty.
    PacketId id = 0;
    while (buf.canAccept(0, 1))
        buf.push(makePacket(id++, 0));
    EXPECT_EQ(buf.queueLength(0), 5u);
    // Every other output still has its reserved slot.
    for (PortId out = 1; out < 4; ++out) {
        EXPECT_TRUE(buf.canAccept(out, 1)) << out;
        buf.push(makePacket(id++, out));
    }
    EXPECT_EQ(buf.usedSlots(), 8u);
    buf.debugValidate();
}

TEST(DamqReserved, ReservationReleasesWhenQueueBecomesBusy)
{
    DamqReservedBuffer buf(2, 4);
    // With queue 1 empty: queue 0 can use 3 of the 4 slots.
    buf.push(makePacket(1, 0));
    buf.push(makePacket(2, 0));
    buf.push(makePacket(3, 0));
    EXPECT_FALSE(buf.canAccept(0, 1));
    // Once queue 1 holds a packet its reservation is satisfied and
    // the last slot opens up for anyone.
    buf.push(makePacket(4, 1));
    EXPECT_EQ(buf.usedSlots(), 4u);
    buf.pop(0);
    EXPECT_TRUE(buf.canAccept(0, 1));
    EXPECT_TRUE(buf.canAccept(1, 1));
}

TEST(DamqReserved, BehavesLikeDamqWhenAllQueuesBusy)
{
    auto damq = makeBuffer(BufferType::Damq, 2, 6);
    auto damqr = makeBuffer(BufferType::DamqR, 2, 6);
    for (auto *buf : {damq.get(), damqr.get()}) {
        buf->push(makePacket(1, 0));
        buf->push(makePacket(2, 1));
    }
    // No queue is empty: identical admission from here on.
    for (PortId out : {0u, 0u, 1u, 1u}) {
        EXPECT_EQ(damq->canAccept(out, 1), damqr->canAccept(out, 1));
        damq->push(makePacket(9, out));
        damqr->push(makePacket(9, out));
    }
    EXPECT_FALSE(damqr->canAccept(0, 1));
}

TEST(DamqReserved, PopAndOrderSemanticsMatchDamq)
{
    DamqReservedBuffer buf(3, 6);
    buf.push(makePacket(1, 0));
    buf.push(makePacket(2, 1));
    buf.push(makePacket(3, 0));
    EXPECT_EQ(buf.pop(0).id, 1u);
    EXPECT_EQ(buf.pop(1).id, 2u);
    EXPECT_EQ(buf.pop(0).id, 3u);
    EXPECT_TRUE(buf.empty());
    buf.debugValidate();
}

TEST(DamqReserved, TooSmallCapacityIsFatal)
{
    EXPECT_EXIT(DamqReservedBuffer(4, 3),
                ::testing::ExitedWithCode(1),
                "at least one slot per output");
}

// ------------------------------------------------------------- Markov

TEST(DamqReservedMarkov, TradesBurstCapacityForAntiMonopolization)
{
    // The reservation costs a little burst capacity at moderate
    // load (slightly more discards than plain DAMQ) but pays off
    // at extreme load, where plain DAMQ lets one destination
    // monopolize the pool and idle the other output — exactly the
    // effect Section 4.2.1 describes for hot spots.  Crossover
    // sits near p ~ 0.93 for 4 slots.
    const double moderate_damq =
        analyzeDiscarding2x2(BufferType::Damq, 4, 0.75)
            .discardProbability;
    const double moderate_damqr =
        analyzeDiscarding2x2(BufferType::DamqR, 4, 0.75)
            .discardProbability;
    EXPECT_GE(moderate_damqr, moderate_damq);

    const auto extreme_damq =
        analyzeDiscarding2x2(BufferType::Damq, 4, 0.99);
    const auto extreme_damqr =
        analyzeDiscarding2x2(BufferType::DamqR, 4, 0.99);
    EXPECT_LT(extreme_damqr.discardProbability,
              extreme_damq.discardProbability);
    EXPECT_GT(extreme_damqr.throughput, extreme_damq.throughput);

    // And it never degenerates to a static partition.
    for (const double p : {0.75, 0.9, 0.99}) {
        const double damqr =
            analyzeDiscarding2x2(BufferType::DamqR, 4, p)
                .discardProbability;
        const double samq =
            analyzeDiscarding2x2(BufferType::Samq, 4, p)
                .discardProbability;
        EXPECT_LE(damqr, samq + 1e-9) << "p=" << p;
    }
}

TEST(DamqReservedMarkov, ChainIsSmallerThanPlainDamq)
{
    // The reserved slot prunes the monopolized corners of the
    // state space.
    const auto damq = Switch2x2Chain(BufferType::Damq, 4, 0.9);
    const auto damqr = Switch2x2Chain(BufferType::DamqR, 4, 0.9);
    EXPECT_LT(damqr.numStates(), damq.numStates());
}

// ------------------------------------------------------------ network

TEST(DamqReservedNetwork, ConservationHolds)
{
    NetworkConfig cfg;
    cfg.bufferType = BufferType::DamqR;
    cfg.offeredLoad = 0.6;
    cfg.common.seed = 5;
    NetworkSimulator sim(cfg);
    for (int i = 0; i < 600; ++i)
        sim.step();
    sim.debugValidate();
    const NetworkCounters &c = sim.lifetime();
    EXPECT_EQ(c.generated, c.delivered + c.discarded() +
                               sim.packetsInFlight() +
                               sim.packetsAtSources());
}

TEST(DamqReservedNetwork, UniformSaturationNearPlainDamq)
{
    NetworkConfig cfg;
    cfg.slotsPerBuffer = 8; // room for reservations + sharing
    cfg.offeredLoad = 1.0;
    cfg.common.warmupCycles = 500;
    cfg.common.measureCycles = 2500;
    cfg.common.seed = 6;

    cfg.bufferType = BufferType::Damq;
    const double damq =
        NetworkSimulator(cfg).run().deliveredThroughput;
    cfg.bufferType = BufferType::DamqR;
    const double damqr =
        NetworkSimulator(cfg).run().deliveredThroughput;
    EXPECT_NEAR(damqr, damq, 0.08);
    EXPECT_GT(damqr, 0.6);
}

} // namespace
} // namespace damq

/**
 * @file
 * Tests for the saturation-sweep driver: curve shape (flat then
 * wall), the knee's location relative to measureSaturation, and
 * helper consistency.
 */

#include <gtest/gtest.h>

#include "network/saturation.hh"

namespace damq {
namespace {

NetworkConfig
config(BufferType type)
{
    NetworkConfig cfg;
    cfg.bufferType = type;
    cfg.slotsPerBuffer = 4;
    cfg.common.seed = 2718;
    cfg.common.warmupCycles = 400;
    cfg.common.measureCycles = 2500;
    return cfg;
}

TEST(Saturation, CurveHasTheClassicShape)
{
    const auto curve = sweepLoads(
        config(BufferType::Damq),
        {0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.8, 1.0});
    // Below saturation delivered tracks offered...
    for (std::size_t i = 0; i < 5; ++i) {
        EXPECT_NEAR(curve[i].deliveredThroughput,
                    curve[i].offeredLoad, 0.03);
    }
    // ...latency rises monotonically (within noise)...
    for (std::size_t i = 1; i < curve.size(); ++i) {
        EXPECT_GT(curve[i].avgLatencyClocks,
                  curve[i - 1].avgLatencyClocks * 0.97);
    }
    // ...and delivered throughput plateaus at the end.
    EXPECT_NEAR(curve[6].deliveredThroughput,
                curve[7].deliveredThroughput, 0.03);
}

TEST(Saturation, MeasureMatchesTheSweepPlateau)
{
    const NetworkConfig cfg = config(BufferType::Fifo);
    const SaturationSummary sat = measureSaturation(cfg);
    const auto curve = sweepLoads(cfg, {1.0});
    EXPECT_NEAR(sat.saturationThroughput,
                curve[0].deliveredThroughput, 0.02);
}

TEST(Saturation, LatencyAtLoadAgreesWithSweep)
{
    const NetworkConfig cfg = config(BufferType::Damq);
    const double direct = latencyAtLoad(cfg, 0.3);
    const auto curve = sweepLoads(cfg, {0.3});
    // Same seed, same configuration: identical runs.
    EXPECT_DOUBLE_EQ(direct, curve[0].avgLatencyClocks);
}

TEST(Saturation, TailProxyIsAboveTheMean)
{
    const auto curve = sweepLoads(config(BufferType::Fifo), {0.45});
    EXPECT_GT(curve[0].p99LatencyClocks, curve[0].avgLatencyClocks);
}

} // namespace
} // namespace damq

/**
 * @file
 * Unit tests for the traffic patterns: distributional checks for
 * the stochastic ones, algebraic checks for the permutations.
 */

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "common/random.hh"
#include "network/traffic.hh"

namespace damq {
namespace {

TEST(UniformTraffic, CoversAllDestinationsEvenly)
{
    UniformTraffic pattern(16);
    Random rng(1);
    std::vector<int> counts(16, 0);
    const int n = 160000;
    for (int i = 0; i < n; ++i)
        ++counts[pattern.destinationFor(3, rng)];
    for (const int c : counts)
        EXPECT_NEAR(c, n / 16, n / 16 / 10); // within 10 %
}

TEST(HotSpotTraffic, HotNodeGetsItsFraction)
{
    HotSpotTraffic pattern(64, 0.05, 0);
    Random rng(2);
    const int n = 400000;
    int hot = 0;
    for (int i = 0; i < n; ++i)
        hot += pattern.destinationFor(7, rng) == 0 ? 1 : 0;
    // P(dest 0) = 0.05 + 0.95/64 ~ 0.0648.
    EXPECT_NEAR(static_cast<double>(hot) / n, 0.0648, 0.003);
}

TEST(HotSpotTraffic, ZeroFractionDegeneratesToUniform)
{
    HotSpotTraffic pattern(64, 0.0, 0);
    Random rng(3);
    const int n = 200000;
    int hot = 0;
    for (int i = 0; i < n; ++i)
        hot += pattern.destinationFor(7, rng) == 0 ? 1 : 0;
    EXPECT_NEAR(static_cast<double>(hot) / n, 1.0 / 64, 0.003);
}

TEST(BitReversalTraffic, IsAnInvolution)
{
    BitReversalTraffic pattern(64);
    Random rng(4);
    for (NodeId src = 0; src < 64; ++src) {
        const NodeId once = pattern.destinationFor(src, rng);
        EXPECT_EQ(pattern.destinationFor(once, rng), src);
    }
}

TEST(BitReversalTraffic, KnownValues)
{
    BitReversalTraffic pattern(64); // 6 bits
    Random rng(4);
    EXPECT_EQ(pattern.destinationFor(0, rng), 0u);
    EXPECT_EQ(pattern.destinationFor(1, rng), 32u);  // 000001 -> 100000
    EXPECT_EQ(pattern.destinationFor(63, rng), 63u);
    EXPECT_EQ(pattern.destinationFor(0b101100, rng), 0b001101u);
}

TEST(PermutationTraffic, IsABijection)
{
    PermutationTraffic pattern(64, 7);
    Random rng(5);
    std::set<NodeId> image;
    for (NodeId src = 0; src < 64; ++src)
        image.insert(pattern.destinationFor(src, rng));
    EXPECT_EQ(image.size(), 64u);
}

TEST(PermutationTraffic, SeedSelectsThePermutation)
{
    PermutationTraffic a(64, 7);
    PermutationTraffic b(64, 7);
    PermutationTraffic c(64, 8);
    Random rng(6);
    bool any_diff = false;
    for (NodeId src = 0; src < 64; ++src) {
        EXPECT_EQ(a.destinationFor(src, rng),
                  b.destinationFor(src, rng));
        any_diff = any_diff || a.destinationFor(src, rng) !=
                                   c.destinationFor(src, rng);
    }
    EXPECT_TRUE(any_diff);
}

TEST(TransposeTraffic, SwapsCoordinates)
{
    TransposeTraffic pattern(8);
    Random rng(7);
    // (x, y) = (3, 5) is node 43 on an 8-wide grid; its transpose
    // (5, 3) is node 29.
    EXPECT_EQ(pattern.destinationFor(5 * 8 + 3, rng),
              static_cast<NodeId>(3 * 8 + 5));
    // Diagonal nodes map to themselves.
    EXPECT_EQ(pattern.destinationFor(2 * 8 + 2, rng), 18u);
    // Involution.
    for (NodeId src = 0; src < 64; ++src) {
        const NodeId once = pattern.destinationFor(src, rng);
        EXPECT_EQ(pattern.destinationFor(once, rng), src);
    }
}

TEST(TrafficFactory, BuildsByName)
{
    EXPECT_EQ(makeTraffic("uniform", 64)->name(), "uniform");
    EXPECT_EQ(makeTraffic("hotspot", 64)->name(), "hotspot");
    EXPECT_EQ(makeTraffic("bitrev", 64)->name(), "bitrev");
    EXPECT_EQ(makeTraffic("permutation", 64, 3)->name(),
              "permutation");
}

} // namespace
} // namespace damq

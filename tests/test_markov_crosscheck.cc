/**
 * @file
 * Cross-validation: the exact Markov analysis and the Monte-Carlo
 * simulator implement the same 2x2 long-clock switch, so their
 * discard probabilities and throughputs must agree within
 * statistical error.  This guards both the chain builder's
 * enumeration of randomness and the arbitration rules.
 */

#include <gtest/gtest.h>

#include <tuple>

#include "markov/monte_carlo.hh"
#include "markov/switch2x2.hh"

namespace damq {
namespace {

class CrossCheck
    : public ::testing::TestWithParam<
          std::tuple<BufferType, unsigned, double>>
{
};

TEST_P(CrossCheck, MarkovMatchesMonteCarlo)
{
    const auto [type, slots, traffic] = GetParam();

    const Markov2x2Result exact =
        analyzeDiscarding2x2(type, slots, traffic);
    const MonteCarlo2x2Result sampled = simulateDiscarding2x2(
        type, slots, traffic, /*cycles=*/400000, /*warmup=*/10000,
        /*seed=*/2024);

    // Discard probabilities: absolute tolerance scaled to the
    // binomial standard error plus a little slack.
    const double tolerance = 0.004;
    EXPECT_NEAR(exact.discardProbability, sampled.discardProbability,
                tolerance)
        << bufferTypeName(type) << " slots=" << slots
        << " p=" << traffic;

    EXPECT_NEAR(exact.throughput, sampled.throughput, 0.01)
        << bufferTypeName(type) << " slots=" << slots
        << " p=" << traffic;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, CrossCheck,
    ::testing::Values(
        std::make_tuple(BufferType::Fifo, 2, 0.75),
        std::make_tuple(BufferType::Fifo, 4, 0.90),
        std::make_tuple(BufferType::Fifo, 6, 0.99),
        std::make_tuple(BufferType::Damq, 2, 0.75),
        std::make_tuple(BufferType::Damq, 4, 0.90),
        std::make_tuple(BufferType::Damq, 6, 0.99),
        std::make_tuple(BufferType::Samq, 2, 0.75),
        std::make_tuple(BufferType::Samq, 4, 0.90),
        std::make_tuple(BufferType::Samq, 6, 0.99),
        std::make_tuple(BufferType::Safc, 2, 0.75),
        std::make_tuple(BufferType::Safc, 4, 0.90),
        std::make_tuple(BufferType::Safc, 6, 0.99),
        std::make_tuple(BufferType::Fifo, 3, 0.50),
        std::make_tuple(BufferType::Damq, 5, 0.85)),
    [](const ::testing::TestParamInfo<
        std::tuple<BufferType, unsigned, double>> &info) {
        return std::string(bufferTypeName(std::get<0>(info.param))) +
               "_k" + std::to_string(std::get<1>(info.param)) +
               "_p" +
               std::to_string(
                   static_cast<int>(std::get<2>(info.param) * 100));
    });

} // namespace
} // namespace damq

/**
 * @file
 * Tests for the sweep-execution subsystem: SweepRunner ordering and
 * error handling, deriveTaskSeed, the JSON/CSV result sinks, and —
 * the load-bearing guarantee — that a Table 4 style sweep produces
 * byte-identical JSON and text at 1, 2, and 8 worker threads, and
 * that those results match direct sequential simulator calls.
 */

#include <atomic>
#include <chrono>
#include <cmath>
#include <set>
#include <thread>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.hh"
#include "network/saturation.hh"
#include "common/csv_writer.hh"
#include "common/json_writer.hh"
#include "runner/network_sweep.hh"
#include "runner/sweep_runner.hh"
#include "runner/table_benches.hh"

namespace damq {
namespace {

// ---------------------------------------------------------------
// SweepRunner
// ---------------------------------------------------------------

TEST(SweepRunner, ResultsComeBackInTaskOrder)
{
    for (const unsigned threads : {1u, 2u, 8u}) {
        SweepRunner runner(threads);
        const std::vector<int> out = runner.map(
            100, [](std::size_t i) { return static_cast<int>(i * i); });
        ASSERT_EQ(out.size(), 100u);
        for (std::size_t i = 0; i < out.size(); ++i)
            EXPECT_EQ(out[i], static_cast<int>(i * i));
    }
}

TEST(SweepRunner, EveryIndexRunsExactlyOnce)
{
    SweepRunner runner(8);
    std::atomic<int> calls{0};
    const std::vector<std::size_t> out =
        runner.map(64, [&calls](std::size_t i) {
            calls.fetch_add(1);
            return i;
        });
    EXPECT_EQ(calls.load(), 64);
    std::set<std::size_t> seen(out.begin(), out.end());
    EXPECT_EQ(seen.size(), 64u);
}

TEST(SweepRunner, ZeroAndOneTaskCountsWork)
{
    SweepRunner runner(4);
    EXPECT_TRUE(
        runner.map(0, [](std::size_t) { return 1; }).empty());
    const auto one = runner.map(1, [](std::size_t) { return 7; });
    ASSERT_EQ(one.size(), 1u);
    EXPECT_EQ(one[0], 7);
}

TEST(SweepRunner, ZeroThreadsClampsToOne)
{
    SweepRunner runner(0);
    EXPECT_EQ(runner.threads(), 1u);
}

TEST(SweepRunner, TaskExceptionIsRethrownAfterTheSweep)
{
    for (const unsigned threads : {1u, 4u}) {
        SweepRunner runner(threads);
        EXPECT_THROW(
            runner.map(16,
                       [](std::size_t i) {
                           if (i == 7)
                               throw std::runtime_error("task 7");
                           return i;
                       }),
            std::runtime_error);
    }
}

TEST(SweepRunner, PerfCountersCoverEveryTask)
{
    SweepRunner runner(2);
    const auto cycles_of = +[](const std::uint64_t &r) { return r; };
    const auto out = runner.map(
        10, [](std::size_t i) { return std::uint64_t(1000 + i); },
        cycles_of);
    ASSERT_EQ(out.size(), 10u);
    ASSERT_EQ(runner.taskPerf().size(), 10u);
    for (std::size_t i = 0; i < 10; ++i) {
        EXPECT_GE(runner.taskPerf()[i].wallSeconds, 0.0);
        EXPECT_EQ(runner.taskPerf()[i].simCycles, 1000 + i);
    }
    EXPECT_GE(runner.wallSeconds(), 0.0);
}

// ---------------------------------------------------------------
// SweepRunner::mapGuarded
// ---------------------------------------------------------------

TEST(MapGuarded, CleanSweepMatchesMapWithOkOutcomes)
{
    SweepRunner runner(4);
    GuardPolicy policy;
    const auto out = runner.mapGuarded(
        20, [](std::size_t i) { return static_cast<int>(i + 1); },
        policy);
    ASSERT_EQ(out.size(), 20u);
    ASSERT_EQ(runner.taskOutcomes().size(), 20u);
    for (std::size_t i = 0; i < out.size(); ++i) {
        ASSERT_TRUE(out[i].has_value());
        EXPECT_EQ(*out[i], static_cast<int>(i + 1));
        EXPECT_TRUE(runner.taskOutcomes()[i].ok());
        EXPECT_EQ(runner.taskOutcomes()[i].attempts, 1u);
    }
}

TEST(MapGuarded, FailingTaskIsRetriedThenReportedWithoutPoisoning)
{
    for (const unsigned threads : {1u, 4u}) {
        SweepRunner runner(threads);
        GuardPolicy policy;
        policy.maxAttempts = 3;
        std::atomic<int> calls_to_seven{0};
        const auto out = runner.mapGuarded(
            16,
            [&calls_to_seven](std::size_t i) {
                if (i == 7) {
                    calls_to_seven.fetch_add(1);
                    throw std::runtime_error("task 7 is cursed");
                }
                return i;
            },
            policy);

        // The casualty leaves an empty slot with its diagnosis...
        EXPECT_FALSE(out[7].has_value());
        const TaskOutcome &cursed = runner.taskOutcomes()[7];
        EXPECT_EQ(cursed.status, TaskStatus::Failed);
        EXPECT_EQ(cursed.attempts, 3u);
        EXPECT_EQ(calls_to_seven.load(), 3);
        EXPECT_NE(cursed.error.find("cursed"), std::string::npos);

        // ...and every other task's result survives.
        for (std::size_t i = 0; i < 16; ++i) {
            if (i == 7)
                continue;
            ASSERT_TRUE(out[i].has_value()) << i;
            EXPECT_EQ(*out[i], i);
            EXPECT_TRUE(runner.taskOutcomes()[i].ok());
        }
    }
}

TEST(MapGuarded, HungTaskTimesOutAndTheSweepMovesOn)
{
    SweepRunner runner(2);
    GuardPolicy policy;
    policy.taskTimeoutSeconds = 0.05;
    policy.maxAttempts = 2; // timeouts must NOT be retried

    // The hung attempt keeps running detached; everything it
    // touches must outlive the sweep, hence static state.
    static std::atomic<bool> release{false};
    static std::atomic<int> hung_calls{0};
    const auto out = runner.mapGuarded(
        8,
        [](std::size_t i) {
            if (i == 3) {
                hung_calls.fetch_add(1);
                while (!release.load())
                    std::this_thread::sleep_for(
                        std::chrono::milliseconds(1));
            }
            return static_cast<int>(i);
        },
        policy);

    EXPECT_FALSE(out[3].has_value());
    EXPECT_EQ(runner.taskOutcomes()[3].status, TaskStatus::TimedOut);
    EXPECT_EQ(hung_calls.load(), 1);
    for (std::size_t i = 0; i < 8; ++i) {
        if (i == 3)
            continue;
        ASSERT_TRUE(out[i].has_value()) << i;
        EXPECT_EQ(runner.taskOutcomes()[i].status, TaskStatus::Ok);
    }
    release.store(true); // let the detached attempt finish
}

// ---------------------------------------------------------------
// deriveTaskSeed
// ---------------------------------------------------------------

TEST(DeriveTaskSeed, DeterministicAndDistinctPerIndex)
{
    std::set<std::uint64_t> seen;
    for (std::uint64_t i = 0; i < 1000; ++i) {
        const std::uint64_t seed = deriveTaskSeed(88, i);
        EXPECT_EQ(seed, deriveTaskSeed(88, i));
        seen.insert(seed);
    }
    EXPECT_EQ(seen.size(), 1000u);
    EXPECT_NE(deriveTaskSeed(88, 0), deriveTaskSeed(89, 0));
}

// ---------------------------------------------------------------
// JsonWriter
// ---------------------------------------------------------------

TEST(JsonWriter, NestedDocumentWithStableFormatting)
{
    std::ostringstream out;
    JsonWriter json(out);
    json.beginObject();
    json.field("name", "sweep");
    json.field("count", 3);
    json.field("ok", true);
    json.key("values");
    json.beginArray();
    json.value(1.5);
    json.null();
    json.endArray();
    json.endObject();

    EXPECT_EQ(out.str(), "{\n"
                         "  \"name\": \"sweep\",\n"
                         "  \"count\": 3,\n"
                         "  \"ok\": true,\n"
                         "  \"values\": [\n"
                         "    1.5,\n"
                         "    null\n"
                         "  ]\n"
                         "}\n");
}

TEST(JsonWriter, EscapesStringsAndMapsNonFiniteToNull)
{
    std::ostringstream out;
    JsonWriter json(out);
    json.beginObject();
    json.field("text", "a\"b\\c\nd");
    json.field("nan", std::nan(""));
    json.endObject();

    EXPECT_NE(out.str().find("\"a\\\"b\\\\c\\nd\""), std::string::npos);
    EXPECT_NE(out.str().find("\"nan\": null"), std::string::npos);
}

TEST(JsonWriter, DoublesRoundTripAtFullPrecision)
{
    const double value = 41.0 / 3.0;
    EXPECT_EQ(std::stod(formatJsonNumber(value)), value);
    EXPECT_EQ(formatJsonNumber(std::nan("")), "null");
}

// ---------------------------------------------------------------
// CsvWriter
// ---------------------------------------------------------------

TEST(CsvWriter, QuotesOnlyWhenNeeded)
{
    std::ostringstream out;
    CsvWriter csv(out);
    csv.header({"a", "b", "c"});
    csv.row({"plain", "with,comma", "with\"quote"});

    EXPECT_EQ(out.str(), "a,b,c\n"
                         "plain,\"with,comma\",\"with\"\"quote\"\n");
}

// ---------------------------------------------------------------
// Sweeps: parallel == sequential, bit for bit
// ---------------------------------------------------------------

/** A Table 4 shrunk to run in well under a second. */
Table4Options
smallTable4()
{
    Table4Options options;
    options.base.numPorts = 16;
    options.base.common.warmupCycles = 200;
    options.base.common.measureCycles = 1000;
    options.loads = {0.25, 0.50};
    options.types = {BufferType::Fifo, BufferType::Damq};
    return options;
}

std::string
table4JsonText(const Table4Data &data)
{
    std::ostringstream out;
    JsonWriter json(out);
    json.beginObject();
    writeTable4Json(json, data);
    json.endObject();
    return out.str();
}

TEST(NetworkSweep, Table4IsByteIdenticalAcrossThreadCounts)
{
    SweepRunner sequential(1);
    const Table4Data base = runTable4(sequential, smallTable4());
    const std::string base_json = table4JsonText(base);
    const std::string base_text = renderTable4Text(base);
    EXPECT_FALSE(base_json.empty());

    for (const unsigned threads : {2u, 8u}) {
        SweepRunner runner(threads);
        const Table4Data data = runTable4(runner, smallTable4());
        EXPECT_EQ(table4JsonText(data), base_json)
            << "JSON diverged at " << threads << " threads";
        EXPECT_EQ(renderTable4Text(data), base_text)
            << "text diverged at " << threads << " threads";
    }
}

TEST(NetworkSweep, Table4MatchesDirectSequentialCalls)
{
    const Table4Options options = smallTable4();
    SweepRunner runner(8);
    const Table4Data data = runTable4(runner, options);

    ASSERT_EQ(data.rows.size(), options.types.size());
    for (std::size_t t = 0; t < options.types.size(); ++t) {
        NetworkConfig cfg = options.base;
        cfg.bufferType = options.types[t];
        const Table4Row &row = data.rows[t];
        ASSERT_EQ(row.latencyClocks.size(), options.loads.size());
        for (std::size_t l = 0; l < options.loads.size(); ++l) {
            EXPECT_EQ(row.latencyClocks[l],
                      latencyAtLoad(cfg, options.loads[l]));
        }
        const SaturationSummary sat = measureSaturation(cfg);
        EXPECT_EQ(row.saturatedLatencyClocks,
                  sat.saturatedLatencyClocks);
        EXPECT_EQ(row.saturationThroughput,
                  sat.saturationThroughput);
    }
}

TEST(NetworkSweep, MeshSweepMatchesDirectRun)
{
    MeshConfig cfg;
    cfg.width = 4;
    cfg.height = 4;
    cfg.bufferType = BufferType::Damq;
    cfg.slotsPerBuffer = 5;
    cfg.common.seed = 99;
    cfg.common.warmupCycles = 100;
    cfg.common.measureCycles = 500;

    SweepRunner runner(2);
    const std::vector<MeshTask> tasks = {
        {"damq@0.2", atLoad(cfg, 0.2)},
        {"damq@0.4", atLoad(cfg, 0.4)},
    };
    const std::vector<MeshResult> swept =
        runMeshSweep(runner, tasks);
    ASSERT_EQ(swept.size(), 2u);

    for (std::size_t i = 0; i < tasks.size(); ++i) {
        const MeshResult direct =
            MeshSimulator(tasks[i].config).run();
        EXPECT_EQ(swept[i].latencyCycles.mean(),
                  direct.latencyCycles.mean());
        EXPECT_EQ(swept[i].deliveredThroughput,
                  direct.deliveredThroughput);
    }
    EXPECT_EQ(taskLabels(tasks),
              (std::vector<std::string>{"damq@0.2", "damq@0.4"}));
}

} // namespace
} // namespace damq

/**
 * @file
 * Tests for the virtual-channel layer: QueueKey/QueueLayout
 * addressing, the dateline VC assignment on torus rings, the
 * shared-pool escape-slot rule, per-(output, VC) FIFO order, the
 * one-grant-per-physical-output arbitration rule, and the headline
 * property — a *blocking* torus at saturation runs 50k cycles with
 * the deadlock watchdog armed and never trips it.
 */

#include <gtest/gtest.h>

#include "fault/invariant_auditor.hh"
#include "network/core/grid_topology.hh"
#include "network/core/vc_policy.hh"
#include "network/torus_sim.hh"
#include "queueing/buffer_factory.hh"
#include "switchsim/switch_model.hh"

namespace damq {
namespace {

// ------------------------------------------------------- addressing

TEST(QueueKeyTest, ImplicitFromPortIdIsVcZero)
{
    const QueueKey key = PortId{3};
    EXPECT_EQ(key.out, 3u);
    EXPECT_EQ(key.vc, 0u);
    EXPECT_TRUE(key.valid());
    EXPECT_FALSE(kInvalidQueue.valid());
}

TEST(QueueLayoutTest, SingleVcFlatIndexIsTheOutputPort)
{
    const QueueLayout layout(5); // implicit: one VC
    EXPECT_EQ(layout.vcs, 1u);
    EXPECT_EQ(layout.numQueues(), 5u);
    for (PortId out = 0; out < 5; ++out) {
        EXPECT_EQ(layout.flatten(out), out);
        EXPECT_EQ(layout.unflatten(out), QueueKey{out});
    }
}

TEST(QueueLayoutTest, FlattenUnflattenRoundTripsOutMajor)
{
    const QueueLayout layout(5, 2);
    EXPECT_EQ(layout.numQueues(), 10u);
    std::uint32_t flat = 0;
    for (PortId out = 0; out < 5; ++out) {
        for (VcId vc = 0; vc < 2; ++vc, ++flat) {
            const QueueKey key{out, vc};
            EXPECT_TRUE(layout.contains(key));
            EXPECT_EQ(layout.flatten(key), flat);
            EXPECT_EQ(layout.unflatten(flat), key);
        }
    }
    EXPECT_FALSE(layout.contains(QueueKey{5, 0}));
    EXPECT_FALSE(layout.contains(QueueKey{0, 2}));
}

// ------------------------------------------------- dateline policy

/** A packet mid-flight for VcAllocator queries. */
Packet
inFlight(PortId in_port, VcId vc)
{
    Packet pkt;
    pkt.inPort = in_port;
    pkt.vc = vc;
    return pkt;
}

TEST(VcAllocatorTest, SingleVcAlwaysAssignsVcZero)
{
    core::TorusTopology torus(4, 4);
    const core::VcAllocator alloc(torus, VcPolicy::Dateline, 1);
    EXPECT_EQ(alloc.linkVc(inFlight(kWest, 0), 3, kEast),
              0u);
}

TEST(VcAllocatorTest, NonePolicyAssignsVcZero)
{
    core::TorusTopology torus(4, 4);
    const core::VcAllocator alloc(torus, VcPolicy::None, 2);
    // Node 3 = (3,0): east is the X wraparound, yet policy none
    // ignores the dateline.
    EXPECT_EQ(alloc.linkVc(inFlight(kWest, 0), 3, kEast),
              0u);
}

TEST(VcAllocatorTest, DatelineCrossingSwitchesToEscapeVc)
{
    core::TorusTopology torus(4, 4);
    const core::VcAllocator alloc(torus, VcPolicy::Dateline, 2);
    // Node 3 = (3,0): the eastward hop wraps around the X ring.
    EXPECT_EQ(alloc.linkVc(inFlight(kWest, 0), 3, kEast),
              1u);
    // Node 1 = (1,0): plain eastward hop, stay on VC 0.
    EXPECT_EQ(alloc.linkVc(inFlight(kWest, 0), 1, kEast),
              0u);
}

TEST(VcAllocatorTest, VcPersistsAlongRingAndResetsOnTurn)
{
    core::TorusTopology torus(4, 4);
    const core::VcAllocator alloc(torus, VcPolicy::Dateline, 2);
    // Continuing east after the wrap: still dimension 0, keep VC 1.
    EXPECT_EQ(alloc.linkVc(inFlight(kWest, 1), 0, kEast),
              1u);
    // Turning north leaves the X ring: restart at VC 0 (node 1 is
    // not on the Y dateline for a northward hop).
    EXPECT_EQ(alloc.linkVc(inFlight(kWest, 1), 1, kNorth),
              0u);
    // Fresh injection (no input port) starts at VC 0.
    EXPECT_EQ(alloc.linkVc(inFlight(kInvalidPort, 0), 1, kEast),
              0u);
}

TEST(VcAllocatorTest, MeshHasNoDateline)
{
    core::MeshTopology mesh(4, 4);
    const core::VcAllocator alloc(mesh, VcPolicy::Dateline, 2);
    // The mesh edge has no wraparound channel, so nothing crosses a
    // dateline and every assignment stays on the packet's ring VC.
    EXPECT_EQ(alloc.linkVc(inFlight(kWest, 0), 1, kEast),
              0u);
}

// ---------------------------------------------- escape-slot rule

TEST(EscapeSlotTest, SharedPoolKeepsOneSlotPerEmptyVc)
{
    // DAMQ pool of 10 slots over 5 outputs x 2 VCs.  VC 1 starts
    // empty, so VC 0 may fill at most 9 slots: the tenth is VC 1's
    // escape slot.
    const auto buffer = makeBuffer(BufferType::Damq,
                                   QueueLayout{5, 2}, 10);
    Packet pkt;
    pkt.lengthSlots = 1;
    pkt.outPort = 0;
    pkt.vc = 0;
    for (PacketId id = 0; id < 9; ++id) {
        pkt.id = id;
        ASSERT_TRUE(buffer->canAccept(QueueKey{0, 0}, 1));
        buffer->push(pkt);
    }
    EXPECT_EQ(buffer->usedSlots(), 9u);
    EXPECT_EQ(buffer->vcPackets(0), 9u);
    EXPECT_EQ(buffer->vcPackets(1), 0u);

    // VC 0 cannot take the escape slot...
    EXPECT_FALSE(buffer->canAccept(QueueKey{0, 0}, 1));
    EXPECT_FALSE(buffer->canAccept(QueueKey{3, 0}, 1));
    // ...but the empty VC 1 can, on any output.
    ASSERT_TRUE(buffer->canAccept(QueueKey{2, 1}, 1));
    pkt.id = 100;
    pkt.outPort = 2;
    pkt.vc = 1;
    buffer->push(pkt);
    EXPECT_EQ(buffer->usedSlots(), 10u);

    // Pool is now genuinely full for everyone.
    EXPECT_FALSE(buffer->canAccept(QueueKey{0, 0}, 1));
    EXPECT_FALSE(buffer->canAccept(QueueKey{2, 1}, 1));

    // Draining VC 1 re-establishes its escape slot: the freed slot
    // is *not* available to VC 0.
    buffer->pop(QueueKey{2, 1});
    EXPECT_EQ(buffer->vcPackets(1), 0u);
    EXPECT_FALSE(buffer->canAccept(QueueKey{0, 0}, 1));
    EXPECT_TRUE(buffer->canAccept(QueueKey{2, 1}, 1));
    buffer->debugValidate();
}

TEST(EscapeSlotTest, SingleVcLayoutHasNoEscapeSlots)
{
    const auto buffer = makeBuffer(BufferType::Damq,
                                   QueueLayout{5, 1}, 10);
    Packet pkt;
    pkt.lengthSlots = 1;
    pkt.outPort = 0;
    for (PacketId id = 0; id < 10; ++id) {
        pkt.id = id;
        ASSERT_TRUE(buffer->canAccept(QueueKey{0, 0}, 1));
        buffer->push(pkt);
    }
    EXPECT_EQ(buffer->usedSlots(), 10u); // the whole pool
}

TEST(EscapeSlotTest, PolicyLayerReproducesTheEscapeRule)
{
    // The escape-slot arithmetic now lives in the admission-policy
    // layer (admissionFeasible's guaranteeSlots term).  Replay the
    // SharedPoolKeepsOneSlotPerEmptyVc scenario through the raw
    // admit() surface and check the charged slots too — the policy
    // must be byte-identical to the historical rule, not merely
    // agree on this trace's accept bits by luck.
    const auto buffer = makeBuffer(BufferType::Damq,
                                   QueueLayout{5, 2}, 10);
    EXPECT_STREQ(buffer->admissionPolicy().name(), "static");
    Packet pkt;
    pkt.lengthSlots = 1;
    pkt.outPort = 0;
    pkt.vc = 0;
    for (PacketId id = 0; id < 9; ++id) {
        pkt.id = id;
        const AdmissionDecision d = buffer->admit(QueueKey{0, 0}, 1, 0);
        ASSERT_TRUE(d.accept);
        EXPECT_EQ(d.slotsCharged, 1u);
        buffer->push(pkt);
    }
    // Slot 10 is VC 1's escape slot: infeasible for VC 0 (the
    // guarantee term), feasible for the empty VC 1.
    EXPECT_FALSE(buffer->admit(QueueKey{0, 0}, 1, 0).accept);
    EXPECT_TRUE(buffer->admit(QueueKey{2, 1}, 1, 0).accept);
    // Admission never depends on the traffic class under the static
    // policy — classes ride along, they do not decide.
    EXPECT_FALSE(buffer->admit(QueueKey{0, 0}, 1, 3).accept);
    EXPECT_TRUE(buffer->admit(QueueKey{2, 1}, 1, 3).accept);
}

// --------------------------------------------- arbitration with VCs

TEST(ArbiterVcTest, OneGrantPerPhysicalOutputAcrossVcs)
{
    // Two inputs each hold a packet for output 0, on different VCs.
    // A physical output carries one packet per cycle, so exactly one
    // of the two may be granted.
    SwitchModel sw(4, BufferType::Damq, /*slots_per_buffer=*/8,
                   ArbitrationPolicy::Smart, 8, /*num_vcs=*/2);
    Packet pkt;
    pkt.lengthSlots = 1;
    pkt.outPort = 0;
    pkt.id = 1;
    pkt.vc = 0;
    ASSERT_TRUE(sw.tryReceive(0, pkt));
    pkt.id = 2;
    pkt.vc = 1;
    ASSERT_TRUE(sw.tryReceive(1, pkt));

    const auto always = [](PortId, QueueKey, const Packet &) {
        return true;
    };
    const GrantList grants = sw.arbitrate(always);
    ASSERT_EQ(grants.size(), 1u);
    EXPECT_EQ(grants[0].output, 0u);
    EXPECT_TRUE(auditGrantLegality(grants, 4, 4, 1, 2).empty());
    // Both queued packets drain over two cycles.
    EXPECT_EQ(sw.popGranted(grants).size(), 1u);
    const GrantList second = sw.arbitrate(always);
    ASSERT_EQ(second.size(), 1u);
    EXPECT_TRUE(auditGrantLegality(second, 4, 4, 1, 2).empty());
    EXPECT_EQ(sw.popGranted(second).size(), 1u);
    EXPECT_EQ(sw.totalPackets(), 0u);
}

TEST(ArbiterVcTest, GrantOnUndeclaredVcIsReportedIllegal)
{
    GrantList grants;
    Grant g;
    g.input = 0;
    g.output = 1;
    g.vc = 1;
    grants.push_back(g);
    // Legal with 2 VCs declared, illegal with 1.
    EXPECT_TRUE(auditGrantLegality(grants, 4, 4, 1, 2).empty());
    EXPECT_FALSE(auditGrantLegality(grants, 4, 4, 1, 1).empty());
}

// ------------------------------------------- blocking torus at 1.0

TorusConfig
saturatedBlockingTorus()
{
    TorusConfig cfg; // defaults: blocking, 2 dateline VCs
    cfg.width = 4;
    cfg.height = 4;
    cfg.bufferType = BufferType::Damq;
    cfg.slotsPerBuffer = 10;
    cfg.offeredLoad = 1.0;
    cfg.common.seed = 2026;
    cfg.common.warmupCycles = 0;
    cfg.common.measureCycles = 50000;
    // Arm the watchdog: a wedged ring sits motionless for 1000
    // cycles and gets reported.
    cfg.common.watchdogStallCycles = 1000;
    return cfg;
}

TEST(BlockingTorusTest, SaturatedRunNeverTripsTheWatchdog)
{
    TorusConfig cfg = saturatedBlockingTorus();
    ASSERT_EQ(cfg.protocol, FlowControl::Blocking);
    ASSERT_EQ(cfg.common.vcs, 2u);
    TorusSimulator sim(cfg);
    const TorusResult result = sim.run();
    EXPECT_EQ(result.watchdogTrips, 0u);
    EXPECT_FALSE(sim.faultReport().watchdogFired);
    // Saturation means real forward progress, not a quiet wedge.
    EXPECT_GT(result.window.delivered, 10000u);
    EXPECT_EQ(result.window.discarded(), 0u); // no discards
    sim.debugValidate();
}

TEST(BlockingTorusTest, FifoOrderHoldsPerQueueUnderVcs)
{
    TorusConfig cfg = saturatedBlockingTorus();
    cfg.common.measureCycles = 2000;
    TorusSimulator sim(cfg);
    for (int cycle = 0; cycle < 2000; ++cycle)
        sim.step();
    // Packets from one source inside any (output, VC) queue must
    // still appear in increasing sequence order.
    std::vector<std::string> violations;
    for (NodeId node = 0; node < sim.numNodes(); ++node) {
        sim.switchAt(node).forEachBuffer(
            [&](PortId, const BufferModel &buffer) {
                EXPECT_EQ(buffer.numVcs(), 2u);
                const auto found = auditQueueFifoOrder(buffer);
                violations.insert(violations.end(), found.begin(),
                                  found.end());
            });
    }
    EXPECT_TRUE(violations.empty())
        << "first violation: " << violations.front();
}

TEST(BlockingTorusTest, SingleVcBlockingTorusCanWedgeButIsReported)
{
    // The historical failure mode the dateline fixes: with one VC
    // the same saturated blocking torus may form a ring cycle.  We
    // don't assert that it *does* deadlock (seed-dependent) — only
    // that the run completes and the watchdog verdict is reported
    // through the result, which is what the bench tables print.
    TorusConfig cfg = saturatedBlockingTorus();
    cfg.common.vcs = 1;
    cfg.slotsPerBuffer = 5;
    cfg.common.measureCycles = 20000;
    TorusSimulator sim(cfg);
    const TorusResult result = sim.run();
    EXPECT_EQ(result.watchdogTrips,
              sim.faultReport().watchdogFired ? 1u : 0u);
}

} // namespace
} // namespace damq

/**
 * @file
 * Invariant-audit tests: healthy buffers of every organization pass
 * their own checkInvariants(), each deliberately injected corruption
 * class is detected (slot leak, broken chain, double-owned slot, the
 * DAMQR reserved-slot guarantee), grant legality is enforced, and a
 * network-level audit names the faulty component and cycle.  The
 * deadlock watchdog fires on a wedged network with a deterministic
 * snapshot.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "fault/invariant_auditor.hh"
#include "fault/watchdog.hh"
#include "network/network_sim.hh"
#include "queueing/buffer_factory.hh"
#include "queueing/damq_buffer.hh"
#include "queueing/damq_reserved_buffer.hh"

namespace damq {
namespace {

Packet
makePacket(PacketId id, PortId out)
{
    Packet p;
    p.id = id;
    p.source = 0;
    p.dest = 0;
    p.outPort = out;
    p.lengthSlots = 1;
    return p;
}

bool
anyContains(const std::vector<std::string> &violations,
            const std::string &needle)
{
    for (const std::string &v : violations)
        if (v.find(needle) != std::string::npos)
            return true;
    return false;
}

// ------------------------------------------------- healthy buffers

TEST(InvariantAudit, HealthyBuffersOfEveryTypePass)
{
    for (const BufferType type :
         {BufferType::Fifo, BufferType::Samq, BufferType::Safc,
          BufferType::Damq, BufferType::DamqR}) {
        auto buf = makeBuffer(type, 4, 8);
        for (PacketId id = 0; id < 4; ++id) {
            const PortId out = static_cast<PortId>(id % 4);
            if (buf->canAccept(out, 1))
                buf->push(makePacket(id, out));
        }
        if (buf->queueLength(1) > 0)
            buf->pop(1);
        EXPECT_TRUE(buf->checkInvariants().empty())
            << bufferTypeName(type) << ": "
            << buf->checkInvariants().front();
    }
}

// --------------------------------------------- corruption detection

TEST(InvariantAudit, DamqSlotLeakIsDetected)
{
    DamqBuffer buf(4, 6);
    buf.push(makePacket(1, 0));
    ASSERT_TRUE(buf.checkInvariants().empty());

    ASSERT_TRUE(buf.faultLeakSlot());
    const auto violations = buf.checkInvariants();
    ASSERT_FALSE(violations.empty());
    EXPECT_TRUE(anyContains(violations, "leaked"))
        << violations.front();
}

TEST(InvariantAudit, DamqBrokenChainIsDetected)
{
    DamqBuffer buf(4, 6);
    buf.push(makePacket(1, 2));
    buf.push(makePacket(2, 2));
    buf.push(makePacket(3, 2));
    ASSERT_TRUE(buf.checkInvariants().empty());

    // Truncate output 2's chain: its head now points into the free
    // list, so one queued slot is double-owned and the chain no
    // longer reaches the tail register.
    buf.testCorruptNextPointer(0, 5);
    EXPECT_FALSE(buf.checkInvariants().empty());
}

TEST(InvariantAudit, DamqSelfLoopIsDetected)
{
    DamqBuffer buf(4, 6);
    buf.push(makePacket(1, 0));
    buf.push(makePacket(2, 0));
    buf.push(makePacket(3, 0));

    // A slot whose next pointer latched its own address: the walk
    // must terminate and report, not spin.
    buf.testCorruptNextPointer(1, 1);
    EXPECT_FALSE(buf.checkInvariants().empty());
}

TEST(InvariantAudit, DamqRReservedGuaranteeViolationIsDetected)
{
    DamqReservedBuffer buf(4, 8);
    ASSERT_TRUE(buf.checkInvariants().empty());

    // Leak slots until fewer remain free than there are empty
    // queues; the 1992 reserved-slot guarantee is now broken even
    // though the inner DAMQ structure stays consistent.
    std::uint32_t leaked = 0;
    while (buf.capacitySlots() - buf.usedSlots() >= 4 && leaked < 8) {
        ASSERT_TRUE(buf.faultLeakSlot());
        ++leaked;
    }
    const auto violations = buf.checkInvariants();
    ASSERT_FALSE(violations.empty());
    EXPECT_TRUE(anyContains(violations, "reserved-slot guarantee"))
        << violations.front();
}

TEST(InvariantAudit, FifoAndPartitionedLeaksAreDetected)
{
    for (const BufferType type :
         {BufferType::Fifo, BufferType::Samq, BufferType::Safc}) {
        auto buf = makeBuffer(type, 4, 8);
        ASSERT_TRUE(buf->checkInvariants().empty());
        ASSERT_TRUE(buf->faultLeakSlot()) << bufferTypeName(type);
        EXPECT_FALSE(buf->checkInvariants().empty())
            << bufferTypeName(type);
    }
}

// ------------------------------------------------- grant legality

TEST(InvariantAudit, LegalGrantsPass)
{
    const GrantList grants = {{0, 1}, {1, 0}, {2, 3}};
    EXPECT_TRUE(auditGrantLegality(grants, 4, 4, 1).empty());
}

TEST(InvariantAudit, DoubleGrantedOutputIsIllegal)
{
    const GrantList grants = {{0, 1}, {2, 1}};
    const auto violations = auditGrantLegality(grants, 4, 4, 1);
    ASSERT_FALSE(violations.empty());
    EXPECT_TRUE(anyContains(violations, "output 1"))
        << violations.front();
}

TEST(InvariantAudit, InputOverReadBandwidthIsIllegal)
{
    const GrantList grants = {{0, 1}, {0, 2}};
    EXPECT_FALSE(auditGrantLegality(grants, 4, 4, 1).empty());
    // SAFC has one read port per partition, so the same schedule is
    // legal at read bandwidth n.
    EXPECT_TRUE(auditGrantLegality(grants, 4, 4, 4).empty());
}

TEST(InvariantAudit, OutOfRangeGrantIsIllegal)
{
    const GrantList grants = {{5, 1}};
    EXPECT_FALSE(auditGrantLegality(grants, 4, 4, 1).empty());
}

// ------------------------------------- network-level fault audits

TEST(InvariantAudit, NetworkAuditCatchesInjectedSlotLeaks)
{
    NetworkConfig cfg;
    cfg.numPorts = 16;
    cfg.radix = 4;
    cfg.offeredLoad = 0.4;
    cfg.common.warmupCycles = 0;
    cfg.common.measureCycles = 500;
    cfg.common.faults.seed = 3;
    cfg.common.faults.slotLeakRate = 0.02;
    cfg.common.auditEveryCycles = 25;

    NetworkSimulator sim(cfg);
    sim.run();
    const FaultReport report = sim.faultReport();

    ASSERT_GT(report.injectedOf(FaultKind::SlotLeak), 0u);
    ASSERT_GT(report.auditViolations, 0u);
    // The diagnostic names the owning component and the audit cycle.
    ASSERT_FALSE(report.violationSamples.empty());
    const std::string &sample = report.violationSamples.front();
    EXPECT_NE(sample.find("cycle "), std::string::npos) << sample;
    EXPECT_NE(sample.find("stage"), std::string::npos) << sample;
    EXPECT_NE(sample.find("leaked"), std::string::npos) << sample;
}

TEST(InvariantAudit, WatchdogCatchesStuckArbiterWedge)
{
    NetworkConfig cfg;
    cfg.numPorts = 16;
    cfg.radix = 4;
    cfg.offeredLoad = 0.5;
    cfg.common.warmupCycles = 0;
    cfg.common.measureCycles = 300;
    cfg.common.faults.seed = 3;
    cfg.common.faults.arbiterStuckRate = 1.0; // every arbiter, every cycle
    cfg.common.watchdogStallCycles = 50;

    NetworkSimulator sim(cfg);
    sim.run();
    const FaultReport report = sim.faultReport();

    ASSERT_GT(report.injectedOf(FaultKind::ArbiterStuck), 0u);
    ASSERT_TRUE(report.watchdogFired);
    EXPECT_GE(report.watchdogFiredAt, 50u);
    // The diagnostic names a wedged component and embeds the
    // deterministic snapshot with both seeds.
    EXPECT_NE(report.watchdogDiagnostic.find("stage0.sw0"),
              std::string::npos)
        << report.watchdogDiagnostic;
    EXPECT_NE(report.watchdogDiagnostic.find("snapshot at cycle"),
              std::string::npos);
    EXPECT_NE(report.watchdogDiagnostic.find("fault seed"),
              std::string::npos);
}

TEST(InvariantAudit, SnapshotIsDeterministic)
{
    NetworkConfig cfg;
    cfg.numPorts = 16;
    cfg.radix = 4;
    cfg.offeredLoad = 0.5;

    NetworkSimulator a(cfg);
    NetworkSimulator b(cfg);
    for (int c = 0; c < 200; ++c) {
        a.step();
        b.step();
    }
    EXPECT_EQ(a.snapshotText(), b.snapshotText());
    EXPECT_NE(a.snapshotText().find("seed 1"), std::string::npos);
}

} // namespace
} // namespace damq

/**
 * @file
 * Stress and property tests for the byte/phase-accurate ComCoBB
 * model: randomized message storms over multi-chip topologies with
 * bit-exact delivery checks, per-circuit FIFO order, geometry
 * sweeps (2- to 8-port chips, small buffers), and long-run
 * linked-list invariants under continuous cut-through pressure.
 */

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "common/random.hh"
#include "microarch/micro_network.hh"

namespace damq {
namespace micro {
namespace {

std::vector<std::uint8_t>
randomPayload(Random &rng, std::size_t max_len = 255)
{
    std::vector<std::uint8_t> payload(1 + rng.below(max_len));
    for (auto &byte : payload)
        byte = static_cast<std::uint8_t>(rng.below(256));
    return payload;
}

TEST(MicroStress, MessageStormAcrossALine)
{
    // Four chips in a line; three circuits all flowing left to
    // right from chip 0's host to chip 3's host, interleaved.
    Tracer tracer;
    MicroNetwork net(&tracer);
    ComCobbChip &c0 = net.addChip("c0");
    ComCobbChip &c1 = net.addChip("c1");
    ComCobbChip &c2 = net.addChip("c2");
    ComCobbChip &c3 = net.addChip("c3");
    net.connect(c0, 0, c1, 1);
    net.connect(c1, 0, c2, 1);
    net.connect(c2, 0, c3, 1);
    HostEndpoint tx = net.attachHost(c0);
    HostEndpoint rx = net.attachHost(c3);

    for (const VcId vc : {1, 2, 3}) {
        net.programCircuit({{&c0, kProcessorPort, 0},
                            {&c1, 1, 0},
                            {&c2, 1, 0},
                            {&c3, 1, kProcessorPort}},
                           vc);
    }

    Random rng(777);
    std::map<VcId, std::vector<std::vector<std::uint8_t>>> sent;
    for (int m = 0; m < 30; ++m) {
        const VcId vc = static_cast<VcId>(1 + rng.below(3));
        auto payload = randomPayload(rng);
        sent[vc].push_back(payload);
        tx.injector->sendMessage(vc, payload);
    }

    net.run(30000);
    net.debugValidate();
    ASSERT_TRUE(tx.injector->idle());

    // Group received messages per circuit and compare in order:
    // messages on one virtual circuit must arrive FIFO and intact.
    std::map<VcId, std::vector<std::vector<std::uint8_t>>> got;
    for (const HostMessage &msg : rx.collector->received())
        got[msg.vc].push_back(msg.payload);
    ASSERT_EQ(got.size(), sent.size());
    for (const auto &[vc, payloads] : sent) {
        ASSERT_EQ(got[vc].size(), payloads.size())
            << "circuit " << unsigned{vc};
        for (std::size_t i = 0; i < payloads.size(); ++i)
            EXPECT_EQ(got[vc][i], payloads[i])
                << "circuit " << unsigned{vc} << " message " << i;
    }
}

TEST(MicroStress, CrossTrafficThroughOneRelay)
{
    // Star: four leaf chips all relaying through a hub, every leaf
    // sending to the next leaf (all traffic crosses the hub's
    // crossbar simultaneously).
    Tracer tracer;
    MicroNetwork net(&tracer);
    ComCobbChip &hub = net.addChip("hub");
    std::vector<ComCobbChip *> leaves;
    std::vector<HostEndpoint> hosts;
    for (int i = 0; i < 4; ++i) {
        leaves.push_back(&net.addChip("leaf" + std::to_string(i)));
        net.connect(*leaves[i], 0, hub, static_cast<PortId>(i));
        hosts.push_back(net.attachHost(*leaves[i]));
    }
    // Circuit for leaf i -> leaf (i+1)%4, header = 40+i.
    for (int i = 0; i < 4; ++i) {
        const int j = (i + 1) % 4;
        const VcId vc = static_cast<VcId>(40 + i);
        net.programCircuit({{leaves[i], kProcessorPort, 0},
                            {&hub, static_cast<PortId>(i),
                             static_cast<PortId>(j)},
                            {leaves[j], 0, kProcessorPort}},
                           vc);
    }

    Random rng(31);
    std::vector<std::vector<std::vector<std::uint8_t>>> sent(4);
    for (int round = 0; round < 10; ++round) {
        for (int i = 0; i < 4; ++i) {
            auto payload = randomPayload(rng, 96);
            sent[i].push_back(payload);
            hosts[i].injector->sendMessage(
                static_cast<VcId>(40 + i), payload);
        }
    }

    net.run(30000);
    net.debugValidate();

    for (int i = 0; i < 4; ++i) {
        const int j = (i + 1) % 4;
        const auto &received = hosts[j].collector->received();
        ASSERT_EQ(received.size(), sent[i].size()) << "leaf " << j;
        for (std::size_t m = 0; m < received.size(); ++m)
            EXPECT_EQ(received[m].payload, sent[i][m]);
    }
}

class GeometrySweep
    : public ::testing::TestWithParam<std::pair<PortId, unsigned>>
{
};

TEST_P(GeometrySweep, ChipsOfAnyGeometryDeliver)
{
    const auto [ports, slots] = GetParam();
    Tracer tracer;
    MicroNetwork net(&tracer);
    ComCobbChip &a = net.addChip("A", ports, slots);
    ComCobbChip &b = net.addChip("B", ports, slots);
    net.connect(a, 0, b, 0);
    // Hosts live on the last port of each chip.
    const PortId host_port = ports - 1;
    HostEndpoint tx = net.attachHost(a, host_port);
    HostEndpoint rx = net.attachHost(b, host_port);
    net.programCircuit({{&a, host_port, 0}, {&b, 0, host_port}}, 3);

    Random rng(ports * 100 + slots);
    std::vector<std::vector<std::uint8_t>> sent;
    for (int m = 0; m < 6; ++m) {
        auto payload = randomPayload(rng, 64);
        sent.push_back(payload);
        tx.injector->sendMessage(3, payload);
    }
    net.run(8000);
    net.debugValidate();

    ASSERT_EQ(rx.collector->received().size(), sent.size());
    for (std::size_t m = 0; m < sent.size(); ++m)
        EXPECT_EQ(rx.collector->received()[m].payload, sent[m]);
}

INSTANTIATE_TEST_SUITE_P(
    PortsAndSlots, GeometrySweep,
    ::testing::Values(std::pair<PortId, unsigned>{2, 4},
                      std::pair<PortId, unsigned>{3, 6},
                      std::pair<PortId, unsigned>{5, 12},
                      std::pair<PortId, unsigned>{5, 4},
                      std::pair<PortId, unsigned>{8, 8},
                      std::pair<PortId, unsigned>{8, 24}),
    [](const ::testing::TestParamInfo<std::pair<PortId, unsigned>>
           &info) {
        return "p" + std::to_string(info.param.first) + "_s" +
               std::to_string(info.param.second);
    });

TEST(MicroStress, TinyBufferForcesStoreAndForwardButNeverLoses)
{
    // 4-slot buffers hold exactly one maximum packet: heavy flow
    // control, zero loss tolerance.
    Tracer tracer;
    MicroNetwork net(&tracer);
    ComCobbChip &a = net.addChip("A", kComCobbPorts, 4);
    ComCobbChip &b = net.addChip("B", kComCobbPorts, 4);
    net.connect(a, 0, b, 0);
    HostEndpoint tx = net.attachHost(a);
    HostEndpoint rx = net.attachHost(b);
    net.programCircuit(
        {{&a, kProcessorPort, 0}, {&b, 0, kProcessorPort}}, 9);

    for (int m = 0; m < 12; ++m) {
        tx.injector->sendMessage(
            9, std::vector<std::uint8_t>(
                   200, static_cast<std::uint8_t>(m)));
    }
    net.run(40000);
    net.debugValidate();
    ASSERT_EQ(rx.collector->received().size(), 12u);
    for (int m = 0; m < 12; ++m) {
        EXPECT_EQ(rx.collector->received()[m].payload,
                  std::vector<std::uint8_t>(
                      200, static_cast<std::uint8_t>(m)));
    }
}

TEST(MicroStress, LongDuplexSoakKeepsInvariants)
{
    // Bidirectional traffic for a long stretch with periodic
    // invariant checks.
    Tracer tracer;
    MicroNetwork net(&tracer);
    ComCobbChip &a = net.addChip("A");
    ComCobbChip &b = net.addChip("B");
    net.connect(a, 0, b, 0);
    HostEndpoint host_a = net.attachHost(a);
    HostEndpoint host_b = net.attachHost(b);
    net.programCircuit(
        {{&a, kProcessorPort, 0}, {&b, 0, kProcessorPort}}, 1);
    net.programCircuit(
        {{&b, kProcessorPort, 0}, {&a, 0, kProcessorPort}}, 2);

    Random rng(99);
    std::size_t sent_a = 0;
    std::size_t sent_b = 0;
    for (int chunk = 0; chunk < 50; ++chunk) {
        if (rng.bernoulli(0.7)) {
            host_a.injector->sendMessage(1, randomPayload(rng, 128));
            ++sent_a;
        }
        if (rng.bernoulli(0.7)) {
            host_b.injector->sendMessage(2, randomPayload(rng, 128));
            ++sent_b;
        }
        net.run(400);
        net.debugValidate(); // linked lists stay sane throughout
    }
    net.run(5000);
    EXPECT_EQ(host_b.collector->received().size(), sent_a);
    EXPECT_EQ(host_a.collector->received().size(), sent_b);
}

} // namespace
} // namespace micro
} // namespace damq

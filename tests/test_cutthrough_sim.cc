/**
 * @file
 * Tests for the clock-granularity cut-through simulator: exact
 * unloaded latencies, packet conservation under both protocols,
 * mode and buffer-type orderings, and determinism.
 */

#include <gtest/gtest.h>

#include "network/cutthrough_sim.hh"

namespace damq {
namespace {

CutThroughConfig
baseConfig()
{
    CutThroughConfig cfg;
    cfg.numPorts = 64;
    cfg.radix = 4;
    cfg.bufferType = BufferType::Damq;
    cfg.slotsPerBuffer = 4;
    cfg.protocol = FlowControl::Blocking;
    cfg.mode = SwitchingMode::CutThrough;
    cfg.offeredLoad = 0.3;
    cfg.common.seed = 5150;
    cfg.common.warmupCycles = 3000;
    cfg.common.measureCycles = 15000;
    return cfg;
}

TEST(CutThroughSim, UnloadedLatencyIsThreeRPlusW)
{
    CutThroughConfig cfg = baseConfig();
    cfg.offeredLoad = 0.005; // almost empty network
    cfg.common.measureCycles = 60000;
    CutThroughSimulator sim(cfg);
    const CutThroughResult r = sim.run();
    ASSERT_GT(r.latencyClocks.count(), 0u);
    // 3 stages x 4 route clocks + 8 wire clocks = 20.
    EXPECT_DOUBLE_EQ(r.latencyClocks.min(), 20.0);
    EXPECT_LT(r.latencyClocks.mean(), 22.0);
    // Essentially every hop cuts through at this load.
    EXPECT_GT(r.cutThroughFraction, 0.98);
}

TEST(CutThroughSim, StoreAndForwardFloorIsFourW)
{
    CutThroughConfig cfg = baseConfig();
    cfg.mode = SwitchingMode::StoreAndForward;
    cfg.offeredLoad = 0.005;
    cfg.common.measureCycles = 60000;
    const CutThroughResult r = CutThroughSimulator(cfg).run();
    ASSERT_GT(r.latencyClocks.count(), 0u);
    EXPECT_DOUBLE_EQ(r.latencyClocks.min(), 32.0);
    EXPECT_DOUBLE_EQ(r.cutThroughFraction, 0.0);
}

TEST(CutThroughSim, CutThroughBeatsStoreAndForwardAtModerateLoad)
{
    CutThroughConfig cfg = baseConfig();
    const double vct =
        CutThroughSimulator(cfg).run().latencyClocks.mean();
    cfg.mode = SwitchingMode::StoreAndForward;
    const double snf =
        CutThroughSimulator(cfg).run().latencyClocks.mean();
    EXPECT_LT(vct, snf);
}

TEST(CutThroughSim, DamqCutsThroughMoreThanFifo)
{
    CutThroughConfig cfg = baseConfig();
    cfg.offeredLoad = 0.35;
    const double damq =
        CutThroughSimulator(cfg).run().cutThroughFraction;
    cfg.bufferType = BufferType::Fifo;
    const double fifo =
        CutThroughSimulator(cfg).run().cutThroughFraction;
    // FIFO cut-through needs the whole buffer empty; DAMQ only
    // needs the one queue empty.
    EXPECT_GT(damq, fifo);
}

class CutThroughConservation
    : public ::testing::TestWithParam<
          std::tuple<BufferType, FlowControl, SwitchingMode>>
{
};

TEST_P(CutThroughConservation, NothingCreatedOrLost)
{
    CutThroughConfig cfg = baseConfig();
    cfg.bufferType = std::get<0>(GetParam());
    cfg.protocol = std::get<1>(GetParam());
    cfg.mode = std::get<2>(GetParam());
    cfg.offeredLoad = 0.6;
    CutThroughSimulator sim(cfg);
    for (int i = 0; i < 8000; ++i)
        sim.step();
    sim.debugValidate();
    EXPECT_EQ(sim.lifetimeGenerated(),
              sim.lifetimeDelivered() + sim.lifetimeDiscarded() +
                  sim.packetsEverywhere());
}

INSTANTIATE_TEST_SUITE_P(
    Grid, CutThroughConservation,
    ::testing::Combine(
        ::testing::Values(BufferType::Fifo, BufferType::Damq,
                          BufferType::Samq, BufferType::Safc),
        ::testing::Values(FlowControl::Blocking,
                          FlowControl::Discarding),
        ::testing::Values(SwitchingMode::CutThrough,
                          SwitchingMode::StoreAndForward)),
    [](const ::testing::TestParamInfo<
        std::tuple<BufferType, FlowControl, SwitchingMode>> &info) {
        return std::string(bufferTypeName(std::get<0>(info.param))) +
               "_" +
               std::string(flowControlName(std::get<1>(info.param))) +
               "_" +
               (std::get<2>(info.param) == SwitchingMode::CutThrough
                    ? "vct"
                    : "snf");
    });

TEST(CutThroughSim, BlockingNeverDiscards)
{
    CutThroughConfig cfg = baseConfig();
    cfg.offeredLoad = 0.95;
    CutThroughSimulator sim(cfg);
    for (int i = 0; i < 10000; ++i)
        sim.step();
    EXPECT_EQ(sim.lifetimeDiscarded(), 0u);
}

TEST(CutThroughSim, DiscardingDropsAtOverload)
{
    CutThroughConfig cfg = baseConfig();
    cfg.protocol = FlowControl::Discarding;
    cfg.offeredLoad = 0.95;
    CutThroughSimulator sim(cfg);
    for (int i = 0; i < 20000; ++i)
        sim.step();
    EXPECT_GT(sim.lifetimeDiscarded(), 0u);
}

TEST(CutThroughSim, Deterministic)
{
    CutThroughConfig cfg = baseConfig();
    cfg.common.measureCycles = 8000;
    const CutThroughResult a = CutThroughSimulator(cfg).run();
    const CutThroughResult b = CutThroughSimulator(cfg).run();
    EXPECT_EQ(a.delivered, b.delivered);
    EXPECT_DOUBLE_EQ(a.latencyClocks.mean(),
                     b.latencyClocks.mean());
}

TEST(CutThroughSim, DeliversOfferedLoadBelowSaturation)
{
    CutThroughConfig cfg = baseConfig();
    cfg.offeredLoad = 0.25;
    cfg.common.measureCycles = 40000;
    const CutThroughResult r = CutThroughSimulator(cfg).run();
    EXPECT_NEAR(r.deliveredLoad, 0.25, 0.02);
}

TEST(CutThroughSim, CustomTimingParameters)
{
    CutThroughConfig cfg = baseConfig();
    cfg.wireClocks = 12;
    cfg.routeClocks = 2;
    cfg.offeredLoad = 0.005;
    cfg.common.measureCycles = 60000;
    const CutThroughResult r = CutThroughSimulator(cfg).run();
    // 3 * 2 + 12 = 18 clock floor.
    EXPECT_DOUBLE_EQ(r.latencyClocks.min(), 18.0);
}

} // namespace
} // namespace damq

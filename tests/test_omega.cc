/**
 * @file
 * Topology tests: the perfect shuffle is a permutation, and for
 * every (source, destination) pair, walking the digit-controlled
 * route through the Omega wiring lands at the right sink — for
 * radices 2, 4, and 8.
 */

#include <gtest/gtest.h>

#include <set>

#include "network/omega_topology.hh"

namespace damq {
namespace {

TEST(OmegaTopology, GeometryOfThePapersNetwork)
{
    const OmegaTopology topo(64, 4);
    EXPECT_EQ(topo.numPorts(), 64u);
    EXPECT_EQ(topo.radix(), 4u);
    EXPECT_EQ(topo.numStages(), 3u);
    EXPECT_EQ(topo.switchesPerStage(), 16u);
}

TEST(OmegaTopology, ShuffleIsAPermutation)
{
    const OmegaTopology topo(64, 4);
    std::set<std::uint32_t> image;
    for (std::uint32_t line = 0; line < 64; ++line)
        image.insert(topo.shuffle(line));
    EXPECT_EQ(image.size(), 64u);
}

TEST(OmegaTopology, ShuffleRotatesDigits)
{
    const OmegaTopology topo(64, 4);
    // Line (d2 d1 d0) in base 4 maps to (d1 d0 d2).
    // 0b digits: 39 = 2*16 + 1*4 + 3 -> (1 3 2) = 16+12+2 = 30.
    EXPECT_EQ(topo.shuffle(39), 30u);
    EXPECT_EQ(topo.shuffle(0), 0u);
    EXPECT_EQ(topo.shuffle(63), 63u);
}

/** Walk the network as the simulator does; return the sink. */
NodeId
routeWalk(const OmegaTopology &topo, NodeId src, NodeId dest)
{
    StageCoord at = topo.firstStageInput(src);
    for (std::uint32_t stage = 0;; ++stage) {
        const PortId out = topo.outputPortFor(dest, stage);
        if (stage == topo.numStages() - 1)
            return topo.sinkFor(at.switchIndex, out);
        at = topo.nextStageInput(stage, at.switchIndex, out);
    }
}

class OmegaRoutingTest
    : public ::testing::TestWithParam<std::pair<std::uint32_t,
                                                std::uint32_t>>
{
};

TEST_P(OmegaRoutingTest, EveryPairRoutesCorrectly)
{
    const auto [ports, radix] = GetParam();
    const OmegaTopology topo(ports, radix);
    for (NodeId src = 0; src < ports; ++src) {
        for (NodeId dest = 0; dest < ports; ++dest) {
            ASSERT_EQ(routeWalk(topo, src, dest), dest)
                << "src=" << src << " dest=" << dest;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    Radices, OmegaRoutingTest,
    ::testing::Values(std::pair<std::uint32_t, std::uint32_t>{64, 4},
                      std::pair<std::uint32_t, std::uint32_t>{64, 2},
                      std::pair<std::uint32_t, std::uint32_t>{64, 8},
                      std::pair<std::uint32_t, std::uint32_t>{16, 4},
                      std::pair<std::uint32_t, std::uint32_t>{16, 2},
                      std::pair<std::uint32_t, std::uint32_t>{256, 4}),
    [](const ::testing::TestParamInfo<
        std::pair<std::uint32_t, std::uint32_t>> &info) {
        return "N" + std::to_string(info.param.first) + "_r" +
               std::to_string(info.param.second);
    });

TEST(OmegaTopology, DistinctOutputsReachDistinctPlaces)
{
    const OmegaTopology topo(64, 4);
    // Within one stage transition, the 64 output lines must map to
    // 64 distinct (switch, port) inputs.
    std::set<std::uint64_t> targets;
    for (std::uint32_t sw = 0; sw < 16; ++sw) {
        for (PortId p = 0; p < 4; ++p) {
            const StageCoord c = topo.nextStageInput(0, sw, p);
            targets.insert(static_cast<std::uint64_t>(c.switchIndex) *
                               64 +
                           c.port);
        }
    }
    EXPECT_EQ(targets.size(), 64u);
}

TEST(OmegaTopology, SinkNumbering)
{
    const OmegaTopology topo(64, 4);
    EXPECT_EQ(topo.sinkFor(0, 0), 0u);
    EXPECT_EQ(topo.sinkFor(0, 3), 3u);
    EXPECT_EQ(topo.sinkFor(15, 3), 63u);
}

} // namespace
} // namespace damq

/**
 * @file
 * Unit tests for the four buffer organizations: FIFO semantics and
 * head-of-line blocking, SAMQ/SAFC static partitioning, DAMQ
 * dynamic sharing and linked-list bookkeeping, plus the shared
 * reservation machinery.
 */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "queueing/buffer_factory.hh"
#include "queueing/damq_buffer.hh"
#include "queueing/fifo_buffer.hh"
#include "queueing/partitioned_buffer.hh"

namespace damq {
namespace {

Packet
makePacket(PacketId id, PortId out, std::uint32_t len = 1)
{
    Packet p;
    p.id = id;
    p.source = 0;
    p.dest = 0;
    p.outPort = out;
    p.lengthSlots = len;
    return p;
}

TEST(BufferType, NamesRoundTrip)
{
    EXPECT_EQ(tryBufferTypeFromString("fifo"), BufferType::Fifo);
    EXPECT_EQ(tryBufferTypeFromString("DAMQ"), BufferType::Damq);
    EXPECT_EQ(tryBufferTypeFromString("Samq"), BufferType::Samq);
    EXPECT_EQ(tryBufferTypeFromString("safc"), BufferType::Safc);
    EXPECT_STREQ(bufferTypeName(BufferType::Damq), "DAMQ");
}

TEST(Factory, ProducesRightTypes)
{
    EXPECT_EQ(makeBuffer(BufferType::Fifo, 4, 4)->type(),
              BufferType::Fifo);
    EXPECT_EQ(makeBuffer(BufferType::Samq, 4, 4)->type(),
              BufferType::Samq);
    EXPECT_EQ(makeBuffer(BufferType::Safc, 4, 4)->type(),
              BufferType::Safc);
    EXPECT_EQ(makeBuffer(BufferType::Damq, 4, 4)->type(),
              BufferType::Damq);
}

// ---------------------------------------------------------------- FIFO

TEST(FifoBuffer, OnlyHeadOfLineIsVisible)
{
    FifoBuffer buf(4, 4);
    buf.push(makePacket(1, 2));
    buf.push(makePacket(2, 3));

    EXPECT_NE(buf.peek(2), nullptr);
    EXPECT_EQ(buf.peek(2)->id, 1u);
    // Packet 2 for output 3 is hidden behind the head of line.
    EXPECT_EQ(buf.peek(3), nullptr);
    EXPECT_EQ(buf.queueLength(3), 0u);
    EXPECT_EQ(buf.queueLength(2), 2u);
}

TEST(FifoBuffer, PopRestoresVisibility)
{
    FifoBuffer buf(4, 4);
    buf.push(makePacket(1, 2));
    buf.push(makePacket(2, 3));
    EXPECT_EQ(buf.pop(2).id, 1u);
    ASSERT_NE(buf.peek(3), nullptr);
    EXPECT_EQ(buf.peek(3)->id, 2u);
}

TEST(FifoBuffer, SharedPoolAcceptsAnyMix)
{
    FifoBuffer buf(4, 4);
    for (PortId out = 0; out < 4; ++out) {
        EXPECT_TRUE(buf.canAccept(out, 1));
        buf.push(makePacket(out, out));
    }
    EXPECT_EQ(buf.usedSlots(), 4u);
    for (PortId out = 0; out < 4; ++out)
        EXPECT_FALSE(buf.canAccept(out, 1));
}

TEST(FifoBuffer, MultiSlotPacketsCountSlots)
{
    FifoBuffer buf(4, 4);
    buf.push(makePacket(1, 0, 3));
    EXPECT_EQ(buf.usedSlots(), 3u);
    EXPECT_TRUE(buf.canAccept(1, 1));
    EXPECT_FALSE(buf.canAccept(1, 2));
}

TEST(FifoBuffer, ClearEmpties)
{
    FifoBuffer buf(4, 4);
    buf.push(makePacket(1, 0));
    buf.clear();
    EXPECT_TRUE(buf.empty());
    EXPECT_EQ(buf.usedSlots(), 0u);
    EXPECT_TRUE(buf.canAccept(0, 4));
}

TEST(FifoBuffer, SingleReadPort)
{
    FifoBuffer buf(4, 4);
    EXPECT_EQ(buf.maxReadsPerCycle(), 1u);
}

// ------------------------------------------------------------ SAMQ/SAFC

TEST(SamqBuffer, PartitionsAreStatic)
{
    SamqBuffer buf(4, 8); // 2 slots per output
    EXPECT_EQ(buf.partitionSlots(), 2u);
    buf.push(makePacket(1, 0));
    buf.push(makePacket(2, 0));
    // Partition 0 is full even though 6 slots are empty elsewhere.
    EXPECT_FALSE(buf.canAccept(0, 1));
    EXPECT_TRUE(buf.canAccept(1, 1));
    EXPECT_EQ(buf.usedSlots(), 2u);
}

TEST(SamqBuffer, QueuesAreIndependentFifos)
{
    SamqBuffer buf(2, 4);
    buf.push(makePacket(1, 0));
    buf.push(makePacket(2, 1));
    buf.push(makePacket(3, 0));
    EXPECT_EQ(buf.queueLength(0), 2u);
    EXPECT_EQ(buf.queueLength(1), 1u);
    EXPECT_EQ(buf.pop(0).id, 1u);
    EXPECT_EQ(buf.pop(0).id, 3u);
    EXPECT_EQ(buf.pop(1).id, 2u);
    EXPECT_TRUE(buf.empty());
}

TEST(SamqBuffer, SingleReadPort)
{
    SamqBuffer buf(4, 4);
    EXPECT_EQ(buf.maxReadsPerCycle(), 1u);
}

TEST(SafcBuffer, FullyConnectedReadPorts)
{
    SafcBuffer buf(4, 4);
    EXPECT_EQ(buf.maxReadsPerCycle(), 4u);
    EXPECT_EQ(buf.type(), BufferType::Safc);
}

TEST(SafcBuffer, SharesPartitionRulesWithSamq)
{
    SafcBuffer buf(4, 8);
    buf.push(makePacket(1, 2));
    buf.push(makePacket(2, 2));
    EXPECT_FALSE(buf.canAccept(2, 1));
    EXPECT_TRUE(buf.canAccept(3, 1));
}

// ---------------------------------------------------------------- DAMQ

TEST(DamqBuffer, SharesPoolAcrossQueues)
{
    DamqBuffer buf(4, 4);
    // All four slots can serve a single output...
    for (int i = 0; i < 4; ++i)
        buf.push(makePacket(i, 1));
    EXPECT_EQ(buf.queueLength(1), 4u);
    EXPECT_FALSE(buf.canAccept(0, 1));
    buf.debugValidate();
}

TEST(DamqBuffer, PerOutputFifoOrder)
{
    DamqBuffer buf(4, 6);
    buf.push(makePacket(1, 0));
    buf.push(makePacket(2, 1));
    buf.push(makePacket(3, 0));
    buf.push(makePacket(4, 1));

    EXPECT_EQ(buf.pop(0).id, 1u);
    EXPECT_EQ(buf.pop(1).id, 2u);
    EXPECT_EQ(buf.pop(0).id, 3u);
    EXPECT_EQ(buf.pop(1).id, 4u);
    buf.debugValidate();
}

TEST(DamqBuffer, NoHeadOfLineBlockingAcrossQueues)
{
    DamqBuffer buf(4, 4);
    buf.push(makePacket(1, 0));
    buf.push(makePacket(2, 3));
    // Unlike FIFO, both are simultaneously visible.
    ASSERT_NE(buf.peek(0), nullptr);
    ASSERT_NE(buf.peek(3), nullptr);
    EXPECT_EQ(buf.peek(0)->id, 1u);
    EXPECT_EQ(buf.peek(3)->id, 2u);
}

TEST(DamqBuffer, SlotsRecycleThroughFreeList)
{
    DamqBuffer buf(2, 3);
    for (int round = 0; round < 50; ++round) {
        buf.push(makePacket(round, round % 2));
        EXPECT_EQ(buf.freeSlotCount(), 2u);
        buf.pop(round % 2);
        EXPECT_EQ(buf.freeSlotCount(), 3u);
        buf.debugValidate();
    }
}

TEST(DamqBuffer, MultiSlotPacketsChainCorrectly)
{
    DamqBuffer buf(2, 8);
    buf.push(makePacket(1, 0, 4));
    buf.push(makePacket(2, 0, 2));
    buf.push(makePacket(3, 1, 2));
    EXPECT_EQ(buf.usedSlots(), 8u);
    EXPECT_FALSE(buf.canAccept(0, 1));
    buf.debugValidate();

    EXPECT_EQ(buf.pop(0).id, 1u);
    EXPECT_EQ(buf.freeSlotCount(), 4u);
    buf.debugValidate();
    EXPECT_EQ(buf.pop(0).id, 2u);
    EXPECT_EQ(buf.pop(1).id, 3u);
    EXPECT_TRUE(buf.empty());
    EXPECT_EQ(buf.freeSlotCount(), 8u);
    buf.debugValidate();
}

TEST(DamqBuffer, SnapshotMatchesPushOrder)
{
    DamqBuffer buf(3, 6);
    buf.push(makePacket(10, 2));
    buf.push(makePacket(11, 2));
    buf.push(makePacket(12, 0));
    const auto snap = buf.snapshotQueue(2);
    ASSERT_EQ(snap.size(), 2u);
    EXPECT_EQ(snap[0].id, 10u);
    EXPECT_EQ(snap[1].id, 11u);
}

TEST(DamqBuffer, ClearRestoresFreeList)
{
    DamqBuffer buf(4, 4);
    buf.push(makePacket(1, 0, 2));
    buf.push(makePacket(2, 1, 2));
    buf.clear();
    EXPECT_TRUE(buf.empty());
    EXPECT_EQ(buf.freeSlotCount(), 4u);
    buf.debugValidate();
    // Usable again after clear.
    buf.push(makePacket(3, 2, 4));
    EXPECT_EQ(buf.queueLength(2), 1u);
    buf.debugValidate();
}

// --------------------------------------------------------- reservations

class ReservationTest : public ::testing::TestWithParam<BufferType>
{
};

TEST_P(ReservationTest, ReservedSpaceBlocksAdmission)
{
    // 8 slots: for partitioned types that is 2 per output.
    auto buf = makeBuffer(GetParam(), 4, 8);
    EXPECT_TRUE(buf->reserve(1, 2));
    EXPECT_EQ(buf->reservedSlotsTotal(), 2u);
    // The partition (or pool) the reservation holds is blocked.
    EXPECT_FALSE(buf->canAccept(1, buf->capacitySlots()));
    // Committing consumes the reservation.
    Packet p = makePacket(1, 1, 2);
    buf->pushReserved(p);
    EXPECT_EQ(buf->reservedSlotsTotal(), 0u);
    EXPECT_EQ(buf->usedSlots(), 2u);
    EXPECT_EQ(buf->queueLength(1), 1u);
}

TEST_P(ReservationTest, CancelReleasesSpace)
{
    auto buf = makeBuffer(GetParam(), 4, 8);
    EXPECT_TRUE(buf->reserve(0, 2));
    buf->cancelReservation(0, 2);
    EXPECT_EQ(buf->reservedSlotsTotal(), 0u);
    EXPECT_TRUE(buf->canAccept(0, 2));
}

TEST_P(ReservationTest, ReserveFailsWhenFull)
{
    auto buf = makeBuffer(GetParam(), 4, 4);
    for (PortId out = 0; out < 4; ++out)
        buf->push(makePacket(out, out));
    EXPECT_FALSE(buf->reserve(0, 1));
}

INSTANTIATE_TEST_SUITE_P(
    AllBufferTypes, ReservationTest,
    ::testing::Values(BufferType::Fifo, BufferType::Samq,
                      BufferType::Safc, BufferType::Damq),
    [](const ::testing::TestParamInfo<BufferType> &info) {
        return bufferTypeName(info.param);
    });

// A parameterized sweep of basic push/pop conservation.
class ConservationTest
    : public ::testing::TestWithParam<std::tuple<BufferType, int>>
{
};

TEST_P(ConservationTest, PushPopConservesEverything)
{
    const auto [type, slots] = GetParam();
    auto buf = makeBuffer(type, 4, slots);
    std::uint64_t pushed = 0;
    std::uint64_t popped = 0;
    for (int round = 0; round < 200; ++round) {
        const PortId out = round % 4;
        if (buf->canAccept(out, 1)) {
            buf->push(makePacket(round, out));
            ++pushed;
        }
        const PortId drain = (round * 7) % 4;
        if (buf->peek(drain)) {
            buf->pop(drain);
            ++popped;
        }
        buf->debugValidate();
        EXPECT_EQ(buf->totalPackets(), pushed - popped);
    }
}

INSTANTIATE_TEST_SUITE_P(
    TypesAndSizes, ConservationTest,
    ::testing::Combine(::testing::Values(BufferType::Fifo,
                                         BufferType::Samq,
                                         BufferType::Safc,
                                         BufferType::Damq),
                       ::testing::Values(4, 8, 16)),
    [](const ::testing::TestParamInfo<std::tuple<BufferType, int>>
           &info) {
        return std::string(bufferTypeName(std::get<0>(info.param))) +
               "_" + std::to_string(std::get<1>(info.param));
    });

} // namespace
} // namespace damq

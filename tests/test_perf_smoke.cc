/**
 * @file
 * Perf smoke test (`ctest -L perf`): one scaled-down Table 4 sweep
 * on two worker threads, asserting it finishes quickly and that the
 * runner's throughput counters report plausible numbers.  This is a
 * canary for gross hot-path regressions, not a benchmark — the
 * real numbers live in bench/micro_buffers and the PERF_*.json
 * sidecars.
 *
 * Also home to the steady-state allocation check: once a
 * synchronized engine has warmed up, stepping it must perform zero
 * heap allocations — every per-cycle structure (grant lists, move
 * lists, pop scratch, injection staging, source-queue rings) is
 * sized at construction and reused.  The check counts global
 * operator new calls around a measured step loop, so any hidden
 * per-cycle allocation that sneaks into the hot path fails here
 * rather than showing up as a profile regression months later.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>

#include "network/torus_sim.hh"
#include "runner/sweep_runner.hh"
#include "runner/table_benches.hh"

// Global allocation counter.  Defining operator new/delete in a
// test binary is the standard-sanctioned way to observe allocation
// behavior; the counter is atomic because gtest itself may touch
// the heap from other threads, and the engine's shard workers all
// route through here too.
namespace {
std::atomic<std::uint64_t> gAllocations{0};
} // namespace

void *
operator new(std::size_t size)
{
    gAllocations.fetch_add(1, std::memory_order_relaxed);
    if (void *p = std::malloc(size ? size : 1))
        return p;
    throw std::bad_alloc();
}

void *
operator new[](std::size_t size)
{
    return ::operator new(size);
}

void
operator delete(void *p) noexcept
{
    std::free(p);
}

void
operator delete[](void *p) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::size_t) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, std::size_t) noexcept
{
    std::free(p);
}

namespace damq {
namespace {

TEST(PerfSmoke, SmallSweepFinishesFastWithSaneCounters)
{
    Table4Options options;
    options.base.numPorts = 16;
    options.base.common.warmupCycles = 200;
    options.base.common.measureCycles = 2000;
    options.loads = {0.25, 0.50};
    options.types = {BufferType::Fifo, BufferType::Damq};

    SweepRunner runner(2);
    const Table4Data data = runTable4(runner, options);
    ASSERT_EQ(data.rows.size(), 2u);

    // 6 simulations of 2200 cycles on a 16-port network: seconds at
    // worst, even on a loaded shared machine.
    EXPECT_LT(runner.wallSeconds(), 10.0);

    ASSERT_EQ(runner.taskPerf().size(), data.taskLabels.size());
    for (const TaskPerf &perf : runner.taskPerf()) {
        EXPECT_EQ(perf.simCycles, 2000u);
        EXPECT_GT(perf.cyclesPerSecond, 0.0);
    }
}

/** Allocations during @p cycles steps of @p sim. */
std::uint64_t
allocationsDuring(TorusSimulator &sim, Cycle cycles)
{
    const std::uint64_t before =
        gAllocations.load(std::memory_order_relaxed);
    for (Cycle c = 0; c < cycles; ++c)
        sim.step();
    return gAllocations.load(std::memory_order_relaxed) - before;
}

TEST(PerfSmoke, SteadyStateStepMakesNoHeapAllocations)
{
    // Blocking 2-VC torus at moderate load, no telemetry, no
    // faults, no audits: the pure hot loop.  A long pre-roll lets
    // the source-queue rings and per-shard move lists reach their
    // high-water marks (growth during warmup is expected and
    // amortized).
    TorusConfig cfg;
    cfg.width = 8;
    cfg.height = 8;
    cfg.offeredLoad = 0.5;
    cfg.common.seed = 42;
    TorusSimulator sim(cfg);
    for (Cycle c = 0; c < 2000; ++c)
        sim.step();

    EXPECT_EQ(allocationsDuring(sim, 500), 0u)
        << "the synchronized engine's steady-state cycle must not "
           "touch the heap — some per-cycle structure is no longer "
           "preallocated";
}

TEST(PerfSmoke, ShardedSteadyStateStepMakesNoHeapAllocations)
{
    // Same fabric at 4 shards: the barrier dispatch (std::function
    // phase bodies included) and the per-shard mailboxes must be
    // allocation-free too.
    TorusConfig cfg;
    cfg.width = 8;
    cfg.height = 8;
    cfg.offeredLoad = 0.5;
    cfg.common.seed = 42;
    cfg.common.shards = 4;
    TorusSimulator sim(cfg);
    for (Cycle c = 0; c < 2000; ++c)
        sim.step();

    EXPECT_EQ(allocationsDuring(sim, 500), 0u)
        << "the sharded phase dispatch allocates in steady state";
}

} // namespace
} // namespace damq

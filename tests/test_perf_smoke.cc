/**
 * @file
 * Perf smoke test (`ctest -L perf`): one scaled-down Table 4 sweep
 * on two worker threads, asserting it finishes quickly and that the
 * runner's throughput counters report plausible numbers.  This is a
 * canary for gross hot-path regressions, not a benchmark — the
 * real numbers live in bench/micro_buffers and the PERF_*.json
 * sidecars.
 */

#include <gtest/gtest.h>

#include "runner/sweep_runner.hh"
#include "runner/table_benches.hh"

namespace damq {
namespace {

TEST(PerfSmoke, SmallSweepFinishesFastWithSaneCounters)
{
    Table4Options options;
    options.base.numPorts = 16;
    options.base.common.warmupCycles = 200;
    options.base.common.measureCycles = 2000;
    options.loads = {0.25, 0.50};
    options.types = {BufferType::Fifo, BufferType::Damq};

    SweepRunner runner(2);
    const Table4Data data = runTable4(runner, options);
    ASSERT_EQ(data.rows.size(), 2u);

    // 6 simulations of 2200 cycles on a 16-port network: seconds at
    // worst, even on a loaded shared machine.
    EXPECT_LT(runner.wallSeconds(), 10.0);

    ASSERT_EQ(runner.taskPerf().size(), data.taskLabels.size());
    for (const TaskPerf &perf : runner.taskPerf()) {
        EXPECT_EQ(perf.simCycles, 2000u);
        EXPECT_GT(perf.cyclesPerSecond, 0.0);
    }
}

} // namespace
} // namespace damq

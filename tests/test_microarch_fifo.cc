/**
 * @file
 * Tests for the byte-level FIFO buffer mode: with identical chip
 * hardware except for the buffer organization, the FIFO input
 * buffer exhibits exactly the head-of-line blocking of Section 2,
 * while the DAMQ chip routes around it.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "microarch/buffer_core.hh"
#include "microarch/micro_network.hh"

namespace damq {
namespace micro {
namespace {

// ------------------------------------------------ FIFO BufferCore

TEST(FifoBufferCore, OnlyHeadOfLineIsVisible)
{
    BufferCore core(5, 12, ChipBufferMode::Fifo);
    const SlotId first = core.beginPacket(2);
    core.beginPacket(3);

    EXPECT_EQ(core.packetsQueued(2), 1u);
    EXPECT_EQ(core.packetsQueued(3), 0u); // behind the head of line
    EXPECT_EQ(core.headPacket(2), first);
    EXPECT_EQ(core.headPacket(3), kNullSlot);
    core.debugValidate();
}

TEST(FifoBufferCore, PopRestoresVisibility)
{
    BufferCore core(5, 12, ChipBufferMode::Fifo);
    core.beginPacket(2);
    const SlotId second = core.beginPacket(3);
    core.popFrontSlot(2, /*last_of_packet=*/true);
    EXPECT_EQ(core.packetsQueued(3), 1u);
    EXPECT_EQ(core.headPacket(3), second);
    core.debugValidate();
}

TEST(FifoBufferCore, MultiSlotPacketsKeepOrder)
{
    BufferCore core(5, 12, ChipBufferMode::Fifo);
    core.beginPacket(1);
    core.extendPacket(1); // second slot of packet 1
    core.beginPacket(4);
    EXPECT_EQ(core.packetsQueued(1), 1u);
    EXPECT_EQ(core.packetsQueued(4), 0u);
    core.popFrontSlot(1, false);
    core.popFrontSlot(1, true);
    EXPECT_EQ(core.packetsQueued(4), 1u);
    EXPECT_EQ(core.freeSlots(), 11u);
    core.debugValidate();
}

TEST(FifoBufferCore, DamqModeUnchanged)
{
    BufferCore core(5, 12, ChipBufferMode::Damq);
    core.beginPacket(2);
    core.beginPacket(3);
    EXPECT_EQ(core.packetsQueued(2), 1u);
    EXPECT_EQ(core.packetsQueued(3), 1u); // both visible
}

// --------------------------------------------------- chip level

/**
 * B forwards flow 1 through out2 (whose receiver is completely
 * stalled — zero flow-control credits) and flow 2 through out3 to
 * C2.  Returns how many messages C2 has after 2000 cycles.  With a
 * DAMQ buffer at B.in0 the stalled head packet does not stop the
 * second flow; with a FIFO buffer it does — Section 2's head-of-
 * line blocking, byte-accurate.
 */
std::size_t
deliveredPastAStalledHead(ChipBufferMode mode)
{
    Tracer tracer;
    MicroNetwork net(&tracer);
    ComCobbChip &a = net.addChip("A");
    ComCobbChip &b =
        net.addChip("B", kComCobbPorts, kDefaultBufferSlots, mode);
    ComCobbChip &c2 = net.addChip("C2");
    net.connect(a, 0, b, 0);
    net.connect(b, 3, c2, 0);
    HostEndpoint host_a = net.attachHost(a);
    HostEndpoint host_c2 = net.attachHost(c2);

    // vc10: A -> B.out2 (stalled receiver).
    net.programCircuit({{&a, kProcessorPort, 0}, {&b, 0, 2}}, 10);
    // vc20: A -> B.out3 -> C2 (idle path).
    net.programCircuit({{&a, kProcessorPort, 0},
                        {&b, 0, 3},
                        {&c2, 0, kProcessorPort}},
                       20);

    // Stall B.out2 permanently: its (unconnected) link advertises
    // zero credits, as a hung neighbor would.
    b.outputPort(2).attachedLink()->publishCredits(0);

    // M1 heads for the stalled output, M2 for the idle one.
    host_a.injector->sendMessage(
        10, std::vector<std::uint8_t>(32, 0x01));
    host_a.injector->sendMessage(
        20, std::vector<std::uint8_t>(32, 0x02));

    net.run(2000);
    net.debugValidate();
    return host_c2.collector->received().size();
}

TEST(FifoChip, HeadOfLineBlockingPinsTheIdlePathPacket)
{
    // DAMQ: M2 flows around the stalled M1.  FIFO: M2 is pinned
    // behind it indefinitely.
    EXPECT_EQ(deliveredPastAStalledHead(ChipBufferMode::Damq), 1u);
    EXPECT_EQ(deliveredPastAStalledHead(ChipBufferMode::Fifo), 0u);
}

TEST(FifoChip, CutThroughStillFourCyclesWhenEmpty)
{
    Tracer tracer;
    MicroNetwork net(&tracer);
    ComCobbChip &a = net.addChip("A", kComCobbPorts,
                                 kDefaultBufferSlots,
                                 ChipBufferMode::Fifo);
    ComCobbChip &b = net.addChip("B", kComCobbPorts,
                                 kDefaultBufferSlots,
                                 ChipBufferMode::Fifo);
    net.connect(a, 0, b, 0);
    HostEndpoint tx = net.attachHost(a);
    HostEndpoint rx = net.attachHost(b);
    net.programCircuit(
        {{&a, kProcessorPort, 0}, {&b, 0, kProcessorPort}}, 5);

    tracer.enable();
    tx.injector->sendMessage(5, std::vector<std::uint8_t>(8, 0x3A));
    net.run(100);

    Cycle t_in = ~Cycle{0};
    Cycle t_out = ~Cycle{0};
    for (const TraceEvent &event : tracer.events()) {
        if (t_in == ~Cycle{0} && event.source == "A.host_tx" &&
            event.action.find("start bit") != std::string::npos) {
            t_in = event.cycle;
        }
        if (t_out == ~Cycle{0} && event.source == "A.out0" &&
            event.action.find("start bit generated") !=
                std::string::npos) {
            t_out = event.cycle;
        }
    }
    // An empty FIFO cuts through just as fast as a DAMQ — the
    // difference only appears once packets queue up.
    EXPECT_EQ(t_out, t_in + 4);
    ASSERT_EQ(rx.collector->received().size(), 1u);
}

TEST(FifoChip, HeavyTrafficStillDeliversEverythingIntact)
{
    Tracer tracer;
    MicroNetwork net(&tracer);
    ComCobbChip &a = net.addChip("A", kComCobbPorts,
                                 kDefaultBufferSlots,
                                 ChipBufferMode::Fifo);
    ComCobbChip &b = net.addChip("B", kComCobbPorts,
                                 kDefaultBufferSlots,
                                 ChipBufferMode::Fifo);
    net.connect(a, 0, b, 0);
    HostEndpoint tx = net.attachHost(a);
    HostEndpoint rx = net.attachHost(b);
    net.programCircuit(
        {{&a, kProcessorPort, 0}, {&b, 0, kProcessorPort}}, 5);

    std::vector<std::vector<std::uint8_t>> sent;
    for (int m = 0; m < 15; ++m) {
        std::vector<std::uint8_t> payload(
            40 + m, static_cast<std::uint8_t>(m));
        sent.push_back(payload);
        tx.injector->sendMessage(5, payload);
    }
    net.run(5000);
    net.debugValidate();
    ASSERT_EQ(rx.collector->received().size(), sent.size());
    for (std::size_t m = 0; m < sent.size(); ++m)
        EXPECT_EQ(rx.collector->received()[m].payload, sent[m]);
}

TEST(ChipStats, CountersTrackTraffic)
{
    Tracer tracer;
    MicroNetwork net(&tracer);
    ComCobbChip &a = net.addChip("A");
    ComCobbChip &b = net.addChip("B");
    net.connect(a, 0, b, 0);
    HostEndpoint tx = net.attachHost(a);
    HostEndpoint rx = net.attachHost(b);
    net.programCircuit(
        {{&a, kProcessorPort, 0}, {&b, 0, kProcessorPort}}, 5);

    tx.injector->sendMessage(5, std::vector<std::uint8_t>(50, 1));
    net.run(400);
    ASSERT_EQ(rx.collector->received().size(), 1u);

    // 50 bytes = packets of 32 + 18.
    EXPECT_EQ(a.inputPort(kProcessorPort).packetsReceived(), 2u);
    EXPECT_EQ(a.inputPort(kProcessorPort).bytesReceived(), 50u);
    EXPECT_EQ(a.outputPort(0).packetsSent(), 2u);
    EXPECT_EQ(a.outputPort(0).bytesSent(), 50u);
    // Wire occupancy: 50 payload + (start+hdr+len) + (start+hdr).
    EXPECT_EQ(a.outputPort(0).busyCycles(), 50u + 3u + 2u);
}

} // namespace
} // namespace micro
} // namespace damq

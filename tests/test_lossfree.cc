/**
 * @file
 * Loss-freedom of the blocking protocol, long-run: with no faults
 * injected, every generated packet is eventually delivered — none
 * discarded, none stuck — for all five buffer organizations under
 * both uniform and 5% hot-spot traffic.  The periodic invariant
 * audit checks the conservation identity (injected = delivered +
 * discarded + in-flight) throughout the run, and a final drain
 * closes the books exactly: injected == delivered.
 */

#include <gtest/gtest.h>

#include <string>

#include "network/network_sim.hh"

namespace damq {
namespace {

struct LossFreeCase
{
    BufferType type;
    std::string traffic;
};

class LossFree : public ::testing::TestWithParam<LossFreeCase>
{
};

TEST_P(LossFree, BlockingNetworkLosesNothing)
{
    const LossFreeCase &param = GetParam();

    NetworkConfig cfg;
    cfg.numPorts = 16;
    cfg.radix = 4;
    cfg.bufferType = param.type;
    cfg.slotsPerBuffer = 4;
    cfg.protocol = FlowControl::Blocking;
    cfg.traffic = param.traffic;
    cfg.hotSpotFraction = 0.05;
    // Hot-spot traffic tree-saturates; stay under the cap so the
    // drain terminates in bounded time.
    cfg.offeredLoad = param.traffic == "hotspot" ? 0.15 : 0.5;
    cfg.common.warmupCycles = 500;
    cfg.common.measureCycles = 4000;
    cfg.common.auditEveryCycles = 100; // conservation checked all along
    cfg.common.seed = 88;

    NetworkSimulator sim(cfg);
    sim.run();

    // Blocking flow control never discards.
    EXPECT_EQ(sim.lifetime().discarded(), 0u);
    EXPECT_EQ(sim.lifetime().misrouted, 0u);

    // The in-run audits saw the identity hold at every check.
    const FaultReport mid = sim.faultReport();
    EXPECT_GT(mid.auditsRun, 0u);
    EXPECT_EQ(mid.auditViolations, 0u)
        << mid.violationSamples.front();

    // Stop generating and let the network empty out completely.
    ASSERT_TRUE(sim.drain(200000))
        << "network failed to drain; snapshot:\n"
        << sim.snapshotText();
    EXPECT_EQ(sim.packetsInFlight(), 0u);
    EXPECT_EQ(sim.packetsAtSources(), 0u);

    // With nothing in flight, conservation degenerates to equality.
    EXPECT_EQ(sim.lifetime().injected, sim.lifetime().delivered);
    EXPECT_EQ(sim.lifetime().generated, sim.lifetime().delivered);

    const FaultReport report = sim.faultReport();
    EXPECT_EQ(report.auditViolations, 0u);
    EXPECT_EQ(report.totalInjected(), 0u);
}

std::string
lossFreeName(const ::testing::TestParamInfo<LossFreeCase> &info)
{
    return std::string(bufferTypeName(info.param.type)) + "_" +
           info.param.traffic;
}

INSTANTIATE_TEST_SUITE_P(
    AllBuffersBothTraffics, LossFree,
    ::testing::Values(
        LossFreeCase{BufferType::Fifo, "uniform"},
        LossFreeCase{BufferType::Samq, "uniform"},
        LossFreeCase{BufferType::Safc, "uniform"},
        LossFreeCase{BufferType::Damq, "uniform"},
        LossFreeCase{BufferType::DamqR, "uniform"},
        LossFreeCase{BufferType::Fifo, "hotspot"},
        LossFreeCase{BufferType::Samq, "hotspot"},
        LossFreeCase{BufferType::Safc, "hotspot"},
        LossFreeCase{BufferType::Damq, "hotspot"},
        LossFreeCase{BufferType::DamqR, "hotspot"}),
    lossFreeName);

} // namespace
} // namespace damq

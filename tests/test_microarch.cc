/**
 * @file
 * Tests for the byte/phase-accurate ComCoBB model: buffer-core
 * linked lists, the virtual-circuit router, end-to-end message
 * delivery across chips, multi-packet messages, byte integrity,
 * flow control under pressure, and the paper's 4-cycle virtual
 * cut-through (Table 1).
 */

#include <gtest/gtest.h>

#include <numeric>
#include <string>
#include <vector>

#include "common/random.hh"
#include "microarch/buffer_core.hh"
#include "microarch/chip.hh"
#include "microarch/host.hh"
#include "microarch/micro_network.hh"
#include "microarch/routing_table.hh"
#include "microarch/trace.hh"

namespace damq {
namespace micro {
namespace {

// ----------------------------------------------------------- BufferCore

TEST(BufferCore, FreshCoreHasEverythingFree)
{
    BufferCore core(5, 12);
    EXPECT_EQ(core.freeSlots(), 12u);
    EXPECT_EQ(core.numSlots(), 12u);
    for (PortId q = 0; q < 5; ++q) {
        EXPECT_EQ(core.packetsQueued(q), 0u);
        EXPECT_EQ(core.headPacket(q), kNullSlot);
    }
    core.debugValidate();
}

TEST(BufferCore, BeginExtendPopRoundTrip)
{
    BufferCore core(5, 12);
    const SlotId head = core.beginPacket(2);
    EXPECT_EQ(core.packetsQueued(2), 1u);
    EXPECT_EQ(core.headPacket(2), head);
    EXPECT_EQ(core.freeSlots(), 11u);

    const SlotId second = core.extendPacket(2);
    EXPECT_EQ(core.nextSlot(head), second);
    EXPECT_EQ(core.freeSlots(), 10u);
    core.debugValidate();

    core.popFrontSlot(2, false);
    core.popFrontSlot(2, true);
    EXPECT_EQ(core.packetsQueued(2), 0u);
    EXPECT_EQ(core.freeSlots(), 12u);
    core.debugValidate();
}

TEST(BufferCore, BytesRoundTripThroughSlots)
{
    BufferCore core(5, 12);
    const SlotId slot = core.beginPacket(0);
    for (unsigned i = 0; i < kSlotBytes; ++i)
        core.writeByte(slot, i, static_cast<std::uint8_t>(0xA0 + i));
    for (unsigned i = 0; i < kSlotBytes; ++i)
        EXPECT_EQ(core.readByte(slot, i), 0xA0 + i);
}

TEST(BufferCore, MetaLivesOnTheHeadSlot)
{
    BufferCore core(5, 12);
    const SlotId head = core.beginPacket(1);
    core.meta(head).newHeader = 42;
    core.meta(head).dataLength = 20;
    core.meta(head).lengthKnown = true;
    EXPECT_EQ(core.meta(head).newHeader, 42u);
    EXPECT_EQ(core.meta(head).dataLength, 20u);
}

TEST(BufferCore, QueuesInterleaveWithoutInterference)
{
    BufferCore core(5, 12);
    const SlotId a = core.beginPacket(0);
    const SlotId b = core.beginPacket(3);
    const SlotId a2 = core.extendPacket(0);
    EXPECT_EQ(core.nextSlot(a), a2);
    EXPECT_EQ(core.headPacket(3), b);
    EXPECT_EQ(core.packetsQueued(0), 1u);
    EXPECT_EQ(core.packetsQueued(3), 1u);
    core.debugValidate();
}

TEST(BufferCore, SlotsRecycleInFifoOrder)
{
    BufferCore core(2, 4);
    const SlotId first = core.beginPacket(0);
    core.popFrontSlot(0, true);
    // The freed slot went to the back of the free list, so the next
    // allocation takes a different slot.
    const SlotId second = core.beginPacket(0);
    EXPECT_NE(first, second);
    core.debugValidate();
}

// --------------------------------------------------------- RoutingTable

TEST(RoutingTable, ProgramAndRoute)
{
    RoutingTable table;
    EXPECT_FALSE(table.isProgrammed(7));
    table.program(7, 2, 9);
    ASSERT_TRUE(table.isProgrammed(7));
    const RouteResult r = table.route(7);
    EXPECT_EQ(r.outPort, 2u);
    EXPECT_EQ(r.newHeader, 9u);
    EXPECT_TRUE(r.firstOfMessage);
}

TEST(RoutingTable, MessageLengthAccounting)
{
    RoutingTable table;
    table.program(3, 1, 3);
    // 70-byte message: packets of 32, 32, 6.
    EXPECT_EQ(table.beginMessage(3, 70), 32u);
    EXPECT_EQ(table.remainingBytes(3), 38u);

    RouteResult r = table.route(3);
    EXPECT_FALSE(r.firstOfMessage);
    EXPECT_EQ(r.continuationLength, 32u);
    table.consumeContinuation(3, 32);
    EXPECT_EQ(table.remainingBytes(3), 6u);

    r = table.route(3);
    EXPECT_EQ(r.continuationLength, 6u);
    table.consumeContinuation(3, 6);
    EXPECT_EQ(table.remainingBytes(3), 0u);
    // Circuit is idle again: the next packet starts a new message.
    EXPECT_TRUE(table.route(3).firstOfMessage);
}

TEST(RoutingTable, ShortMessageFitsOnePacket)
{
    RoutingTable table;
    table.program(1, 0, 1);
    EXPECT_EQ(table.beginMessage(1, 5), 5u);
    EXPECT_EQ(table.remainingBytes(1), 0u);
}

// ----------------------------------------------------------------- Link

TEST(Link, CarriesOneBytePerCycle)
{
    Link link;
    link.driveData(0x5A);
    EXPECT_TRUE(link.current().hasData);
    EXPECT_EQ(link.current().data, 0x5A);
    link.endCycle();
    EXPECT_FALSE(link.current().hasData);
}

TEST(Link, CreditsDefaultToUnlimited)
{
    Link link;
    EXPECT_GE(link.creditView(), kMaxPacketSlots);
    link.publishCredits(2);
    EXPECT_EQ(link.creditView(), 2u);
}

// --------------------------------------------------------------- Tracer

TEST(Tracer, RecordsOnlyWhenEnabled)
{
    Tracer tracer;
    tracer.record(1, Phase::P0, "x", "ignored");
    EXPECT_TRUE(tracer.events().empty());
    tracer.enable();
    tracer.record(2, Phase::P1, "y", "kept");
    ASSERT_EQ(tracer.events().size(), 1u);
    EXPECT_EQ(tracer.events()[0].cycle, 2u);
    EXPECT_NE(tracer.render().find("kept"), std::string::npos);
}

// --------------------------------------------------------- end to end

/** Two chips wired port0 <-> port0, with a host on each. */
struct TwoChipRig
{
    TwoChipRig()
        : net(&tracer),
          a(net.addChip("A")),
          b(net.addChip("B")),
          hostA(net.attachHost(a)),
          hostB(net.attachHost(b))
    {
        net.connect(a, 0, b, 0);
        // Circuit 5: A.host -> A.out0 -> B.in0 -> B.host.
        net.programCircuit({{&a, kProcessorPort, 0},
                            {&b, 0, kProcessorPort}},
                           5);
        // Circuit 6: the reverse direction.
        net.programCircuit({{&b, kProcessorPort, 0},
                            {&a, 0, kProcessorPort}},
                           6);
    }

    Tracer tracer;
    MicroNetwork net;
    ComCobbChip &a;
    ComCobbChip &b;
    HostEndpoint hostA;
    HostEndpoint hostB;
};

TEST(MicroNetwork, SinglePacketMessageDelivered)
{
    TwoChipRig rig;
    const std::vector<std::uint8_t> payload = {1, 2, 3, 4, 5};
    rig.hostA.injector->sendMessage(5, payload);
    rig.net.run(100);
    rig.net.debugValidate();

    ASSERT_EQ(rig.hostB.collector->received().size(), 1u);
    const HostMessage &msg = rig.hostB.collector->received()[0];
    EXPECT_EQ(msg.vc, 5u);
    EXPECT_EQ(msg.payload, payload);
}

TEST(MicroNetwork, MultiPacketMessageReassembles)
{
    TwoChipRig rig;
    std::vector<std::uint8_t> payload(100);
    std::iota(payload.begin(), payload.end(),
              static_cast<std::uint8_t>(0));
    rig.hostA.injector->sendMessage(5, payload);
    rig.net.run(400);

    ASSERT_EQ(rig.hostB.collector->received().size(), 1u);
    EXPECT_EQ(rig.hostB.collector->received()[0].payload, payload);
}

TEST(MicroNetwork, FullDuplexTrafficBothWays)
{
    TwoChipRig rig;
    const std::vector<std::uint8_t> to_b = {0xB};
    const std::vector<std::uint8_t> to_a = {0xA, 0xA};
    rig.hostA.injector->sendMessage(5, to_b);
    rig.hostB.injector->sendMessage(6, to_a);
    rig.net.run(100);

    ASSERT_EQ(rig.hostB.collector->received().size(), 1u);
    ASSERT_EQ(rig.hostA.collector->received().size(), 1u);
    EXPECT_EQ(rig.hostB.collector->received()[0].payload, to_b);
    EXPECT_EQ(rig.hostA.collector->received()[0].payload, to_a);
}

TEST(MicroNetwork, ManyMessagesSurviveFlowControl)
{
    TwoChipRig rig;
    // 20 maximum-size messages back to back: far more than the
    // 12-slot buffer holds, so upstream must throttle on credits.
    std::vector<std::vector<std::uint8_t>> payloads;
    for (int m = 0; m < 20; ++m) {
        std::vector<std::uint8_t> p(32);
        for (int i = 0; i < 32; ++i)
            p[i] = static_cast<std::uint8_t>(m * 32 + i);
        payloads.push_back(p);
        rig.hostA.injector->sendMessage(5, p);
    }
    rig.net.run(3000);
    rig.net.debugValidate();

    ASSERT_EQ(rig.hostB.collector->received().size(), payloads.size());
    for (std::size_t m = 0; m < payloads.size(); ++m)
        EXPECT_EQ(rig.hostB.collector->received()[m].payload,
                  payloads[m]);
}

TEST(MicroNetwork, RandomPayloadsAreBitExactAcrossTwoHops)
{
    // Three chips in a line: A -> B -> C, message relayed by B.
    Tracer tracer;
    MicroNetwork net(&tracer);
    ComCobbChip &a = net.addChip("A");
    ComCobbChip &b = net.addChip("B");
    ComCobbChip &c = net.addChip("C");
    net.connect(a, 0, b, 0);
    net.connect(b, 1, c, 1);
    HostEndpoint hostA = net.attachHost(a);
    HostEndpoint hostC = net.attachHost(c);
    net.programCircuit({{&a, kProcessorPort, 0},
                        {&b, 0, 1},
                        {&c, 1, kProcessorPort}},
                       9);

    Random rng(42);
    std::vector<std::vector<std::uint8_t>> payloads;
    for (int m = 0; m < 8; ++m) {
        std::vector<std::uint8_t> p(1 + rng.below(255));
        for (auto &byte : p)
            byte = static_cast<std::uint8_t>(rng.below(256));
        payloads.push_back(p);
        hostA.injector->sendMessage(9, p);
    }
    net.run(6000);
    net.debugValidate();

    ASSERT_EQ(hostC.collector->received().size(), payloads.size());
    for (std::size_t m = 0; m < payloads.size(); ++m)
        EXPECT_EQ(hostC.collector->received()[m].payload, payloads[m]);
}

TEST(MicroNetwork, ContentionOnOneOutputSerializes)
{
    // A and B both relay into C's host port; C's single output to
    // the host must serialize them without loss.
    Tracer tracer;
    MicroNetwork net(&tracer);
    ComCobbChip &a = net.addChip("A");
    ComCobbChip &b = net.addChip("B");
    ComCobbChip &c = net.addChip("C");
    net.connect(a, 0, c, 0);
    net.connect(b, 0, c, 1);
    HostEndpoint hostA = net.attachHost(a);
    HostEndpoint hostB = net.attachHost(b);
    HostEndpoint hostC = net.attachHost(c);
    net.programCircuit({{&a, kProcessorPort, 0},
                        {&c, 0, kProcessorPort}},
                       1);
    net.programCircuit({{&b, kProcessorPort, 0},
                        {&c, 1, kProcessorPort}},
                       2);

    for (int m = 0; m < 5; ++m) {
        hostA.injector->sendMessage(
            1, std::vector<std::uint8_t>(32, 0xAA));
        hostB.injector->sendMessage(
            2, std::vector<std::uint8_t>(32, 0xBB));
    }
    net.run(2500);

    EXPECT_EQ(hostC.collector->received().size(), 10u);
}

// --------------------------------------------------- virtual cut-through

/** Cycle at which the tracer saw @p needle from @p source. */
Cycle
findEvent(const Tracer &tracer, const std::string &source,
          const std::string &needle)
{
    for (const TraceEvent &event : tracer.events()) {
        if (event.source == source &&
            event.action.find(needle) != std::string::npos) {
            return event.cycle;
        }
    }
    return ~Cycle{0};
}

TEST(CutThrough, TurnaroundIsFourCycles)
{
    TwoChipRig rig;
    rig.tracer.enable();
    rig.hostA.injector->sendMessage(
        5, std::vector<std::uint8_t>(32, 0x77));
    rig.net.run(60);

    // The start bit leaves the injector in cycle T and must leave
    // A's output port in cycle T+4 (Table 1).
    const Cycle t_in = findEvent(rig.tracer, "A.host_tx", "start bit");
    const Cycle t_out =
        findEvent(rig.tracer, "A.out0", "start bit generated");
    ASSERT_NE(t_in, ~Cycle{0});
    ASSERT_NE(t_out, ~Cycle{0});
    EXPECT_EQ(t_out, t_in + 4);
}

TEST(CutThrough, TraceMatchesTableOneSchedule)
{
    TwoChipRig rig;
    rig.tracer.enable();
    rig.hostA.injector->sendMessage(
        5, std::vector<std::uint8_t>(16, 0x11));
    rig.net.run(60);

    const Cycle t = findEvent(rig.tracer, "A.host_tx", "start bit");
    const std::string in = "A.in" + std::to_string(kProcessorPort);

    // Table 1 rows, relative to the start-bit cycle T.
    EXPECT_EQ(findEvent(rig.tracer, in, "start bit detected"), t + 1);
    EXPECT_EQ(findEvent(rig.tracer, in, "releases header"), t + 2);
    EXPECT_EQ(findEvent(rig.tracer, in, "router: output port"), t + 2);
    EXPECT_EQ(findEvent(rig.tracer, in, "releases length"), t + 3);
    EXPECT_EQ(findEvent(rig.tracer, in, "length decoder"), t + 3);
    EXPECT_EQ(findEvent(rig.tracer, "A.out0", "crossbar arbitration"),
              t + 3);
    EXPECT_EQ(findEvent(rig.tracer, "A.out0", "start bit generated"),
              t + 4);
    EXPECT_EQ(findEvent(rig.tracer, in, "payload byte written"),
              t + 4);
    EXPECT_EQ(findEvent(rig.tracer, "A.out0",
                        "header byte on the wire"),
              t + 5);
}

TEST(CutThrough, BusyOutputFallsBackToStoreAndForward)
{
    TwoChipRig rig;
    // First message occupies A.out0; the second must wait in the
    // buffer and still arrive intact.
    rig.hostA.injector->sendMessage(
        5, std::vector<std::uint8_t>(32, 0x01));
    rig.hostA.injector->sendMessage(
        5, std::vector<std::uint8_t>(32, 0x02));
    rig.net.run(400);
    ASSERT_EQ(rig.hostB.collector->received().size(), 2u);
    EXPECT_EQ(rig.hostB.collector->received()[0].payload[0], 0x01);
    EXPECT_EQ(rig.hostB.collector->received()[1].payload[0], 0x02);
}

TEST(MicroNetwork, BuffersAreCleanAfterTrafficDrains)
{
    TwoChipRig rig;
    for (int m = 0; m < 6; ++m) {
        rig.hostA.injector->sendMessage(
            5, std::vector<std::uint8_t>(20, 0x3C));
    }
    rig.net.run(2000);
    // Everything delivered: every buffer back to all-slots-free.
    for (PortId i = 0; i < rig.a.numPorts(); ++i) {
        EXPECT_EQ(rig.a.inputPort(i).buffer().freeSlots(),
                  kDefaultBufferSlots);
        EXPECT_EQ(rig.b.inputPort(i).buffer().freeSlots(),
                  kDefaultBufferSlots);
    }
    rig.net.debugValidate();
}

} // namespace
} // namespace micro
} // namespace damq

/**
 * @file
 * Error-path tests: the library's contract is that user mistakes
 * hit damq_fatal (clean exit 1) and internal invariant violations
 * hit damq_panic (abort).  These death tests pin the guard rails
 * that the other suites rely on never firing.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "microarch/routing_table.hh"
#include "network/network_sim.hh"
#include "network/omega_topology.hh"
#include "queueing/buffer_factory.hh"
#include "queueing/damq_buffer.hh"
#include "queueing/fifo_buffer.hh"
#include "runner/sim_flags.hh"

namespace damq {
namespace {

using ExitWithError = ::testing::ExitedWithCode;

/** Run argv through an ArgParser and an enum *Option() helper —
 *  the CLI path every front-end takes since the throwing parsers
 *  were removed. */
template <typename OptionFn>
void
parseCli(const char *flag, const char *value,
         const std::string &help, OptionFn &&option)
{
    ArgParser args("test", "error-path probe");
    args.addOption(flag, "", help);
    std::string flag_arg = std::string("--") + flag;
    std::string value_arg = value;
    char *argv[] = {const_cast<char *>("test"), flag_arg.data(),
                    value_arg.data(), nullptr};
    args.parse(3, argv);
    option(args, flag);
}

TEST(ErrorPaths, UnknownBufferNameIsFatal)
{
    EXPECT_EXIT(parseCli("buffer", "damqq", kBufferTypeChoices,
                         [](const ArgParser &a, const char *n) {
                             bufferTypeOption(a, n);
                         }),
                ExitWithError(1), "unknown buffer type 'damqq'");
}

TEST(ErrorPaths, UnknownProtocolIsFatal)
{
    EXPECT_EXIT(parseCli("protocol", "drop", kFlowControlChoices,
                         [](const ArgParser &a, const char *n) {
                             flowControlOption(a, n);
                         }),
                ExitWithError(1), "unknown flow control 'drop'");
}

TEST(ErrorPaths, UnknownRecoveryPolicyIsFatal)
{
    EXPECT_EXIT(parseCli("recovery", "retry-forever",
                         kRecoveryPolicyChoices,
                         [](const ArgParser &a, const char *n) {
                             recoveryPolicyOption(a, n);
                         }),
                ExitWithError(1),
                "unknown recovery policy 'retry-forever'");
}

TEST(ErrorPaths, IndivisiblePartitionIsFatal)
{
    EXPECT_EXIT(makeBuffer(BufferType::Samq, 4, 6), ExitWithError(1),
                "divisible");
}

TEST(ErrorPaths, PopFromEmptyQueuePanics)
{
    DamqBuffer buf(4, 4);
    EXPECT_DEATH(buf.pop(1), "pop");
}

TEST(ErrorPaths, FifoPopForWrongOutputPanics)
{
    FifoBuffer buf(4, 4);
    Packet p;
    p.id = 1;
    p.outPort = 2;
    p.lengthSlots = 1;
    buf.push(p);
    EXPECT_DEATH(buf.pop(1), "head-of-line is elsewhere");
}

TEST(ErrorPaths, OverfillPanics)
{
    DamqBuffer buf(2, 1);
    Packet p;
    p.id = 1;
    p.outPort = 0;
    p.lengthSlots = 1;
    buf.push(p);
    EXPECT_DEATH(buf.push(p), "full");
}

TEST(ErrorPaths, MismatchedReservationPanics)
{
    DamqBuffer buf(2, 4);
    Packet p;
    p.id = 1;
    p.outPort = 0;
    p.lengthSlots = 1;
    EXPECT_DEATH(buf.pushReserved(p), "without a matching reserve");
}

TEST(ErrorPaths, NonPowerNetworkIsRejected)
{
    EXPECT_DEATH(OmegaTopology(60, 4), "not an exact power");
}

TEST(ErrorPaths, ExcessiveBurstinessIsFatal)
{
    NetworkConfig cfg;
    cfg.offeredLoad = 0.6;
    cfg.burstiness = 2.0; // peak 1.2 > 1
    EXPECT_EXIT(NetworkSimulator sim(cfg), ExitWithError(1),
                "exceeds 1 packet/source/cycle");
}

TEST(ErrorPaths, UnprogrammedCircuitPanics)
{
    micro::RoutingTable table;
    EXPECT_DEATH(table.route(9), "unprogrammed circuit");
}

TEST(ErrorPaths, ReprogrammingMidMessagePanics)
{
    micro::RoutingTable table;
    table.program(3, 1, 3);
    table.beginMessage(3, 100);
    EXPECT_DEATH(table.program(3, 2, 3), "mid-message");
}

} // namespace
} // namespace damq

/**
 * @file
 * Tests for the 2D-mesh simulator: XY routing, neighbor wiring,
 * unloaded latency (Manhattan distance + 1), conservation,
 * deadlock freedom under saturation, transpose traffic, and the
 * DAMQ advantage carrying over from the Omega results.
 */

#include <gtest/gtest.h>

#include "network/mesh_sim.hh"

namespace damq {
namespace {

MeshConfig
baseConfig()
{
    MeshConfig cfg;
    cfg.width = 8;
    cfg.height = 8;
    cfg.bufferType = BufferType::Damq;
    cfg.slotsPerBuffer = 5;
    cfg.protocol = FlowControl::Blocking;
    cfg.offeredLoad = 0.2;
    cfg.common.seed = 616;
    cfg.common.warmupCycles = 500;
    cfg.common.measureCycles = 4000;
    return cfg;
}

TEST(MeshSim, XyRoutingDecisions)
{
    MeshConfig cfg = baseConfig();
    MeshSimulator sim(cfg);
    // Node (1,1) = 9 in an 8-wide mesh.
    EXPECT_EQ(sim.routeFrom(9, 9), kLocal);
    EXPECT_EQ(sim.routeFrom(9, 10), kEast);  // (2,1)
    EXPECT_EQ(sim.routeFrom(9, 8), kWest);   // (0,1)
    EXPECT_EQ(sim.routeFrom(9, 17), kNorth); // (1,2)
    EXPECT_EQ(sim.routeFrom(9, 1), kSouth);  // (1,0)
    // X is corrected before Y.
    EXPECT_EQ(sim.routeFrom(9, 18), kEast); // (2,2): east first
}

TEST(MeshSim, NeighborWiringIsSymmetric)
{
    MeshConfig cfg = baseConfig();
    MeshSimulator sim(cfg);
    const auto [east, in_port] = sim.neighbor(9, kEast);
    EXPECT_EQ(east, 10u);
    EXPECT_EQ(in_port, kWest);
    const auto [back, back_port] = sim.neighbor(east, kWest);
    EXPECT_EQ(back, 9u);
    EXPECT_EQ(back_port, kEast);
    const auto [north, n_port] = sim.neighbor(9, kNorth);
    EXPECT_EQ(north, 17u);
    EXPECT_EQ(n_port, kSouth);
}

TEST(MeshSim, UnloadedLatencyIsManhattanPlusOne)
{
    MeshConfig cfg = baseConfig();
    cfg.offeredLoad = 0.005;
    cfg.traffic = "transpose"; // deterministic distances
    cfg.common.measureCycles = 20000;
    MeshSimulator sim(cfg);
    const MeshResult r = sim.run();
    ASSERT_GT(r.latencyCycles.count(), 0u);
    // Transpose on an 8x8 grid: distance |x-y|*2 in {0,2,...,14};
    // minimum non-trivial sample has latency >= 1 and every
    // delivery at distance d takes exactly d + 1 unloaded.
    // Average distance = E|x-y|*2 = 5.25 -> latency 6.25.
    EXPECT_NEAR(r.latencyCycles.mean(), 6.25, 0.15);
    EXPECT_NEAR(r.avgHops + 1.0, r.latencyCycles.mean(), 0.15);
}

class MeshConservation
    : public ::testing::TestWithParam<std::tuple<BufferType,
                                                 FlowControl>>
{
};

TEST_P(MeshConservation, NothingCreatedOrLost)
{
    MeshConfig cfg = baseConfig();
    cfg.bufferType = std::get<0>(GetParam());
    cfg.protocol = std::get<1>(GetParam());
    cfg.offeredLoad = 0.5;
    MeshSimulator sim(cfg);
    for (int i = 0; i < 2000; ++i)
        sim.step();
    sim.debugValidate();
    const NetworkCounters &c = sim.lifetime();
    EXPECT_EQ(c.generated, c.delivered + c.discarded() +
                               sim.packetsInFlight() +
                               sim.packetsAtSources());
    EXPECT_EQ(c.misrouted, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, MeshConservation,
    ::testing::Combine(::testing::Values(BufferType::Fifo,
                                         BufferType::Samq,
                                         BufferType::Safc,
                                         BufferType::Damq),
                       ::testing::Values(FlowControl::Blocking,
                                         FlowControl::Discarding)),
    [](const ::testing::TestParamInfo<
        std::tuple<BufferType, FlowControl>> &info) {
        return std::string(bufferTypeName(std::get<0>(info.param))) +
               "_" + flowControlName(std::get<1>(info.param));
    });

TEST(MeshSim, SaturationDoesNotDeadlock)
{
    // XY routing is deadlock-free: even at full offered load the
    // mesh keeps delivering.
    MeshConfig cfg = baseConfig();
    cfg.offeredLoad = 1.0;
    cfg.common.warmupCycles = 2000;
    cfg.common.measureCycles = 4000;
    MeshSimulator sim(cfg);
    const MeshResult r = sim.run();
    EXPECT_GT(r.window.delivered, 0u);
    EXPECT_GT(r.deliveredThroughput, 0.05);
    EXPECT_EQ(sim.lifetime().discarded(), 0u); // blocking
}

TEST(MeshSim, DamqBeatsFifoOnUniformTraffic)
{
    MeshConfig cfg = baseConfig();
    cfg.offeredLoad = 1.0;
    cfg.common.warmupCycles = 1500;
    cfg.common.measureCycles = 5000;
    cfg.bufferType = BufferType::Fifo;
    const double fifo =
        MeshSimulator(cfg).run().deliveredThroughput;
    cfg.bufferType = BufferType::Damq;
    const double damq =
        MeshSimulator(cfg).run().deliveredThroughput;
    EXPECT_GT(damq, fifo * 1.1);
}

TEST(MeshSim, TransposeTrafficDelivers)
{
    MeshConfig cfg = baseConfig();
    cfg.traffic = "transpose";
    cfg.offeredLoad = 0.15;
    MeshSimulator sim(cfg);
    const MeshResult r = sim.run();
    EXPECT_NEAR(r.deliveredThroughput, 0.15, 0.02);
    EXPECT_EQ(r.window.misrouted, 0u);
}

TEST(MeshSim, Deterministic)
{
    MeshConfig cfg = baseConfig();
    const MeshResult a = MeshSimulator(cfg).run();
    const MeshResult b = MeshSimulator(cfg).run();
    EXPECT_EQ(a.window.delivered, b.window.delivered);
    EXPECT_DOUBLE_EQ(a.latencyCycles.mean(), b.latencyCycles.mean());
}

TEST(MeshSim, RectangularMeshesWork)
{
    MeshConfig cfg = baseConfig();
    cfg.width = 4;
    cfg.height = 16;
    MeshSimulator sim(cfg);
    const MeshResult r = sim.run();
    EXPECT_GT(r.window.delivered, 0u);
    EXPECT_EQ(r.window.misrouted, 0u);
}

} // namespace
} // namespace damq

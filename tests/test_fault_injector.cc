/**
 * @file
 * Fault-injection tests: the plan is deterministic per seed, every
 * hook is draw-free when disabled (so fault-off runs stay
 * bit-identical), corrupted headers are detected by the checksum
 * rather than silently absorbed, and all three network simulators
 * survive fault-mode runs with the accounting closed.
 */

#include <gtest/gtest.h>

#include <vector>

#include "fault/fault_injector.hh"
#include "microarch/crossbar_arbiter.hh"
#include "microarch/link.hh"
#include "network/cutthrough_sim.hh"
#include "network/mesh_sim.hh"
#include "network/network_sim.hh"
#include "network/torus_sim.hh"
#include "queueing/packet.hh"

namespace damq {
namespace {

Packet
sealedPacket(PacketId id)
{
    Packet p;
    p.id = id;
    p.source = 3;
    p.dest = 5;
    p.lengthSlots = 1;
    p.seq = static_cast<std::uint32_t>(id);
    sealHeader(p);
    return p;
}

// ------------------------------------------------------- determinism

TEST(FaultInjector, SameSeedSameFaultPlan)
{
    FaultConfig cfg;
    cfg.seed = 42;
    cfg.packetDropRate = 0.1;
    cfg.arbiterStuckRate = 0.05;

    FaultInjector a(cfg);
    FaultInjector b(cfg);
    a.addComponent("sw0");
    b.addComponent("sw0");

    std::vector<bool> plan_a, plan_b;
    for (Cycle c = 1; c <= 500; ++c) {
        Packet pa = sealedPacket(c);
        Packet pb = sealedPacket(c);
        plan_a.push_back(a.dropOnLink(0, c, pa));
        plan_a.push_back(a.arbiterStuck(0, c));
        plan_b.push_back(b.dropOnLink(0, c, pb));
        plan_b.push_back(b.arbiterStuck(0, c));
    }
    EXPECT_EQ(plan_a, plan_b);
    EXPECT_GT(a.injectedCount(FaultKind::PacketDrop), 0u);
}

TEST(FaultInjector, DifferentSeedsDiverge)
{
    FaultConfig cfg;
    cfg.packetDropRate = 0.1;

    cfg.seed = 1;
    FaultInjector a(cfg);
    cfg.seed = 2;
    FaultInjector b(cfg);
    a.addComponent("sw0");
    b.addComponent("sw0");

    std::vector<bool> plan_a, plan_b;
    for (Cycle c = 1; c <= 500; ++c) {
        Packet p = sealedPacket(c);
        plan_a.push_back(a.dropOnLink(0, c, p));
        plan_b.push_back(b.dropOnLink(0, c, p));
    }
    EXPECT_NE(plan_a, plan_b);
}

TEST(FaultInjector, DisabledHooksNeverFire)
{
    FaultInjector inj(FaultConfig{}); // all rates zero
    inj.addComponent("sw0");
    EXPECT_FALSE(inj.enabled());
    for (Cycle c = 1; c <= 100; ++c) {
        Packet p = sealedPacket(c);
        EXPECT_FALSE(inj.dropOnLink(0, c, p));
        EXPECT_FALSE(inj.corruptOnLink(0, c, p));
        EXPECT_FALSE(inj.arbiterStuck(0, c));
        EXPECT_FALSE(inj.creditDelayed(0, c));
        EXPECT_FALSE(inj.rollSlotLeak(0, c));
        EXPECT_TRUE(headerIntact(p));
    }
    EXPECT_EQ(inj.injectedCount(FaultKind::PacketDrop), 0u);
}

TEST(FaultInjector, StuckEpisodesAreMemoizedPerCycle)
{
    FaultConfig cfg;
    cfg.arbiterStuckRate = 1.0;
    cfg.arbiterStuckCycles = 3;
    FaultInjector inj(cfg);
    inj.addComponent("sw0");

    // Rate 1.0: always inside an episode, and asking twice in the
    // same cycle must give the same answer without a second roll.
    for (Cycle c = 1; c <= 10; ++c) {
        EXPECT_TRUE(inj.arbiterStuck(0, c));
        EXPECT_TRUE(inj.arbiterStuck(0, c));
    }
    // Episodes are counted once per start, not once per query.
    EXPECT_LE(inj.injectedCount(FaultKind::ArbiterStuck), 10u);
    EXPECT_GE(inj.injectedCount(FaultKind::ArbiterStuck), 3u);
}

// ------------------------------------------------ checksum detection

TEST(FaultInjector, CorruptionBreaksTheHeaderSeal)
{
    FaultConfig cfg;
    cfg.headerBitFlipRate = 1.0;
    FaultInjector inj(cfg);
    inj.addComponent("link0");

    Packet p = sealedPacket(7);
    ASSERT_TRUE(headerIntact(p));
    ASSERT_TRUE(inj.corruptOnLink(0, 1, p));
    EXPECT_FALSE(headerIntact(p));
    EXPECT_EQ(inj.injectedCount(FaultKind::HeaderBitFlip), 1u);
}

TEST(FaultInjector, EventsNameComponentAndCycle)
{
    FaultConfig cfg;
    cfg.packetDropRate = 1.0;
    FaultInjector inj(cfg);
    inj.addComponent("stage2.sw7");

    Packet p = sealedPacket(9);
    ASSERT_TRUE(inj.dropOnLink(0, 123, p));

    FaultReport report;
    inj.fillReport(report);
    ASSERT_FALSE(report.events.empty());
    EXPECT_EQ(report.events[0].component, "stage2.sw7");
    EXPECT_EQ(report.events[0].cycle, 123u);
    EXPECT_EQ(report.events[0].kind, FaultKind::PacketDrop);
}

// ------------------------------------------------------ bit-identity

TEST(FaultInjector, FaultFreeRunIsBitIdenticalWithAuditingOn)
{
    NetworkConfig base;
    base.numPorts = 16;
    base.radix = 4;
    base.common.warmupCycles = 200;
    base.common.measureCycles = 1000;

    NetworkConfig audited = base;
    audited.common.auditEveryCycles = 50;
    audited.common.watchdogStallCycles = 500;

    NetworkSimulator plain(base);
    NetworkSimulator instrumented(audited);
    const NetworkResult r1 = plain.run();
    const NetworkResult r2 = instrumented.run();

    EXPECT_EQ(r1.window.delivered, r2.window.delivered);
    EXPECT_EQ(r1.window.generated, r2.window.generated);
    EXPECT_EQ(r1.window.discarded(), r2.window.discarded());
    EXPECT_DOUBLE_EQ(r1.latencyClocks.mean(),
                     r2.latencyClocks.mean());

    const FaultReport report = instrumented.faultReport();
    EXPECT_EQ(report.totalInjected(), 0u);
    EXPECT_GT(report.auditsRun, 0u);
    EXPECT_EQ(report.auditViolations, 0u);
    EXPECT_FALSE(report.watchdogFired);
}

// ----------------------------------------- fault-mode end-to-end runs

TEST(FaultInjector, OmegaFaultRunAccountsForEveryLoss)
{
    NetworkConfig cfg;
    cfg.numPorts = 16;
    cfg.radix = 4;
    cfg.offeredLoad = 0.4;
    cfg.common.warmupCycles = 200;
    cfg.common.measureCycles = 2000;
    cfg.common.faults.seed = 7;
    cfg.common.faults.packetDropRate = 0.002;
    cfg.common.faults.headerBitFlipRate = 0.002;
    cfg.common.auditEveryCycles = 100;

    NetworkSimulator sim(cfg);
    sim.run();
    const FaultReport report = sim.faultReport();

    EXPECT_GT(report.injectedOf(FaultKind::PacketDrop), 0u);
    EXPECT_GT(report.injectedOf(FaultKind::HeaderBitFlip), 0u);
    // Every corrupted header was caught by the seal check.
    EXPECT_EQ(report.corruptionsDetected,
              report.injectedOf(FaultKind::HeaderBitFlip));
    // Every fault-removed packet is in the counters.
    EXPECT_EQ(sim.lifetime().faultDropped,
              report.injectedOf(FaultKind::PacketDrop) +
                  report.corruptionsDetected);
    // The accounting identity held at every audit.
    EXPECT_GT(report.auditsRun, 0u);
    EXPECT_EQ(report.auditViolations, 0u);
    EXPECT_EQ(sim.lifetime().misrouted, 0u);
}

TEST(FaultInjector, MeshFaultRunAccountsForEveryLoss)
{
    MeshConfig cfg;
    cfg.width = 4;
    cfg.height = 4;
    cfg.offeredLoad = 0.2;
    cfg.common.warmupCycles = 200;
    cfg.common.measureCycles = 2000;
    cfg.common.faults.seed = 7;
    cfg.common.faults.packetDropRate = 0.002;
    cfg.common.faults.headerBitFlipRate = 0.002;
    cfg.common.faults.creditDelayRate = 0.01;
    cfg.common.auditEveryCycles = 100;

    MeshSimulator sim(cfg);
    sim.run();
    const FaultReport report = sim.faultReport();

    EXPECT_GT(report.totalInjected(), 0u);
    EXPECT_EQ(report.corruptionsDetected,
              report.injectedOf(FaultKind::HeaderBitFlip));
    EXPECT_EQ(sim.lifetime().faultDropped,
              report.injectedOf(FaultKind::PacketDrop) +
                  report.corruptionsDetected);
    EXPECT_EQ(report.auditViolations, 0u);
    EXPECT_EQ(sim.lifetime().misrouted, 0u);
}

TEST(FaultInjector, CutThroughFaultRunAccountsForEveryLoss)
{
    CutThroughConfig cfg;
    cfg.numPorts = 16;
    cfg.radix = 4;
    cfg.offeredLoad = 0.3;
    cfg.common.warmupCycles = 500;
    cfg.common.measureCycles = 5000;
    cfg.common.faults.seed = 7;
    cfg.common.faults.packetDropRate = 0.002;
    cfg.common.faults.headerBitFlipRate = 0.002;
    cfg.common.auditEveryCycles = 200;

    CutThroughSimulator sim(cfg);
    sim.run();
    const FaultReport report = sim.faultReport();

    EXPECT_GT(report.totalInjected(), 0u);
    EXPECT_EQ(report.corruptionsDetected,
              report.injectedOf(FaultKind::HeaderBitFlip));
    EXPECT_EQ(sim.lifetimeFaultDropped(),
              report.injectedOf(FaultKind::PacketDrop) +
                  report.corruptionsDetected);
    EXPECT_EQ(report.auditViolations, 0u);
}

// ------------------------------- soft faults under VC>1 addressing

// The credit-delay and slot-leak hooks predate the QueueKey
// generalization; these runs pin down that both still behave under
// multi-VC (per-(port, vc) queue) addressing on the torus.

TEST(FaultInjector, CreditDelayUnderTwoVcsStallsWithoutLosing)
{
    TorusConfig cfg; // blocking, two dateline VCs per link
    cfg.width = 4;
    cfg.height = 4;
    cfg.offeredLoad = 0.2;
    cfg.common.warmupCycles = 200;
    cfg.common.measureCycles = 3000;
    cfg.common.faults.seed = 13;
    cfg.common.faults.creditDelayRate = 0.02;
    cfg.common.faults.creditDelayCycles = 3;
    cfg.common.auditEveryCycles = 100;
    cfg.common.watchdogStallCycles = 2000;
    ASSERT_EQ(cfg.common.vcs, 2u);

    TorusSimulator sim(cfg);
    const TorusResult result = sim.run();
    const FaultReport report = sim.faultReport();

    ASSERT_GT(report.injectedOf(FaultKind::CreditDelay), 0u);
    // Credit stalls delay transfers; they never remove packets, and
    // a stall is not a deadlock.
    EXPECT_EQ(sim.lifetime().faultDropped, 0u);
    EXPECT_EQ(result.watchdogTrips, 0u);
    EXPECT_EQ(report.auditViolations, 0u);
    EXPECT_EQ(sim.lifetime().injected,
              sim.lifetime().delivered +
                  sim.lifetime().discarded() +
                  sim.packetsInFlight());
    EXPECT_EQ(sim.lifetime().misrouted, 0u);
}

TEST(FaultInjector, SlotLeakUnderTwoVcsIsCaughtByTheAudit)
{
    TorusConfig cfg;
    cfg.width = 4;
    cfg.height = 4;
    cfg.offeredLoad = 0.2;
    cfg.common.warmupCycles = 0;
    cfg.common.measureCycles = 1000;
    cfg.common.faults.seed = 13;
    cfg.common.faults.slotLeakRate = 0.01;
    cfg.common.auditEveryCycles = 50;
    ASSERT_EQ(cfg.common.vcs, 2u);

    TorusSimulator sim(cfg);
    sim.run();
    const FaultReport report = sim.faultReport();

    ASSERT_GT(report.injectedOf(FaultKind::SlotLeak), 0u);
    // Leaked slots break the capacity invariant, and the periodic
    // audit names the owning node even with per-VC queues.
    ASSERT_GT(report.auditViolations, 0u);
    ASSERT_FALSE(report.violationSamples.empty());
    const std::string &sample = report.violationSamples.front();
    EXPECT_NE(sample.find("node"), std::string::npos) << sample;
    EXPECT_NE(sample.find("leaked"), std::string::npos) << sample;
    // A leak loses capacity, never packets.
    EXPECT_EQ(sim.lifetime().faultDropped, 0u);
    EXPECT_EQ(sim.lifetime().misrouted, 0u);
}

// ------------------------------------------------- microarch hooks

TEST(MicroFaultHooks, LinkDataFaultFlipsWireBits)
{
    micro::Link link;
    link.driveData(0xA5);
    link.injectDataFault(0x01);
    EXPECT_EQ(link.current().data, 0xA4);
    EXPECT_TRUE(link.current().hasData);
    link.endCycle();
    EXPECT_FALSE(link.current().hasData);
}

TEST(MicroFaultHooks, ArbiterJamSuppressesGrantsUntilDeadline)
{
    micro::CrossbarArbiter arbiter(2);
    arbiter.jamUntil(10);
    EXPECT_TRUE(arbiter.jammed(0));
    EXPECT_TRUE(arbiter.jammed(9));
    EXPECT_FALSE(arbiter.jammed(10));
    EXPECT_FALSE(arbiter.jammed(11));
}

} // namespace
} // namespace damq

/**
 * @file
 * The admission-policy layer: equivalence of the extracted
 * StaticAdmission policy with the organizations' historical
 * admission rules (restated here as independent oracles), the
 * dynamic sharing policies (dynamic threshold, delay-driven, class
 * QoS), the VOQ organization, and the sharded bit-identity of every
 * policy through the synchronized torus engine.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "common/arg_parser.hh"
#include "network/torus_sim.hh"
#include "queueing/buffer_factory.hh"
#include "queueing/voq_buffer.hh"
#include "runner/sim_flags.hh"

namespace damq {
namespace {

Packet
makePacket(PacketId id, PortId out, VcId vc = 0,
           std::uint32_t len = 1, std::uint8_t cls = 0)
{
    Packet p;
    p.id = id;
    p.source = 0;
    p.dest = 0;
    p.outPort = out;
    p.vc = vc;
    p.lengthSlots = len;
    p.trafficClass = cls;
    return p;
}

// ------------------------------------- old-rule equivalence oracles

/**
 * The pre-refactor admission rules, restated from first principles
 * against the buffer's public accessors (all packets here are one
 * slot, so queueLength() counts slots).  Any divergence between
 * these and the policy-layer canAccept() is a behavior change.
 */
bool
oldRuleAccepts(const BufferModel &buf, QueueKey key,
               std::uint32_t len, std::uint32_t voq_private)
{
    const std::uint32_t free =
        buf.capacitySlots() - buf.usedSlots();
    switch (buf.type()) {
      case BufferType::Fifo:
      case BufferType::Damq: {
        // Shared pool minus the escape-slot debt: one free slot per
        // *empty foreign VC* keeps the dateline escape VC enterable.
        std::uint32_t owed = 0;
        for (VcId vc = 0; vc < buf.numVcs(); ++vc)
            if (vc != key.vc && buf.vcPackets(vc) == 0)
                ++owed;
        return free >= len + owed;
      }
      case BufferType::Samq:
      case BufferType::Safc: {
        // Static partition: only the target queue's share counts.
        const std::uint32_t per_queue =
            buf.capacitySlots() / buf.numQueues();
        return buf.queueLength(key) + len <= per_queue;
      }
      case BufferType::DamqR: {
        // One slot stays reserved for every *other* empty queue.
        std::uint32_t others_empty = 0;
        for (PortId out = 0; out < buf.numOutputs(); ++out)
            for (VcId vc = 0; vc < buf.numVcs(); ++vc) {
                const QueueKey q{out, vc};
                if (!(q == key) && buf.queueLength(q) == 0)
                    ++others_empty;
            }
        return free >= len + others_empty;
      }
      case BufferType::Voq: {
        // Every other queue keeps a claim on the remainder of its
        // private allocation.
        std::uint32_t deficit = 0;
        for (PortId out = 0; out < buf.numOutputs(); ++out)
            for (VcId vc = 0; vc < buf.numVcs(); ++vc) {
                const QueueKey q{out, vc};
                if (q == key)
                    continue;
                const std::uint32_t held = buf.queueLength(q);
                if (held < voq_private)
                    deficit += voq_private - held;
            }
        return free >= len + deficit;
      }
    }
    ADD_FAILURE() << "unknown buffer type";
    return false;
}

/** Deterministic xorshift32 so the op script never changes. */
std::uint32_t
nextRand(std::uint32_t &state)
{
    state ^= state << 13;
    state ^= state >> 17;
    state ^= state << 5;
    return state;
}

/**
 * Drive one buffer through a deterministic push/pop script and
 * check, before every operation, that canAccept() over *every*
 * queue and both candidate lengths agrees with the old rule.
 */
void
exerciseEquivalence(BufferType type, VcId vcs,
                    std::uint32_t voq_private = 1)
{
    SCOPED_TRACE(std::string(bufferTypeName(type)) + " vcs=" +
                 std::to_string(vcs));
    const PortId outputs = 4;
    const std::uint32_t capacity = 8 * vcs;
    SharingPolicyConfig sharing;
    sharing.voqPrivateSlots = voq_private;
    const auto buf = makeBuffer(type, QueueLayout{outputs, vcs},
                                capacity, sharing);
    std::uint32_t rng = 12345;
    PacketId next_id = 1;
    for (int step = 0; step < 400; ++step) {
        for (PortId out = 0; out < outputs; ++out)
            for (VcId vc = 0; vc < vcs; ++vc)
                for (std::uint32_t len = 1; len <= 2; ++len) {
                    const QueueKey key{out, vc};
                    EXPECT_EQ(buf->canAccept(key, len),
                              oldRuleAccepts(*buf, key, len,
                                             voq_private))
                        << "step " << step << " queue " << out
                        << ".vc" << vc << " len " << len;
                }
        const QueueKey key{
            static_cast<PortId>(nextRand(rng) % outputs),
            static_cast<VcId>(nextRand(rng) % vcs)};
        const bool want_push = nextRand(rng) % 3 != 0;
        if (want_push && buf->canAccept(key, 1)) {
            Packet p = makePacket(next_id++, key.out, key.vc);
            buf->push(p);
        } else if (buf->queueLength(key) > 0) {
            buf->pop(key);
        }
        EXPECT_TRUE(buf->checkInvariants().empty());
    }
}

TEST(AdmissionEquivalence, AllOrganizationsSingleVc)
{
    for (const BufferType type :
         {BufferType::Fifo, BufferType::Samq, BufferType::Safc,
          BufferType::Damq, BufferType::DamqR, BufferType::Voq})
        exerciseEquivalence(type, 1);
}

TEST(AdmissionEquivalence, AllOrganizationsTwoVcs)
{
    for (const BufferType type :
         {BufferType::Fifo, BufferType::Samq, BufferType::Safc,
          BufferType::Damq, BufferType::DamqR, BufferType::Voq})
        exerciseEquivalence(type, 2);
}

TEST(AdmissionEquivalence, VoqWithLargerPrivateAllocation)
{
    exerciseEquivalence(BufferType::Voq, 1, 2);
    exerciseEquivalence(BufferType::Voq, 2, 2);
}

TEST(AdmissionEquivalence, ExplicitStaticPolicyChangesNothing)
{
    // Installing the static policy by hand must be the identity.
    const auto plain = makeBuffer(BufferType::Damq, 4, 8);
    EXPECT_EQ(&plain->admissionPolicy(),
              &StaticAdmission::instance());
    EXPECT_STREQ(plain->admissionPolicy().name(), "static");
}

TEST(AdmissionEquivalence, VoqAtOnePrivateSlotMatchesDamqR)
{
    // privateSlots == 1 degenerates to exactly the DAMQR rule: a
    // queue holding any slot has no further claim.
    const auto voq = makeBuffer(BufferType::Voq,
                                QueueLayout{4, 2}, 16);
    const auto damqr = makeBuffer(BufferType::DamqR,
                                  QueueLayout{4, 2}, 16);
    std::uint32_t rng = 777;
    PacketId next_id = 1;
    for (int step = 0; step < 300; ++step) {
        const QueueKey key{static_cast<PortId>(nextRand(rng) % 4),
                           static_cast<VcId>(nextRand(rng) % 2)};
        for (std::uint32_t len = 1; len <= 3; ++len)
            EXPECT_EQ(voq->canAccept(key, len),
                      damqr->canAccept(key, len))
                << "step " << step;
        if (nextRand(rng) % 2 && voq->canAccept(key, 1)) {
            ASSERT_TRUE(damqr->canAccept(key, 1));
            Packet p = makePacket(next_id++, key.out, key.vc);
            voq->push(p);
            damqr->push(p);
        } else if (voq->queueLength(key) > 0) {
            EXPECT_EQ(voq->pop(key).id, damqr->pop(key).id);
        }
    }
}

// ------------------------------------------------ policy unit tests

AdmissionState
stateOf(std::uint32_t capacity, std::uint32_t pool_free,
        std::uint32_t queue_slots, std::uint32_t guarantee = 0)
{
    AdmissionState st;
    st.capacity = capacity;
    st.poolFree = pool_free;
    st.guaranteeSlots = guarantee;
    st.queueSlots = queue_slots;
    st.queueLength = queue_slots;
    return st;
}

TEST(SharingPolicies, NamesRoundTrip)
{
    EXPECT_EQ(trySharingPolicyFromString("static"),
              SharingPolicy::Static);
    EXPECT_EQ(trySharingPolicyFromString("DT"),
              SharingPolicy::DynamicThreshold);
    EXPECT_EQ(trySharingPolicyFromString("delay"),
              SharingPolicy::DelayDriven);
    EXPECT_EQ(trySharingPolicyFromString("qos"),
              SharingPolicy::ClassQos);
    EXPECT_FALSE(trySharingPolicyFromString("bogus").has_value());
    EXPECT_STREQ(sharingPolicyName(SharingPolicy::DelayDriven),
                 "delay");
}

TEST(SharingPolicies, DynamicThresholdCapsQueueGrowth)
{
    const DynamicThresholdAdmission dt(2.0);
    EXPECT_EQ(dt.alphaFixed(), 2048u);
    // Queue at 4 slots, 16 free: 5 <= 2 * 16 — accept.
    EXPECT_TRUE(dt.admit(stateOf(32, 16, 4), {{0, 0}, 1, 0}).accept);
    // Queue at 20 slots, 4 free: 21 > 2 * 4 — reject even though
    // the pool has room (the hog self-limits).
    EXPECT_FALSE(dt.admit(stateOf(32, 4, 20), {{0, 0}, 1, 0}).accept);
    // Infeasible states reject no matter what alpha says.
    EXPECT_FALSE(dt.admit(stateOf(32, 1, 0, 4), {{0, 0}, 1, 0})
                     .accept);
}

TEST(SharingPolicies, DynamicPoliciesOnlyTightenStatic)
{
    const StaticAdmission &st = StaticAdmission::instance();
    const DynamicThresholdAdmission dt(1024.0);
    const DelayDrivenAdmission delay(1024.0, 1);
    const ClassQosAdmission qos(1);
    for (std::uint32_t free = 0; free < 8; ++free)
        for (std::uint32_t guarantee = 0; guarantee < 4;
             ++guarantee) {
            AdmissionState s = stateOf(8, free, 2, guarantee);
            s.headWaitAge = 1u << 30; // maximum leniency for delay
            const AdmissionRequest rq{{0, 0}, 1, 0};
            if (!st.admit(s, rq).accept) {
                EXPECT_FALSE(dt.admit(s, rq).accept);
                EXPECT_FALSE(delay.admit(s, rq).accept);
                EXPECT_FALSE(qos.admit(s, rq).accept);
            }
        }
}

TEST(SharingPolicies, DelayDrivenLoosensWithHeadAge)
{
    const DelayDrivenAdmission delay(0.25, 64);
    // Queue at 4 slots, 4 free, alpha 1/4: fresh head rejects
    // (5 * 1024 > 256 * 4)...
    AdmissionState fresh = stateOf(8, 4, 4);
    EXPECT_FALSE(delay.admit(fresh, {{0, 0}, 1, 0}).accept);
    // ...but a head that has waited 16 * ageScale cycles earns the
    // full 17x share and gets in.
    AdmissionState aged = fresh;
    aged.headWaitAge = 16 * 64;
    EXPECT_TRUE(delay.admit(aged, {{0, 0}, 1, 0}).accept);
    // Age saturates: an ancient head is no stronger than 17x.
    AdmissionState ancient = fresh;
    ancient.headWaitAge = 1u << 30;
    EXPECT_EQ(delay.admit(ancient, {{0, 0}, 1, 0}).accept,
              delay.admit(aged, {{0, 0}, 1, 0}).accept);
}

TEST(SharingPolicies, ClassQosNestsCaps)
{
    const ClassQosAdmission qos(2);
    // Class 0 of 2 may hold at most half the 8-slot buffer.
    AdmissionState s = stateOf(8, 4, 0);
    s.classSlots = 3;
    EXPECT_TRUE(qos.admit(s, {{0, 0}, 1, 0}).accept);
    s.classSlots = 4;
    EXPECT_FALSE(qos.admit(s, {{0, 0}, 1, 0}).accept);
    // Class 1 (highest) may take the whole buffer.
    EXPECT_TRUE(qos.admit(s, {{0, 0}, 1, 1}).accept);
    // Out-of-range classes clamp to the top class, not crash.
    EXPECT_TRUE(qos.admit(s, {{0, 0}, 1, 7}).accept);
}

TEST(SharingPolicies, DelayDrivenReadsTheAttachedClock)
{
    // Buffer-level check that headWaitAge actually flows from the
    // attached clock through fillAdmissionState to the policy.
    SharingPolicyConfig sharing;
    sharing.kind = SharingPolicy::DelayDriven;
    sharing.dtAlpha = 1.0;
    sharing.delayAgeScale = 64;
    const auto buf =
        makeBuffer(BufferType::Damq, QueueLayout{4, 1}, 8, sharing);
    Cycle clock = 0;
    buf->attachAdmissionClock(&clock);
    for (PacketId id = 1; id <= 4; ++id) {
        Packet p = makePacket(id, 0);
        p.generatedAt = 0;
        ASSERT_TRUE(buf->canAccept(0, 1));
        buf->push(p);
    }
    // Queue 0 holds 4 of 8; alpha 1 rejects growth past the free
    // count while the head is fresh (5 occupied vs 4 free), then
    // accepts once the head has aged 16 * 64 cycles (17x share).
    EXPECT_FALSE(buf->canAccept(0, 1));
    clock = 16 * 64;
    EXPECT_TRUE(buf->canAccept(0, 1));
}

TEST(SharingPolicies, ClassCensusTracksSlots)
{
    const auto buf = makeBuffer(BufferType::Damq, 4, 8);
    buf->push(makePacket(1, 0, 0, 1, 0));
    buf->push(makePacket(2, 1, 0, 1, 1));
    buf->push(makePacket(3, 1, 0, 1, 1));
    EXPECT_EQ(buf->classSlots(0), 1u);
    EXPECT_EQ(buf->classSlots(1), 2u);
    EXPECT_TRUE(buf->checkInvariants().empty());
    buf->pop(1);
    EXPECT_EQ(buf->classSlots(1), 1u);
    buf->clear();
    EXPECT_EQ(buf->classSlots(0), 0u);
    EXPECT_EQ(buf->classSlots(1), 0u);
}

TEST(SharingPolicies, QosBufferSegregatesClasses)
{
    SharingPolicyConfig sharing;
    sharing.kind = SharingPolicy::ClassQos;
    sharing.qosClasses = 2;
    const auto buf =
        makeBuffer(BufferType::Damq, QueueLayout{4, 1}, 8, sharing);
    // Class 0 floods: capped at half the buffer.
    PacketId id = 1;
    while (buf->canAcceptClass(0, 1, 0))
        buf->push(makePacket(id++, 0, 0, 1, 0));
    EXPECT_EQ(buf->classSlots(0), 4u);
    // Class 1 still gets the other half.
    EXPECT_TRUE(buf->canAcceptClass(0, 1, 1));
    while (buf->canAcceptClass(0, 1, 1))
        buf->push(makePacket(id++, 0, 0, 1, 1));
    EXPECT_EQ(buf->usedSlots(), 8u);
    EXPECT_TRUE(buf->checkInvariants().empty());
}

// ----------------------------------------------- VOQ + factory

TEST(VoqBufferTest, FactoryAndNames)
{
    EXPECT_EQ(tryBufferTypeFromString("voq"), BufferType::Voq);
    EXPECT_STREQ(bufferTypeName(BufferType::Voq), "VOQ");
    const auto buf = makeBuffer(BufferType::Voq, 4, 8);
    EXPECT_EQ(buf->type(), BufferType::Voq);
    const auto *voq = dynamic_cast<const VoqBuffer *>(buf.get());
    ASSERT_NE(voq, nullptr);
    EXPECT_EQ(voq->privateSlotsPerQueue(), 1u);
}

TEST(VoqBufferTest, EveryQueueKeepsItsPrivateSlot)
{
    VoqBuffer buf(QueueLayout{4, 1}, 8, 2);
    // Flood queue 0: it may take its 2 private slots plus the
    // 8 - 4*2 = 0 shared ones... with 8 slots and 4 queues x 2
    // private, queue 0 stops at exactly 2.
    PacketId id = 1;
    while (buf.canAccept(0, 1))
        buf.push(makePacket(id++, 0));
    EXPECT_EQ(buf.queueLength(0), 2u);
    // Every other queue can still take its full allocation.
    for (PortId out = 1; out < 4; ++out) {
        EXPECT_TRUE(buf.canAccept(out, 1)) << "output " << out;
        buf.push(makePacket(id++, out));
        buf.push(makePacket(id++, out));
        EXPECT_FALSE(buf.canAccept(out, 1));
    }
    EXPECT_EQ(buf.usedSlots(), 8u);
    EXPECT_TRUE(buf.checkInvariants().empty());
}

TEST(VoqDeathTest, CapacityMustCoverThePrivateAllocation)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    EXPECT_EXIT((VoqBuffer{QueueLayout{4, 2}, 7, 1}),
                ::testing::ExitedWithCode(1), "private");
    EXPECT_EXIT((VoqBuffer{QueueLayout{4, 1}, 8, 0}),
                ::testing::ExitedWithCode(1), "private");
}

TEST(VoqDeathTest, PartitionedOrganizationsRejectDynamicPolicies)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    SharingPolicyConfig sharing;
    sharing.kind = SharingPolicy::DynamicThreshold;
    EXPECT_EXIT(makeBuffer(BufferType::Samq, 4, 8, sharing),
                ::testing::ExitedWithCode(1), "shared buffer pool");
    EXPECT_EXIT(makeBuffer(BufferType::Safc, 4, 8, sharing),
                ::testing::ExitedWithCode(1), "shared buffer pool");
}

// --------------------------------------- sharded engine identity

struct Observed
{
    std::uint64_t delivered = 0;
    std::uint64_t discarded = 0;
    double latencyMean = 0.0;
    double latencyP99 = 0.0;
    std::string snapshot;
};

TorusConfig
torusBase()
{
    TorusConfig cfg;
    cfg.width = 8;
    cfg.height = 8;
    cfg.offeredLoad = 0.6;
    cfg.common.seed = 99;
    cfg.common.warmupCycles = 200;
    cfg.common.measureCycles = 400;
    return cfg;
}

Observed
runTorus(TorusConfig cfg, std::uint32_t shards)
{
    cfg.common.shards = shards;
    TorusSimulator sim(cfg);
    const TorusResult result = sim.run();
    Observed obs;
    obs.delivered = result.window.delivered;
    obs.discarded = result.window.discardedAtEntry +
                    result.window.discardedInternal;
    obs.latencyMean = result.latencyCycles.mean();
    obs.latencyP99 = result.latencyP99;
    obs.snapshot = sim.snapshotText();
    return obs;
}

void
expectIdentical(const Observed &a, const Observed &b,
                const char *what)
{
    SCOPED_TRACE(what);
    EXPECT_EQ(a.delivered, b.delivered);
    EXPECT_EQ(a.discarded, b.discarded);
    EXPECT_EQ(a.latencyMean, b.latencyMean);
    EXPECT_EQ(a.latencyP99, b.latencyP99);
    EXPECT_EQ(a.snapshot, b.snapshot);
}

TEST(SharingShardIdentity, VoqTorusIsBitIdenticalAcrossShards)
{
    TorusConfig cfg = torusBase();
    cfg.bufferType = BufferType::Voq;
    const Observed one = runTorus(cfg, 1);
    const Observed two = runTorus(cfg, 2);
    const Observed eight = runTorus(cfg, 8);
    ASSERT_GT(one.delivered, 0u);
    expectIdentical(one, two, "voq torus: 1 vs 2 shards");
    expectIdentical(one, eight, "voq torus: 1 vs 8 shards");
}

TEST(SharingShardIdentity, DynamicThresholdTorusIsBitIdentical)
{
    TorusConfig cfg = torusBase();
    cfg.sharing.kind = SharingPolicy::DynamicThreshold;
    cfg.sharing.dtAlpha = 1.0;
    const Observed one = runTorus(cfg, 1);
    const Observed eight = runTorus(cfg, 8);
    ASSERT_GT(one.delivered, 0u);
    expectIdentical(one, eight, "dt torus: 1 vs 8 shards");
}

TEST(SharingShardIdentity, DelayDrivenTorusIsBitIdentical)
{
    // The delay policy reads the engine clock at admission time;
    // decisions must still be start-of-cycle pure at any shard
    // count.
    TorusConfig cfg = torusBase();
    cfg.sharing.kind = SharingPolicy::DelayDriven;
    cfg.sharing.dtAlpha = 1.0;
    cfg.sharing.delayAgeScale = 32;
    const Observed one = runTorus(cfg, 1);
    const Observed eight = runTorus(cfg, 8);
    ASSERT_GT(one.delivered, 0u);
    expectIdentical(one, eight, "delay torus: 1 vs 8 shards");
}

TEST(SharingShardIdentity, ClassQosTorusIsBitIdentical)
{
    TorusConfig cfg = torusBase();
    cfg.sharing.kind = SharingPolicy::ClassQos;
    cfg.sharing.qosClasses = 2;
    cfg.trafficClasses = 2;
    const Observed one = runTorus(cfg, 1);
    const Observed eight = runTorus(cfg, 8);
    ASSERT_GT(one.delivered, 0u);
    expectIdentical(one, eight, "qos torus: 1 vs 8 shards");
}

TEST(SharingShardIdentity, DefaultStaticConfigIsUnchanged)
{
    // A default-sharing run must equal a run with the sharing
    // struct spelled out explicitly — the refactor's identity
    // guarantee at engine level.
    TorusConfig plain = torusBase();
    TorusConfig spelled = torusBase();
    spelled.sharing.kind = SharingPolicy::Static;
    spelled.trafficClasses = 1;
    expectIdentical(runTorus(plain, 1), runTorus(spelled, 1),
                    "implicit vs explicit static");
}

// ----------------------------------------- CLI flags + aliases

void
parseArgs(ArgParser &args, std::vector<std::string> extra)
{
    std::vector<char *> argv;
    static char prog[] = "test_admission";
    argv.push_back(prog);
    for (std::string &s : extra)
        argv.push_back(s.data());
    args.parse(static_cast<int>(argv.size()), argv.data());
}

TEST(BufferPolicyFlags, DefaultsChangeNothing)
{
    ArgParser args("t", "t");
    addBufferPolicyFlags(args);
    parseArgs(args, {});
    BufferType type = BufferType::Damq;
    SharingPolicyConfig sharing;
    std::uint32_t classes = 1;
    applyBufferPolicyFlags(args, type, sharing, classes);
    EXPECT_EQ(type, BufferType::Damq);
    EXPECT_EQ(sharing.kind, SharingPolicy::Static);
    EXPECT_EQ(sharing.dtAlpha, 2.0);
    EXPECT_EQ(classes, 1u);
}

TEST(BufferPolicyFlags, EveryOptionApplies)
{
    ArgParser args("t", "t");
    addBufferPolicyFlags(args);
    parseArgs(args, {"--buffer-policy", "dt", "--dt-alpha", "0.5",
                     "--voq", "--voq-private", "2", "--classes",
                     "4", "--delay-age-scale", "16"});
    BufferType type = BufferType::Damq;
    SharingPolicyConfig sharing;
    std::uint32_t classes = 1;
    applyBufferPolicyFlags(args, type, sharing, classes);
    EXPECT_EQ(type, BufferType::Voq);
    EXPECT_EQ(sharing.kind, SharingPolicy::DynamicThreshold);
    EXPECT_EQ(sharing.dtAlpha, 0.5);
    EXPECT_EQ(sharing.voqPrivateSlots, 2u);
    EXPECT_EQ(sharing.delayAgeScale, 16u);
    EXPECT_EQ(sharing.qosClasses, 4u);
    EXPECT_EQ(classes, 4u);
}

} // namespace
} // namespace damq

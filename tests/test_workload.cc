/**
 * @file
 * The Workload / InjectionProcess API suite:
 *
 *  - shard bit-identity (1/2/8 shards) for every new injection
 *    process — onoff, mmpp, reqreply, batch — under the DESIGN §16
 *    draw-order contract, e2e tail percentiles included;
 *  - trace round-trip: a recorded geometric run replays through the
 *    trace workload byte-for-byte (no RNG draws), and the trace
 *    file itself survives write -> parse unchanged;
 *  - closed-loop conservation: after a full drain every request was
 *    answered and every reply came home;
 *  - batch semantics: drain-and-measure delivers exactly the quota;
 *  - construction-time validation (peak rates, the per-class error
 *    text, closed loop x discarding) and the CLI surface.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/arg_parser.hh"
#include "network/core/workload.hh"
#include "network/torus_sim.hh"
#include "runner/sim_flags.hh"

namespace damq {
namespace {

// ----------------------------------------------- shard identity

/** Everything a run can externally observe, for exact comparison. */
struct Observed
{
    NetworkCounters window;
    NetworkCounters lifetime;
    double deliveredThroughput;
    std::uint64_t latencyCount;
    double latencyMean;
    double latencyP50;
    double latencyP99;
    double e2eP50;
    double e2eP99;
    double e2eP999;
    std::uint64_t e2eSamples;
    core::WorkloadStats workloadStats;
    std::string snapshot;
};

void
expectIdentical(const Observed &a, const Observed &b,
                const char *what)
{
    SCOPED_TRACE(what);
    EXPECT_EQ(a.window.generated, b.window.generated);
    EXPECT_EQ(a.window.injected, b.window.injected);
    EXPECT_EQ(a.window.delivered, b.window.delivered);
    EXPECT_EQ(a.lifetime.generated, b.lifetime.generated);
    EXPECT_EQ(a.lifetime.delivered, b.lifetime.delivered);
    // Exact double equality is the point: a reordering that
    // preserved the multiset of samples would still show up in the
    // delivery-ordered Welford moments and the histogram tails.
    EXPECT_EQ(a.deliveredThroughput, b.deliveredThroughput);
    EXPECT_EQ(a.latencyCount, b.latencyCount);
    EXPECT_EQ(a.latencyMean, b.latencyMean);
    EXPECT_EQ(a.latencyP50, b.latencyP50);
    EXPECT_EQ(a.latencyP99, b.latencyP99);
    EXPECT_EQ(a.e2eP50, b.e2eP50);
    EXPECT_EQ(a.e2eP99, b.e2eP99);
    EXPECT_EQ(a.e2eP999, b.e2eP999);
    EXPECT_EQ(a.e2eSamples, b.e2eSamples);
    EXPECT_EQ(a.workloadStats.requestsSent,
              b.workloadStats.requestsSent);
    EXPECT_EQ(a.workloadStats.requestsDelivered,
              b.workloadStats.requestsDelivered);
    EXPECT_EQ(a.workloadStats.repliesSent,
              b.workloadStats.repliesSent);
    EXPECT_EQ(a.workloadStats.repliesDelivered,
              b.workloadStats.repliesDelivered);
    EXPECT_EQ(a.workloadStats.batchRemaining,
              b.workloadStats.batchRemaining);
    EXPECT_EQ(a.snapshot, b.snapshot);
}

TorusConfig
torusBase(double load)
{
    TorusConfig cfg;
    cfg.width = 8;
    cfg.height = 8;
    cfg.offeredLoad = load;
    cfg.common.seed = 99;
    cfg.common.warmupCycles = 200;
    cfg.common.measureCycles = 400;
    return cfg;
}

Observed
runTorus(TorusConfig cfg, std::uint32_t shards)
{
    cfg.common.shards = shards;
    TorusSimulator sim(cfg);
    const TorusResult result = sim.run();
    Observed obs;
    obs.window = result.window;
    obs.lifetime = sim.lifetime();
    obs.deliveredThroughput = result.deliveredThroughput;
    obs.latencyCount = result.latencyCycles.count();
    obs.latencyMean = result.latencyCycles.mean();
    obs.latencyP50 = result.latencyP50;
    obs.latencyP99 = result.latencyP99;
    obs.e2eP50 = result.e2eLatencyP50;
    obs.e2eP99 = result.e2eLatencyP99;
    obs.e2eP999 = result.e2eLatencyP999;
    obs.e2eSamples = result.e2eSamples;
    obs.workloadStats = sim.syncEngine().injection().stats();
    obs.snapshot = sim.snapshotText();
    return obs;
}

void
expectShardIdentity(const TorusConfig &cfg, const char *what)
{
    const Observed one = runTorus(cfg, 1);
    const Observed two = runTorus(cfg, 2);
    const Observed eight = runTorus(cfg, 8);
    ASSERT_GT(one.lifetime.delivered, 0u);
    {
        SCOPED_TRACE(what);
        expectIdentical(one, two, "1 vs 2 shards");
        expectIdentical(one, eight, "1 vs 8 shards");
    }
}

TEST(WorkloadShardIdentity, OnOffIsBitIdenticalAcrossShardCounts)
{
    TorusConfig cfg = torusBase(0.4);
    cfg.common.workload.kind = core::WorkloadKind::OnOff;
    cfg.common.workload.burstiness = 2.0;
    cfg.common.workload.meanBurstCycles = 8;
    expectShardIdentity(cfg, "onoff");
}

TEST(WorkloadShardIdentity, MmppIsBitIdenticalAcrossShardCounts)
{
    TorusConfig cfg = torusBase(0.3);
    cfg.common.workload.kind = core::WorkloadKind::Mmpp;
    cfg.common.workload.burstiness = 3.0;
    cfg.common.workload.meanBurstCycles = 8;
    expectShardIdentity(cfg, "mmpp");
}

TEST(WorkloadShardIdentity, ReqReplyIsBitIdenticalAcrossShardCounts)
{
    // Closed-loop state mutates in onDelivered(), which the sharded
    // engine replays on the coordinator in global move order — the
    // contract this test pins down.
    TorusConfig cfg = torusBase(0.6);
    cfg.common.workload.kind = core::WorkloadKind::ReqReply;
    cfg.common.workload.replyWindow = 4;
    expectShardIdentity(cfg, "reqreply");
}

TEST(WorkloadShardIdentity, BatchIsBitIdenticalAcrossShardCounts)
{
    // Batch runs the drain-and-measure schedule; the actual window
    // length (batchCycles) feeds measuredCycles and throughput, so
    // identity here also pins the termination cycle.
    TorusConfig cfg = torusBase(0.6);
    cfg.common.workload.kind = core::WorkloadKind::Batch;
    cfg.common.workload.batchPackets = 32;
    expectShardIdentity(cfg, "batch");
}

// ------------------------------------------------- trace replay

TEST(WorkloadTrace, RecordedRunReplaysBitIdentically)
{
    // Record every injection of a plain geometric run...
    TorusConfig cfg = torusBase(0.5);
    std::vector<core::WorkloadTraceEntry> record;
    TorusSimulator sim(cfg);
    sim.syncEngine().recordInjectionsTo(&record);
    const TorusResult original = sim.run();
    ASSERT_GT(record.size(), 0u);

    // ...write it out and parse it back unchanged...
    const std::string path =
        ::testing::TempDir() + "damq_workload_trace.txt";
    core::writeWorkloadTrace(path, record);
    const std::vector<core::WorkloadTraceEntry> parsed =
        core::parseWorkloadTrace(path, 64);
    ASSERT_EQ(parsed.size(), record.size());
    for (std::size_t i = 0; i < record.size(); ++i) {
        EXPECT_EQ(parsed[i].cycle, record[i].cycle);
        EXPECT_EQ(parsed[i].source, record[i].source);
        EXPECT_EQ(parsed[i].dest, record[i].dest);
    }

    // ...and replay it through the trace workload.  The engine's
    // PRNG feeds nothing but traffic draws, and the trace process
    // makes none, so the replayed network evolves byte-for-byte
    // like the original.
    TorusConfig replay = torusBase(0.5);
    replay.common.workload.kind = core::WorkloadKind::Trace;
    replay.common.workload.traceFile = path;
    TorusSimulator sim2(replay);
    const TorusResult replayed = sim2.run();
    EXPECT_EQ(original.window.generated, replayed.window.generated);
    EXPECT_EQ(original.window.injected, replayed.window.injected);
    EXPECT_EQ(original.window.delivered, replayed.window.delivered);
    EXPECT_EQ(original.latencyCycles.count(),
              replayed.latencyCycles.count());
    EXPECT_EQ(original.latencyCycles.mean(),
              replayed.latencyCycles.mean());
    EXPECT_EQ(original.e2eLatencyP50, replayed.e2eLatencyP50);
    EXPECT_EQ(original.e2eLatencyP99, replayed.e2eLatencyP99);
    EXPECT_EQ(original.e2eLatencyP999, replayed.e2eLatencyP999);
    EXPECT_EQ(sim.snapshotText(), sim2.snapshotText());
}

TEST(WorkloadTraceDeathTest, MalformedTracesFailWithLineNumbers)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    const std::string dir = ::testing::TempDir();

    const std::string bad_fields = dir + "damq_trace_fields.txt";
    core::writeWorkloadTrace(bad_fields, {});
    {
        std::vector<core::WorkloadTraceEntry> one = {{5, 1, 2}};
        core::writeWorkloadTrace(bad_fields, one);
    }
    EXPECT_EXIT(core::parseWorkloadTrace(bad_fields, 2),
                ::testing::ExitedWithCode(1),
                "endpoint out of range");

    const std::string bad_order = dir + "damq_trace_order.txt";
    {
        std::vector<core::WorkloadTraceEntry> entries = {{5, 1, 2},
                                                         {3, 1, 2}};
        core::writeWorkloadTrace(bad_order, entries);
    }
    EXPECT_EXIT(core::parseWorkloadTrace(bad_order, 64),
                ::testing::ExitedWithCode(1),
                "non-decreasing per source");
}

// ----------------------------------- closed-loop / batch semantics

TEST(WorkloadClosedLoop, ConservationClosesAfterDrain)
{
    TorusConfig cfg = torusBase(0.6);
    cfg.common.workload.kind = core::WorkloadKind::ReqReply;
    cfg.common.workload.replyWindow = 4;
    TorusSimulator sim(cfg);
    sim.run();
    ASSERT_TRUE(sim.drain(100000));
    const core::InjectionProcess &process =
        sim.syncEngine().injection();
    EXPECT_TRUE(process.closedLoop());
    EXPECT_EQ(process.pendingOffers(), 0u);
    const core::WorkloadStats &ws = process.stats();
    ASSERT_GT(ws.requestsSent, 0u);
    // Blocking protocol, fully drained: every request reached its
    // destination, every delivered request scheduled exactly one
    // reply, and every reply came home.
    EXPECT_EQ(ws.requestsSent, ws.requestsDelivered);
    EXPECT_EQ(ws.requestsDelivered, ws.repliesSent);
    EXPECT_EQ(ws.repliesSent, ws.repliesDelivered);
}

TEST(WorkloadBatch, DrainAndMeasureDeliversExactlyTheQuota)
{
    TorusConfig cfg = torusBase(0.6);
    cfg.common.workload.kind = core::WorkloadKind::Batch;
    cfg.common.workload.batchPackets = 32;
    TorusSimulator sim(cfg);
    const TorusResult result = sim.run();
    const core::InjectionProcess &process =
        sim.syncEngine().injection();
    EXPECT_TRUE(process.exhausted());
    EXPECT_EQ(process.stats().batchRemaining, 0u);
    // The batch schedule measures from cycle 0 until the last
    // packet drains, so the window holds the entire batch.
    EXPECT_EQ(result.window.delivered, 64u * 32u);
    EXPECT_GT(result.measuredCycles, 0u);
    EXPECT_GT(result.e2eSamples, 0u);
}

// ----------------------------------------- construction validation

TEST(WorkloadValidationDeathTest, OverloadedPeakRatesAreFatal)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    core::WorkloadConfig geometric;
    EXPECT_EXIT(core::makeInjectionProcess(geometric, 64, 1.5),
                ::testing::ExitedWithCode(1),
                "not a probability");

    core::WorkloadConfig onoff;
    onoff.kind = core::WorkloadKind::OnOff;
    onoff.burstiness = 3.0;
    EXPECT_EXIT(core::makeInjectionProcess(onoff, 64, 0.5),
                ::testing::ExitedWithCode(1),
                "exceeds 1 packet/source/cycle");
}

TEST(WorkloadValidationDeathTest, PerClassErrorTextNamesTheClasses)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    core::WorkloadConfig mmpp;
    mmpp.kind = core::WorkloadKind::Mmpp;
    mmpp.burstiness = 4.0;
    EXPECT_EXIT(core::makeInjectionProcess(mmpp, 64, 0.5, 4),
                ::testing::ExitedWithCode(1),
                "each QoS class is overcommitted individually");
}

TEST(WorkloadValidationDeathTest, UnmodulatedOnOffIsFatal)
{
    // B = 1 would mean a zero-length off state (division by zero in
    // the transition probability); the factory rejects it with a
    // pointer at the geometric process instead.
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    core::WorkloadConfig onoff;
    onoff.kind = core::WorkloadKind::OnOff;
    onoff.burstiness = 1.0;
    EXPECT_EXIT(core::makeInjectionProcess(onoff, 64, 0.3),
                ::testing::ExitedWithCode(1),
                "needs burstiness > 1");
}

TEST(WorkloadValidationDeathTest, ClosedLoopRejectsDiscarding)
{
    // A dropped request would strand its reply forever; the engine
    // rejects the combination at construction.
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    TorusConfig cfg = torusBase(0.3);
    cfg.protocol = FlowControl::Discarding;
    cfg.common.workload.kind = core::WorkloadKind::ReqReply;
    EXPECT_EXIT({ TorusSimulator sim(cfg); },
                ::testing::ExitedWithCode(1),
                "needs a lossless protocol");
}

// --------------------------------------------------- CLI surface

/** Parse @p extra through @p args as if typed on a command line. */
void
parseArgs(ArgParser &args, std::vector<std::string> extra)
{
    std::vector<char *> argv;
    static char prog[] = "test_workload";
    argv.push_back(prog);
    for (std::string &s : extra)
        argv.push_back(s.data());
    args.parse(static_cast<int>(argv.size()), argv.data());
}

TEST(WorkloadFlags, DefaultsLeaveTheWorkloadUntouched)
{
    ArgParser args("t", "t");
    addCommonSimFlags(args);
    parseArgs(args, {});
    SimCommonConfig common;
    applyCommonSimFlags(args, common, "t");
    EXPECT_EQ(common.workload.kind, core::WorkloadKind::Geometric);
    EXPECT_EQ(common.workload.burstiness, 1.0);
    EXPECT_EQ(common.workload.batchPackets, 64u);
    EXPECT_EQ(common.workload.replyWindow, 4u);
    EXPECT_TRUE(common.workload.traceFile.empty());
}

TEST(WorkloadFlags, EveryWorkloadOptionApplies)
{
    ArgParser args("t", "t");
    addCommonSimFlags(args);
    parseArgs(args, {"--workload", "mmpp", "--workload-burstiness",
                     "2.5", "--workload-burst-cycles", "16",
                     "--batch", "128", "--reply-window", "8",
                     "--trace-file", "replay.txt"});
    SimCommonConfig common;
    applyCommonSimFlags(args, common, "t");
    EXPECT_EQ(common.workload.kind, core::WorkloadKind::Mmpp);
    EXPECT_EQ(common.workload.burstiness, 2.5);
    EXPECT_EQ(common.workload.meanBurstCycles, 16u);
    EXPECT_EQ(common.workload.batchPackets, 128u);
    EXPECT_EQ(common.workload.replyWindow, 8u);
    EXPECT_EQ(common.workload.traceFile, "replay.txt");
}

TEST(WorkloadFlagsDeathTest, UnknownWorkloadNameExitsWithChoices)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    EXPECT_EXIT(
        {
            ArgParser args("t", "t");
            addCommonSimFlags(args);
            parseArgs(args, {"--workload", "fractal"});
            SimCommonConfig common;
            applyCommonSimFlags(args, common, "t");
        },
        ::testing::ExitedWithCode(1), "geometric");
}

// ------------------------------------------------- legacy alias

TEST(WorkloadLegacyAlias, BurstinessConfigSelectsOnOff)
{
    // The deprecated TorusConfig::burstiness knob and the explicit
    // onoff workload must be the same process, draw for draw.
    TorusConfig legacy = torusBase(0.4);
    legacy.burstiness = 2.0;
    legacy.meanBurstCycles = 8;

    TorusConfig modern = torusBase(0.4);
    modern.common.workload.kind = core::WorkloadKind::OnOff;
    modern.common.workload.burstiness = 2.0;
    modern.common.workload.meanBurstCycles = 8;

    const Observed a = runTorus(legacy, 1);
    const Observed b = runTorus(modern, 1);
    ASSERT_GT(a.lifetime.delivered, 0u);
    expectIdentical(a, b, "legacy burstiness vs explicit onoff");
}

} // namespace
} // namespace damq

/**
 * @file
 * Integration tests for the Omega-network simulator: packet
 * conservation, latency floors, protocol semantics, determinism,
 * and the qualitative ordering the paper reports.
 */

#include <gtest/gtest.h>

#include "network/network_sim.hh"
#include "network/saturation.hh"

namespace damq {
namespace {

NetworkConfig
baseConfig()
{
    NetworkConfig cfg;
    cfg.numPorts = 64;
    cfg.radix = 4;
    cfg.bufferType = BufferType::Damq;
    cfg.slotsPerBuffer = 4;
    cfg.protocol = FlowControl::Blocking;
    cfg.arbitration = ArbitrationPolicy::Smart;
    cfg.traffic = "uniform";
    cfg.offeredLoad = 0.3;
    cfg.common.seed = 12345;
    cfg.common.warmupCycles = 200;
    cfg.common.measureCycles = 1000;
    return cfg;
}

class ConservationTest
    : public ::testing::TestWithParam<std::tuple<BufferType,
                                                 FlowControl>>
{
};

TEST_P(ConservationTest, NoPacketIsCreatedOrLost)
{
    NetworkConfig cfg = baseConfig();
    cfg.bufferType = std::get<0>(GetParam());
    cfg.protocol = std::get<1>(GetParam());
    cfg.offeredLoad = 0.6; // stress it
    NetworkSimulator sim(cfg);
    for (int i = 0; i < 500; ++i)
        sim.step();
    sim.debugValidate();

    const NetworkCounters &c = sim.lifetime();
    // Every generated packet is delivered, discarded, buffered in a
    // switch, or still waiting at its source.
    EXPECT_EQ(c.generated, c.delivered + c.discarded() +
                               sim.packetsInFlight() +
                               sim.packetsAtSources());
    // Injected = delivered + internal discards + in flight.
    EXPECT_EQ(c.injected, c.delivered + c.discardedInternal +
                              sim.packetsInFlight());
    EXPECT_EQ(c.misrouted, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    TypesAndProtocols, ConservationTest,
    ::testing::Combine(::testing::Values(BufferType::Fifo,
                                         BufferType::Samq,
                                         BufferType::Safc,
                                         BufferType::Damq),
                       ::testing::Values(FlowControl::Blocking,
                                         FlowControl::Discarding)),
    [](const ::testing::TestParamInfo<
        std::tuple<BufferType, FlowControl>> &info) {
        return std::string(bufferTypeName(std::get<0>(info.param))) +
               "_" + flowControlName(std::get<1>(info.param));
    });

TEST(NetworkSim, BlockingNeverDiscards)
{
    NetworkConfig cfg = baseConfig();
    cfg.offeredLoad = 0.95;
    cfg.bufferType = BufferType::Fifo; // most congested
    NetworkSimulator sim(cfg);
    for (int i = 0; i < 1000; ++i)
        sim.step();
    EXPECT_EQ(sim.lifetime().discarded(), 0u);
}

TEST(NetworkSim, DiscardingNeverQueuesAtSources)
{
    NetworkConfig cfg = baseConfig();
    cfg.protocol = FlowControl::Discarding;
    cfg.offeredLoad = 0.9;
    NetworkSimulator sim(cfg);
    for (int i = 0; i < 500; ++i)
        sim.step();
    EXPECT_EQ(sim.packetsAtSources(), 0u);
    EXPECT_GT(sim.lifetime().discarded(), 0u); // 0.9 is over capacity
}

TEST(NetworkSim, MinimumLatencyIsThreeHops)
{
    NetworkConfig cfg = baseConfig();
    cfg.offeredLoad = 0.01; // nearly empty network
    cfg.common.measureCycles = 3000;
    NetworkSimulator sim(cfg);
    const NetworkResult result = sim.run();
    ASSERT_GT(result.latencyClocks.count(), 0u);
    // 3 stages x 12 clocks with almost no queueing.
    EXPECT_DOUBLE_EQ(result.latencyClocks.min(), 36.0);
    EXPECT_LT(result.latencyClocks.mean(), 40.0);
}

TEST(NetworkSim, LatencyGrowsWithLoad)
{
    NetworkConfig cfg = baseConfig();
    const double low = latencyAtLoad(cfg, 0.1);
    const double high = latencyAtLoad(cfg, 0.6);
    EXPECT_GT(high, low);
}

TEST(NetworkSim, SameSeedSameResult)
{
    NetworkConfig cfg = baseConfig();
    NetworkSimulator a(cfg);
    NetworkSimulator b(cfg);
    const NetworkResult ra = a.run();
    const NetworkResult rb = b.run();
    EXPECT_EQ(ra.window.delivered, rb.window.delivered);
    EXPECT_EQ(ra.window.generated, rb.window.generated);
    EXPECT_DOUBLE_EQ(ra.latencyClocks.mean(),
                     rb.latencyClocks.mean());
}

TEST(NetworkSim, DifferentSeedsDiffer)
{
    NetworkConfig cfg = baseConfig();
    NetworkSimulator a(cfg);
    cfg.common.seed = 999;
    NetworkSimulator b(cfg);
    EXPECT_NE(a.run().window.generated, b.run().window.generated);
}

TEST(NetworkSim, DeliveredMatchesOfferedBelowSaturation)
{
    NetworkConfig cfg = baseConfig();
    cfg.offeredLoad = 0.25;
    cfg.common.measureCycles = 4000;
    NetworkSimulator sim(cfg);
    const NetworkResult result = sim.run();
    EXPECT_NEAR(result.deliveredThroughput, 0.25, 0.02);
}

TEST(NetworkSim, DamqSaturatesWellAboveFifo)
{
    // The paper's headline: ~40 % higher saturation throughput with
    // four slots per buffer.  Use short runs; the gap is large.
    NetworkConfig cfg = baseConfig();
    cfg.common.warmupCycles = 400;
    cfg.common.measureCycles = 2500;

    cfg.bufferType = BufferType::Fifo;
    const double fifo = measureSaturation(cfg).saturationThroughput;
    cfg.bufferType = BufferType::Damq;
    const double damq = measureSaturation(cfg).saturationThroughput;

    EXPECT_GT(damq, fifo * 1.2);
}

TEST(NetworkSim, HotSpotTreeSaturationCapsThroughput)
{
    // With 5 % hot-spot traffic the asymptotic cap is
    // 1 / (64 * (0.05 + 0.95/64)) ~ 0.24 regardless of buffers.
    NetworkConfig cfg = baseConfig();
    cfg.traffic = "hotspot";
    cfg.common.warmupCycles = 1500;
    cfg.common.measureCycles = 3000;
    for (const BufferType type :
         {BufferType::Fifo, BufferType::Damq}) {
        cfg.bufferType = type;
        const double sat = measureSaturation(cfg).saturationThroughput;
        EXPECT_LT(sat, 0.30) << bufferTypeName(type);
        EXPECT_GT(sat, 0.15) << bufferTypeName(type);
    }
}

TEST(NetworkSim, PermutationTrafficDeliversEverything)
{
    NetworkConfig cfg = baseConfig();
    cfg.traffic = "bitrev";
    cfg.offeredLoad = 0.2;
    NetworkSimulator sim(cfg);
    const NetworkResult result = sim.run();
    EXPECT_GT(result.window.delivered, 0u);
    EXPECT_EQ(result.window.misrouted, 0u);
}

TEST(NetworkSim, SmallRadixNetworksWork)
{
    NetworkConfig cfg = baseConfig();
    cfg.radix = 2;
    cfg.slotsPerBuffer = 4;
    NetworkSimulator sim(cfg); // 6 stages of 2x2
    EXPECT_EQ(sim.topology().numStages(), 6u);
    const NetworkResult result = sim.run();
    EXPECT_GT(result.window.delivered, 0u);
    // 6 stages -> 72-clock floor.
    EXPECT_GE(result.latencyClocks.min(), 72.0);
}

TEST(NetworkSim, BurstySourcesKeepTheAverageRate)
{
    NetworkConfig cfg = baseConfig();
    cfg.offeredLoad = 0.25;
    cfg.burstiness = 3.0;
    cfg.meanBurstCycles = 8;
    cfg.common.measureCycles = 20000;
    NetworkSimulator sim(cfg);
    const NetworkResult r = sim.run();
    const double gen_rate =
        static_cast<double>(r.window.generated) /
        (static_cast<double>(cfg.numPorts) * cfg.common.measureCycles);
    EXPECT_NEAR(gen_rate, 0.25, 0.015);
}

TEST(NetworkSim, BurstinessRaisesLatencyAtFixedLoad)
{
    NetworkConfig cfg = baseConfig();
    cfg.offeredLoad = 0.3;
    cfg.common.measureCycles = 8000;
    const double smooth = NetworkSimulator(cfg).run()
                              .latencyClocks.mean();
    cfg.burstiness = 3.0;
    const double bursty = NetworkSimulator(cfg).run()
                              .latencyClocks.mean();
    EXPECT_GT(bursty, smooth);
}

TEST(NetworkSim, FairnessIndexNearOneUnderUniformTraffic)
{
    NetworkConfig cfg = baseConfig();
    cfg.offeredLoad = 0.3;
    cfg.common.measureCycles = 8000;
    const NetworkResult r = NetworkSimulator(cfg).run();
    EXPECT_GT(r.latencyFairness, 0.95);
    EXPECT_GE(r.worstSourceLatency, r.latencyClocks.mean());
}

TEST(NetworkSim, LittlesLawHoldsInSteadyState)
{
    // L = lambda * W: average packets buffered per switch must
    // equal (arrival rate into the network) * (time spent inside)
    // divided across the switches.  This ties together three
    // independently computed statistics, so it catches accounting
    // bugs in any of them.
    NetworkConfig cfg = baseConfig();
    cfg.offeredLoad = 0.4;
    cfg.common.warmupCycles = 1500;
    cfg.common.measureCycles = 20000;
    NetworkSimulator sim(cfg);
    const NetworkResult r = sim.run();

    const double lambda =
        r.deliveredThroughput * cfg.numPorts; // packets per cycle
    const double mean_cycles_inside =
        r.latencyClocks.mean() / kClocksPerNetworkCycle;
    const double num_switches =
        sim.topology().numStages() * sim.topology().switchesPerStage();
    const double expected_per_switch =
        lambda * mean_cycles_inside / num_switches;

    EXPECT_NEAR(r.avgSwitchOccupancy, expected_per_switch,
                expected_per_switch * 0.05);
}

TEST(NetworkSim, SweepProducesMonotoneDeliveredThroughput)
{
    NetworkConfig cfg = baseConfig();
    cfg.common.warmupCycles = 200;
    cfg.common.measureCycles = 800;
    const auto curve =
        sweepLoads(cfg, {0.1, 0.2, 0.3, 0.4});
    ASSERT_EQ(curve.size(), 4u);
    for (std::size_t i = 1; i < curve.size(); ++i) {
        EXPECT_GT(curve[i].deliveredThroughput,
                  curve[i - 1].deliveredThroughput * 0.9);
    }
}

} // namespace
} // namespace damq

/**
 * @file
 * Unit tests for the telemetry subsystem (src/obs): metric
 * registry sampling, packet tracer Chrome-trace export, queue
 * probes, the Telemetry facade, and an end-to-end check that a
 * simulator's results are unperturbed by turning telemetry on.
 */

#include <gtest/gtest.h>

#include <cctype>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <string>

#include "network/network_sim.hh"
#include "obs/metric_registry.hh"
#include "obs/packet_tracer.hh"
#include "obs/telemetry.hh"
#include "queueing/buffer_factory.hh"

namespace damq {
namespace {

using obs::MetricRegistry;
using obs::PacketTracer;
using obs::Telemetry;
using obs::TelemetryConfig;

/**
 * Minimal recursive-descent JSON well-formedness checker, enough to
 * validate the tracer and metrics documents without a JSON library.
 * Tracks how many objects appear directly inside the "traceEvents"
 * array and how often each "ph" value occurs.
 */
class MiniJsonParser
{
  public:
    explicit MiniJsonParser(std::string text) : text(std::move(text))
    {
    }

    /** Parse the whole document; false on any syntax error. */
    bool parse()
    {
        pos = 0;
        if (!parseValue())
            return false;
        skipWs();
        return pos == text.size();
    }

    int phCount(char phase) const
    {
        const auto it = phases.find(phase);
        return it == phases.end() ? 0 : it->second;
    }

    int traceEventCount() const { return traceEvents; }

  private:
    void skipWs()
    {
        while (pos < text.size() &&
               (text[pos] == ' ' || text[pos] == '\n' ||
                text[pos] == '\t' || text[pos] == '\r'))
            ++pos;
    }

    bool parseValue()
    {
        skipWs();
        if (pos >= text.size())
            return false;
        switch (text[pos]) {
          case '{':
            return parseObject();
          case '[':
            return parseArray(false);
          case '"': {
            std::string s;
            return parseString(s);
          }
          default:
            return parseLiteralOrNumber();
        }
    }

    bool parseObject()
    {
        ++pos; // '{'
        skipWs();
        if (pos < text.size() && text[pos] == '}') {
            ++pos;
            return true;
        }
        while (true) {
            skipWs();
            std::string key;
            if (!parseString(key))
                return false;
            skipWs();
            if (pos >= text.size() || text[pos] != ':')
                return false;
            ++pos;
            skipWs();
            if (key == "traceEvents" && pos < text.size() &&
                text[pos] == '[') {
                if (!parseArray(true))
                    return false;
            } else if (key == "ph") {
                std::string ph;
                if (!parseString(ph) || ph.size() != 1)
                    return false;
                ++phases[ph[0]];
            } else if (!parseValue()) {
                return false;
            }
            skipWs();
            if (pos >= text.size())
                return false;
            if (text[pos] == ',') {
                ++pos;
                continue;
            }
            if (text[pos] == '}') {
                ++pos;
                return true;
            }
            return false;
        }
    }

    bool parseArray(bool count_events)
    {
        ++pos; // '['
        skipWs();
        if (pos < text.size() && text[pos] == ']') {
            ++pos;
            return true;
        }
        while (true) {
            skipWs();
            if (count_events && pos < text.size() && text[pos] == '{')
                ++traceEvents;
            if (!parseValue())
                return false;
            skipWs();
            if (pos >= text.size())
                return false;
            if (text[pos] == ',') {
                ++pos;
                continue;
            }
            if (text[pos] == ']') {
                ++pos;
                return true;
            }
            return false;
        }
    }

    bool parseString(std::string &out)
    {
        if (pos >= text.size() || text[pos] != '"')
            return false;
        ++pos;
        out.clear();
        while (pos < text.size() && text[pos] != '"') {
            if (text[pos] == '\\') {
                ++pos;
                if (pos >= text.size())
                    return false;
            } else {
                out.push_back(text[pos]);
            }
            ++pos;
        }
        if (pos >= text.size())
            return false;
        ++pos; // closing quote
        return true;
    }

    bool parseLiteralOrNumber()
    {
        const std::size_t start = pos;
        while (pos < text.size() &&
               (std::isalnum(static_cast<unsigned char>(text[pos])) ||
                text[pos] == '-' || text[pos] == '+' ||
                text[pos] == '.'))
            ++pos;
        return pos > start;
    }

    std::string text;
    std::size_t pos = 0;
    int traceEvents = 0;
    std::map<char, int> phases;
};

TEST(MetricRegistry, FindOrCreateReturnsSameObject)
{
    MetricRegistry reg;
    obs::Counter &a = reg.counter("hits");
    a.inc(3);
    EXPECT_EQ(&reg.counter("hits"), &a);
    EXPECT_EQ(reg.counterValue("hits"), 3u);
    EXPECT_EQ(reg.counterValue("absent"), 0u);

    obs::Gauge &g = reg.gauge("level");
    g.set(2.5);
    EXPECT_EQ(&reg.gauge("level"), &g);
    EXPECT_DOUBLE_EQ(reg.gauge("level").value(), 2.5);
}

TEST(MetricRegistry, SampleDueFollowsStride)
{
    MetricRegistry off(0);
    EXPECT_FALSE(off.sampleDue(0));
    EXPECT_FALSE(off.sampleDue(100));

    MetricRegistry reg(10);
    EXPECT_TRUE(reg.sampleDue(10));
    EXPECT_TRUE(reg.sampleDue(20));
    EXPECT_FALSE(reg.sampleDue(5));
    EXPECT_FALSE(reg.sampleDue(11));
}

TEST(MetricRegistry, SeriesRowsAndColumnFreeze)
{
    MetricRegistry reg(10);
    obs::Counter &c = reg.counter("events");
    obs::Gauge &g = reg.gauge("depth");

    c.inc(4);
    g.set(1.5);
    reg.sample(10);
    c.inc(2);
    g.set(0.5);
    reg.sample(20);

    ASSERT_EQ(reg.seriesRowCount(), 2u);
    ASSERT_EQ(reg.seriesColumns().size(), 2u);
    EXPECT_EQ(reg.seriesColumns()[0], "events");
    EXPECT_EQ(reg.seriesColumns()[1], "depth");
    EXPECT_EQ(reg.seriesCycles()[0], 10u);
    EXPECT_EQ(reg.seriesCycles()[1], 20u);
    EXPECT_DOUBLE_EQ(reg.seriesRow(0)[0], 4.0);
    EXPECT_DOUBLE_EQ(reg.seriesRow(0)[1], 1.5);
    EXPECT_DOUBLE_EQ(reg.seriesRow(1)[0], 6.0);
    EXPECT_DOUBLE_EQ(reg.seriesRow(1)[1], 0.5);

    // The column set froze at the first sample: registering a new
    // column afterwards is a caught bug, not a silent ragged row.
    EXPECT_DEATH(reg.counter("late"), "registered after");
}

TEST(MetricRegistry, JsonPinsSchemaAndParses)
{
    MetricRegistry reg(5);
    reg.counter("events").inc(7);
    reg.gauge("depth").set(3.0);
    reg.histogram("occ:test", 1.0, 4).add(2.0);
    reg.sample(5);

    std::ostringstream json;
    reg.writeJson(json);
    // The schema tag is a public contract (ISSUE: smoke tests pin
    // it); bump it only with a new schema version.
    EXPECT_NE(json.str().find("\"damq-metrics-v1\""),
              std::string::npos);
    EXPECT_NE(json.str().find("\"occ:test\""), std::string::npos);

    MiniJsonParser parser(json.str());
    EXPECT_TRUE(parser.parse());

    std::ostringstream csv;
    reg.writeCsv(csv);
    EXPECT_EQ(csv.str().substr(0, csv.str().find('\n')),
              "cycle,events,depth");
}

TEST(PacketTracer, RecordsAndCapsEvents)
{
    PacketTracer tracer(3);
    tracer.instant("a", "t", 1, 0, 0);
    tracer.complete("b", "t", 2, 5, 0, 0);
    tracer.asyncBegin("c", "t", 42, 3, 0, 0);
    EXPECT_EQ(tracer.eventCount(), 3u);
    EXPECT_EQ(tracer.droppedEvents(), 0u);

    tracer.asyncEnd("c", "t", 42, 9, 0, 0);
    EXPECT_EQ(tracer.eventCount(), 3u);
    EXPECT_EQ(tracer.droppedEvents(), 1u);
}

TEST(PacketTracer, ChromeTraceRoundTrips)
{
    PacketTracer tracer;
    tracer.setProcessName(0, "stage0");
    tracer.setThreadName(0, 1, "sw0.in1");
    tracer.instant("gen", "pkt", 4, 0, 1);
    tracer.complete("p7", "queue", 5, 3, 0, 1,
                    "{\"pkt\": 7, \"out\": 2, \"wait\": 3}");
    tracer.asyncBegin("pkt", "pkt", 7, 5, 0, 1,
                      "{\"src\": 0, \"dest\": 3, \"slots\": 1}");
    tracer.asyncEnd("pkt", "pkt", 7, 9, 0, 1);

    std::ostringstream out;
    tracer.writeChromeTrace(out);

    MiniJsonParser parser(out.str());
    ASSERT_TRUE(parser.parse()) << out.str();
    // 2 metadata + 4 recorded events.
    EXPECT_EQ(parser.traceEventCount(), 6);
    EXPECT_EQ(parser.phCount('M'), 2);
    EXPECT_EQ(parser.phCount('i'), 1);
    EXPECT_EQ(parser.phCount('X'), 1);
    EXPECT_EQ(parser.phCount('b'), 1);
    EXPECT_EQ(parser.phCount('e'), 1);
}

TEST(QueueProbe, ObservesOccupancyAndWaitingTime)
{
    TelemetryConfig cfg;
    cfg.metricsEvery = 100;
    cfg.tracePackets = true;
    Telemetry telemetry(cfg);

    auto buffer = makeBuffer(BufferType::Damq, 4, 8);
    telemetry.attachProbe(*buffer, "q0", /*pid=*/1, /*tid=*/2);
    ASSERT_NE(buffer->attachedProbe(), nullptr);

    Packet pkt;
    pkt.id = 11;
    pkt.outPort = 0;
    telemetry.beginCycle(10);
    buffer->push(pkt);
    telemetry.beginCycle(17);
    buffer->pop(0);

    MetricRegistry &reg = telemetry.metrics();
    EXPECT_EQ(reg.counterValue("buf.enqueues"), 1u);
    EXPECT_EQ(reg.counterValue("buf.dequeues"), 1u);

    // Same geometry the probe used: occupancy gets one bin per slot
    // plus empty, waits are 1-cycle bins.
    Histogram &occ = reg.histogram("occ:q0", 1.0, 9);
    EXPECT_EQ(occ.count(), 2u);   // one enqueue + one dequeue sample
    EXPECT_EQ(occ.binCount(0), 1u); // empty after the pop
    EXPECT_EQ(occ.binCount(1), 1u); // one slot used after the push

    Histogram &wait = reg.histogram("wait:q0", 1.0, 1024);
    ASSERT_EQ(wait.count(), 1u);
    EXPECT_EQ(wait.binCount(7), 1u); // waited 17 - 10 = 7 cycles

    // The residency became one complete ('X') span on pid 1, tid 2.
    ASSERT_NE(telemetry.trace(), nullptr);
    EXPECT_EQ(telemetry.trace()->eventCount(), 1u);
}

TEST(Telemetry, SampleHooksRunOnStride)
{
    TelemetryConfig cfg;
    cfg.metricsEvery = 5;
    Telemetry telemetry(cfg);
    EXPECT_TRUE(cfg.enabled());
    EXPECT_EQ(telemetry.trace(), nullptr); // tracing not requested

    int hook_runs = 0;
    telemetry.metrics().gauge("depth");
    telemetry.addSampleHook([&] {
        ++hook_runs;
        telemetry.metrics().gauge("depth").set(hook_runs);
    });

    for (Cycle cycle = 1; cycle <= 10; ++cycle) {
        telemetry.beginCycle(cycle);
        telemetry.endCycle();
    }

    EXPECT_EQ(hook_runs, 2); // cycles 5 and 10
    ASSERT_EQ(telemetry.metrics().seriesRowCount(), 2u);
    EXPECT_DOUBLE_EQ(telemetry.metrics().seriesRow(1)[0], 2.0);
}

TEST(Telemetry, ConfigEnabledSemantics)
{
    EXPECT_FALSE(TelemetryConfig{}.enabled());
    TelemetryConfig metrics_only;
    metrics_only.metricsEvery = 1;
    EXPECT_TRUE(metrics_only.enabled());
    TelemetryConfig trace_only;
    trace_only.tracePackets = true;
    EXPECT_TRUE(trace_only.enabled());
}

TEST(Telemetry, WriteFilesEmitsAllThree)
{
    const std::string prefix =
        testing::TempDir() + "damq_obs_writefiles";

    TelemetryConfig cfg;
    cfg.metricsEvery = 2;
    cfg.tracePackets = true;
    cfg.outputPrefix = prefix;
    Telemetry telemetry(cfg);
    telemetry.metrics().counter("events").inc();
    telemetry.trace()->instant("gen", "pkt", 1, 0, 0);
    telemetry.beginCycle(2);
    telemetry.endCycle();

    EXPECT_EQ(telemetry.writeFiles(), 3);

    for (const char *suffix :
         {".metrics.json", ".metrics.csv", ".trace.json"}) {
        std::ifstream in(prefix + suffix);
        EXPECT_TRUE(in.good()) << suffix;
        std::stringstream body;
        body << in.rdbuf();
        EXPECT_FALSE(body.str().empty()) << suffix;
        if (std::string(suffix).find(".json") != std::string::npos) {
            MiniJsonParser parser(body.str());
            EXPECT_TRUE(parser.parse()) << suffix;
        }
        std::remove((prefix + suffix).c_str());
    }
}

TEST(Telemetry, EndToEndNetworkSimTraceRoundTrips)
{
    NetworkConfig cfg;
    cfg.numPorts = 16;
    cfg.radix = 4;
    cfg.offeredLoad = 0.4;
    cfg.common.seed = 7;
    cfg.common.warmupCycles = 50;
    cfg.common.measureCycles = 400;

    // Baseline run with telemetry off.
    NetworkSimulator plain(cfg);
    EXPECT_EQ(plain.telemetryOrNull(), nullptr);
    const NetworkResult base = plain.run();

    // Instrumented run: same config plus metrics + tracing.
    cfg.common.telemetry.metricsEvery = 50;
    cfg.common.telemetry.tracePackets = true;
    NetworkSimulator sim(cfg);
    ASSERT_NE(sim.telemetryOrNull(), nullptr);
    const NetworkResult result = sim.run();

    // Observation must not perturb the simulation.
    EXPECT_EQ(result.window.delivered, base.window.delivered);
    EXPECT_EQ(result.window.generated, base.window.generated);
    EXPECT_DOUBLE_EQ(result.deliveredThroughput,
                     base.deliveredThroughput);
    EXPECT_DOUBLE_EQ(result.latencyClocks.mean(),
                     base.latencyClocks.mean());

    Telemetry &telemetry = *sim.telemetryOrNull();
    EXPECT_GT(telemetry.metrics().seriesRowCount(), 0u);
    EXPECT_GT(telemetry.metrics().counterValue("buf.enqueues"), 0u);

    ASSERT_NE(telemetry.trace(), nullptr);
    EXPECT_GT(telemetry.trace()->eventCount(), 0u);
    EXPECT_EQ(telemetry.trace()->droppedEvents(), 0u);

    std::ostringstream out;
    telemetry.trace()->writeChromeTrace(out);
    MiniJsonParser parser(out.str());
    ASSERT_TRUE(parser.parse());
    // Every delivered packet closes the async pair its injection
    // opened; packets still in flight leave unmatched 'b's.
    EXPECT_GE(parser.phCount('b'),
              static_cast<int>(result.window.delivered));
    EXPECT_GT(parser.phCount('e'), 0);
    EXPECT_LE(parser.phCount('e'), parser.phCount('b'));
}

} // namespace
} // namespace damq

/**
 * @file
 * The byte/phase-accurate ComCoBB model in action: four chips in a
 * ring (the multicomputer setting of Section 1), virtual circuits
 * programmed across them, hosts exchanging messages — including a
 * message relayed through two intermediate chips — and a trace
 * excerpt of a virtual cut-through.
 *
 *   comcobb_chip [--trace]
 */

#include <iostream>
#include <numeric>
#include <vector>

#include "common/arg_parser.hh"
#include "microarch/micro_network.hh"

using namespace damq;
using namespace damq::micro;

int
main(int argc, char **argv)
{
    ArgParser args("comcobb_chip",
                   "Four ComCoBB chips in a ring exchanging "
                   "messages");
    args.addFlag("trace", "print the phase-level trace of the "
                          "first packet's cut-through");
    args.parse(argc, argv);

    Tracer tracer;
    MicroNetwork net(&tracer);

    // A ring of four chips: each uses port 0 to reach the next
    // chip and port 1 to reach the previous one.
    ComCobbChip &n0 = net.addChip("n0");
    ComCobbChip &n1 = net.addChip("n1");
    ComCobbChip &n2 = net.addChip("n2");
    ComCobbChip &n3 = net.addChip("n3");
    net.connect(n0, 0, n1, 1);
    net.connect(n1, 0, n2, 1);
    net.connect(n2, 0, n3, 1);
    net.connect(n3, 0, n0, 1);

    HostEndpoint host0 = net.attachHost(n0);
    HostEndpoint host1 = net.attachHost(n1);
    HostEndpoint host2 = net.attachHost(n2);

    // Circuit 10: n0.host -> n1.host (one hop).
    net.programCircuit({{&n0, kProcessorPort, 0},
                        {&n1, 1, kProcessorPort}},
                       10);
    // Circuit 20: n0.host -> n1 -> n2.host (relayed).
    net.programCircuit({{&n0, kProcessorPort, 0},
                        {&n1, 1, 0},
                        {&n2, 1, kProcessorPort}},
                       20);
    // Circuit 30: n2.host -> n1 -> n0.host (the other way).
    net.programCircuit({{&n2, kProcessorPort, 1},
                        {&n1, 0, 1},
                        {&n0, 0, kProcessorPort}},
                       30);

    if (args.getFlag("trace"))
        tracer.enable();

    // A short message, a relayed multi-packet message, and
    // counter-flowing traffic, all at once.
    std::vector<std::uint8_t> hello = {'h', 'i', '!', 0};
    std::vector<std::uint8_t> big(100);
    std::iota(big.begin(), big.end(), std::uint8_t{0});
    std::vector<std::uint8_t> reply(48, 0xCD);

    host0.injector->sendMessage(10, hello);
    host0.injector->sendMessage(20, big);
    host2.injector->sendMessage(30, reply);

    net.run(600);
    net.debugValidate();

    std::cout << "after 600 cycles (30 us at 20 MHz):\n";
    std::cout << "  n1.host received "
              << host1.collector->received().size()
              << " message(s); first payload size = "
              << host1.collector->received().at(0).payload.size()
              << " bytes\n";
    std::cout << "  n2.host received "
              << host2.collector->received().size()
              << " message(s); 100-byte relayed message intact: "
              << (host2.collector->received().at(0).payload == big
                      ? "yes"
                      : "NO")
              << "\n";
    std::cout << "  n0.host received "
              << host0.collector->received().size()
              << " message(s); 48-byte reply intact: "
              << (host0.collector->received().at(0).payload == reply
                      ? "yes"
                      : "NO")
              << "\n";

    std::cout << "\nper-port statistics of the relay chip n1:\n";
    for (PortId p = 0; p < n1.numPorts(); ++p) {
        std::cout << "  in" << p << ": "
                  << n1.inputPort(p).packetsReceived()
                  << " packets / " << n1.inputPort(p).bytesReceived()
                  << " bytes;  out" << p << ": "
                  << n1.outputPort(p).packetsSent() << " packets, "
                  << n1.outputPort(p).busyCycles()
                  << " busy cycles\n";
    }

    if (args.getFlag("trace")) {
        std::cout << "\nphase-level trace, cycles 0-8 (virtual "
                     "cut-through of the first packet):\n"
                  << tracer.render(0, 8);
    } else {
        std::cout << "\n(re-run with --trace to see the "
                     "phase-level cut-through schedule)\n";
    }
    return 0;
}

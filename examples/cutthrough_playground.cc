/**
 * @file
 * Explore virtual cut-through interactively: run the
 * clock-granularity Omega simulator in both switching modes at a
 * chosen load and compare latency distributions — the experiment
 * the paper's synchronized model (Section 4.2) deliberately
 * skipped, and the behaviour its hardware (Table 1) exists to
 * enable.
 *
 *   cutthrough_playground --buffer damq --load 0.3
 */

#include <iostream>

#include "common/arg_parser.hh"
#include "common/string_util.hh"
#include "network/cutthrough_sim.hh"
#include "runner/sim_flags.hh"
#include "stats/text_table.hh"

int
main(int argc, char **argv)
{
    using namespace damq;

    ArgParser args("cutthrough_playground",
                   "Virtual cut-through vs store-and-forward at "
                   "clock granularity");
    args.addOption("buffer", "damq", kBufferTypeChoices);
    args.addOption("load", "0.3",
                   "offered load as a fraction of link capacity");
    args.addOption("slots", "4", "slots per input buffer");
    args.addOption("wire", "8", "clocks a packet occupies a wire");
    args.addOption("route", "4", "clocks to route a packet header");
    args.addOption("seed", "1", "random seed");
    args.parse(argc, argv);

    CutThroughConfig cfg;
    cfg.bufferType = bufferTypeOption(args, "buffer");
    cfg.offeredLoad = args.getDouble("load");
    cfg.slotsPerBuffer =
        static_cast<std::uint32_t>(args.getInt("slots"));
    cfg.wireClocks = static_cast<std::uint32_t>(args.getInt("wire"));
    cfg.routeClocks =
        static_cast<std::uint32_t>(args.getInt("route"));
    cfg.common.seed = static_cast<std::uint64_t>(args.getInt("seed"));
    cfg.common.warmupCycles = 10000;
    cfg.common.measureCycles = 60000;

    std::cout << "64x64 Omega, " << bufferTypeName(cfg.bufferType)
              << " buffers, W=" << cfg.wireClocks
              << " R=" << cfg.routeClocks << ", offered "
              << formatFixed(cfg.offeredLoad, 2)
              << " of link capacity\n"
              << "(unloaded floors: cut-through = 3R+W = "
              << 3 * cfg.routeClocks + cfg.wireClocks
              << " clocks, store-and-forward = 4W = "
              << 4 * cfg.wireClocks << " clocks)\n\n";

    TextTable table;
    table.setHeader({"mode", "mean latency", "min", "max",
                     "delivered load", "hops cut through"});
    for (const SwitchingMode mode :
         {SwitchingMode::CutThrough,
          SwitchingMode::StoreAndForward}) {
        cfg.mode = mode;
        CutThroughSimulator sim(cfg);
        const CutThroughResult r = sim.run();
        table.startRow();
        table.addCell(switchingModeName(mode));
        table.addCell(formatFixed(r.latencyClocks.mean(), 1));
        table.addCell(formatFixed(r.latencyClocks.min(), 0));
        table.addCell(formatFixed(r.latencyClocks.max(), 0));
        table.addCell(formatFixed(r.deliveredLoad, 3));
        table.addCell(formatFixed(r.cutThroughFraction * 100, 1) +
                      "%");
    }
    std::cout << table.render()
              << "\nTry raising --load toward 1.0: the cut-through "
                 "advantage melts away as fewer\nheads find idle "
                 "outputs (Kermani & Kleinrock), while saturation "
                 "throughput stays\na property of the buffer "
                 "organization.\n";
    return 0;
}

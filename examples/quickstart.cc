/**
 * @file
 * Quickstart: the DAMQ buffer and a 4x4 switch in a few dozen
 * lines.
 *
 * Shows the core API: create a buffer, push routed packets, watch
 * the per-output queues (no head-of-line blocking), then drive a
 * whole 4x4 switch with an arbiter for a few cycles.
 *
 * Build and run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart
 */

#include <iostream>

#include "queueing/damq_buffer.hh"
#include "switchsim/switch_model.hh"

using namespace damq;

namespace {

Packet
makePacket(PacketId id, PortId out, std::uint32_t len = 1)
{
    Packet p;
    p.id = id;
    p.outPort = out; // normally the router sets this
    p.lengthSlots = len;
    return p;
}

} // namespace

int
main()
{
    // ----------------------------------------------------------------
    // 1. A DAMQ buffer: one shared pool, one queue per output port.
    // ----------------------------------------------------------------
    std::cout << "== DAMQ buffer ==\n";
    DamqBuffer buffer(/*num_outputs=*/4, /*capacity_slots=*/4);

    buffer.push(makePacket(1, /*out=*/2));
    buffer.push(makePacket(2, /*out=*/0));
    buffer.push(makePacket(3, /*out=*/2));

    std::cout << "pushed packets 1->out2, 2->out0, 3->out2\n";
    for (PortId out = 0; out < 4; ++out) {
        std::cout << "  queue " << out << ": length "
                  << buffer.queueLength(out);
        if (const Packet *head = buffer.peek(out))
            std::cout << ", head packet " << head->id;
        std::cout << "\n";
    }
    std::cout << "free slots: " << buffer.freeSlotCount()
              << " (all four slots came from one pool)\n";

    // Unlike a FIFO, output 0 is not blocked behind packet 1:
    std::cout << "pop(out=0) -> packet " << buffer.pop(0).id
              << "  (no head-of-line blocking)\n";
    std::cout << "pop(out=2) -> packet " << buffer.pop(2).id << "\n";

    // ----------------------------------------------------------------
    // 2. A whole 4x4 switch: buffers + crossbar + smart arbiter.
    // ----------------------------------------------------------------
    std::cout << "\n== 4x4 DAMQ switch, 3 cycles ==\n";
    SwitchModel sw(4, BufferType::Damq, /*slots=*/4,
                   ArbitrationPolicy::Smart);

    // Two packets at input 0 for different outputs, plus a
    // conflicting packet at input 1.
    sw.tryReceive(0, makePacket(10, 1));
    sw.tryReceive(0, makePacket(11, 3));
    sw.tryReceive(1, makePacket(12, 1));

    auto no_backpressure = [](PortId, QueueKey, const Packet &) {
        return true;
    };
    for (int cycle = 1; cycle <= 3; ++cycle) {
        const GrantList grants = sw.arbitrate(no_backpressure);
        std::cout << "cycle " << cycle << ":";
        for (const Packet &p : sw.popGranted(grants))
            std::cout << "  packet " << p.id << " -> output "
                      << p.outPort;
        if (grants.empty())
            std::cout << "  (idle)";
        std::cout << "\n";
    }
    std::cout << "switch stats: received " << sw.stats().received
              << ", transmitted " << sw.stats().transmitted
              << ", discarded " << sw.stats().discarded << "\n";
    return 0;
}

/**
 * @file
 * Run the paper's 64x64 Omega-network experiment from the command
 * line, with every knob exposed: buffer organization, slots,
 * protocol, arbitration, traffic pattern, load, and run length.
 *
 * Examples:
 *   omega_network --buffer damq --load 0.6
 *   omega_network --buffer fifo --flow-control discarding --load 0.75
 *   omega_network --buffer samq --traffic hotspot --load 0.3
 *   omega_network --radix 2 --slots 2 --buffer damq --load 0.4
 *   omega_network --switching wormhole --slots 8 --load 0.5
 */

#include <iostream>

#include "common/arg_parser.hh"
#include "common/string_util.hh"
#include "network/network_sim.hh"
#include "runner/sim_flags.hh"
#include "stats/text_table.hh"

int
main(int argc, char **argv)
{
    using namespace damq;

    ArgParser args("omega_network",
                   "Omega-network simulation (Tamir & Frazier, "
                   "Section 4.2)");
    args.addOption("ports", "64", "endpoints per side");
    args.addOption("radix", "4", "switch degree (ports must be a "
                                 "power of it)");
    args.addOption("buffer", "damq", kBufferTypeChoices);
    args.addOption("placement", "input", kPlacementChoices);
    args.addOption("slots", "4", "slots per input buffer");
    addSwitchingFlags(args, "packet-sync", "blocking");
    addBufferPolicyFlags(args);
    args.addOption("arbitration", "smart", kArbitrationChoices);
    args.addOption("traffic", "uniform",
                   "uniform | hotspot | bitrev | permutation");
    args.addOption("hotfraction", "0.05",
                   "hot-spot fraction (traffic=hotspot)");
    args.addOption("load", "0.5", "offered load in [0, 1]");
    args.addOption("burstiness", "1.0",
                   "peak/average burst factor (>= 1; 1 = smooth)");
    args.addOption("warmup", "2000", "warm-up network cycles");
    args.addOption("cycles", "12000", "measured network cycles");
    args.addOption("seed", "1", "random seed");
    args.addOption("fault-drop", "0",
                   "per-link packet-drop probability");
    args.addOption("fault-corrupt", "0",
                   "per-link header bit-flip probability");
    args.addOption("fault-stuck", "0",
                   "per-switch arbiter-stuck probability");
    args.addOption("fault-leak", "0",
                   "per-switch buffer slot-leak probability");
    args.addOption("fault-credit", "0",
                   "per-switch delayed-credit probability");
    args.addOption("fault-seed", "1", "fault-plan random seed");
    args.addOption("audit-every", "0",
                   "invariant-audit period in cycles (0 = off)");
    args.addOption("watchdog", "0",
                   "deadlock-watchdog stall threshold (0 = off)");
    args.addFlag("csv", "emit one CSV line instead of the report");
    args.parse(argc, argv);

    NetworkConfig cfg;
    cfg.numPorts = static_cast<std::uint32_t>(args.getInt("ports"));
    cfg.radix = static_cast<std::uint32_t>(args.getInt("radix"));
    cfg.bufferType = bufferTypeOption(args, "buffer");
    cfg.placement = placementOption(args, "placement");
    cfg.slotsPerBuffer =
        static_cast<std::uint32_t>(args.getInt("slots"));
    applySwitchingFlags(args, cfg.switching, cfg.protocol,
                        cfg.flitsPerPacket);
    applyBufferPolicyFlags(args, cfg.bufferType, cfg.sharing,
                           cfg.trafficClasses);
    cfg.arbitration = arbitrationOption(args, "arbitration");
    cfg.traffic = args.getString("traffic");
    cfg.hotSpotFraction = args.getDouble("hotfraction");
    cfg.offeredLoad = args.getDouble("load");
    cfg.burstiness = args.getDouble("burstiness");
    cfg.common.warmupCycles = static_cast<Cycle>(args.getInt("warmup"));
    cfg.common.measureCycles = static_cast<Cycle>(args.getInt("cycles"));
    cfg.common.seed = static_cast<std::uint64_t>(args.getInt("seed"));
    cfg.common.faults.packetDropRate = args.getDouble("fault-drop");
    cfg.common.faults.headerBitFlipRate = args.getDouble("fault-corrupt");
    cfg.common.faults.arbiterStuckRate = args.getDouble("fault-stuck");
    cfg.common.faults.slotLeakRate = args.getDouble("fault-leak");
    cfg.common.faults.creditDelayRate = args.getDouble("fault-credit");
    cfg.common.faults.seed =
        static_cast<std::uint64_t>(args.getInt("fault-seed"));
    cfg.common.auditEveryCycles =
        static_cast<Cycle>(args.getInt("audit-every"));
    cfg.common.watchdogStallCycles =
        static_cast<Cycle>(args.getInt("watchdog"));

    NetworkSimulator sim(cfg);
    const NetworkResult r = sim.run();

    if (args.getFlag("csv")) {
        std::cout << args.getString("buffer") << ","
                  << cfg.slotsPerBuffer << ","
                  << flowControlName(cfg.protocol) << ","
                  << cfg.traffic << "," << cfg.offeredLoad << ","
                  << r.deliveredThroughput << ","
                  << r.latencyClocks.mean() << ","
                  << r.discardFraction << "\n";
        return 0;
    }

    // Packet-sync is the historical default; only the newer modes
    // print, so existing banner lines stay byte-identical.
    const std::string switching_note =
        cfg.switching == Switching::PacketSync
            ? ""
            : std::string(switchingName(cfg.switching)) + " x" +
                  std::to_string(cfg.flitsPerPacket) + " flits, ";
    std::cout << "Omega " << cfg.numPorts << "x" << cfg.numPorts
              << " of " << cfg.radix << "x" << cfg.radix << " "
              << bufferTypeName(cfg.bufferType) << " switches ("
              << sim.topology().numStages() << " stages, "
              << cfg.slotsPerBuffer << " slots/buffer, "
              << switching_note
              << flowControlName(cfg.protocol) << ", "
              << arbitrationPolicyName(cfg.arbitration)
              << " arbitration, " << cfg.traffic << " traffic)\n\n";

    TextTable table;
    table.setHeader({"metric", "value"});
    table.addRow({"offered load",
                  formatFixed(cfg.offeredLoad, 3)});
    table.addRow({"delivered throughput",
                  formatFixed(r.deliveredThroughput, 3)});
    table.addRow({"mean latency (clocks)",
                  formatFixed(r.latencyClocks.mean(), 2)});
    table.addRow({"min latency (clocks)",
                  formatFixed(r.latencyClocks.min(), 0)});
    table.addRow({"max latency (clocks)",
                  formatFixed(r.latencyClocks.max(), 0)});
    table.addRow({"latency stddev",
                  formatFixed(r.latencyClocks.stddev(), 2)});
    table.addRow({"packets delivered",
                  std::to_string(r.window.delivered)});
    table.addRow({"packets discarded",
                  std::to_string(r.window.discarded())});
    table.addRow({"discard fraction",
                  formatFixed(r.discardFraction, 4)});
    table.addRow({"avg source queue",
                  formatFixed(r.avgSourceQueueLen, 2)});
    table.addRow({"avg packets/switch",
                  formatFixed(r.avgSwitchOccupancy, 2)});
    table.addRow({"latency fairness (Jain)",
                  formatFixed(r.latencyFairness, 4)});
    table.addRow({"worst source latency",
                  formatFixed(r.worstSourceLatency, 1)});
    std::cout << table.render();

    if (r.avgSourceQueueLen > 1.0) {
        std::cout << "\nnote: source queues are growing — the "
                     "network is saturated at this load.\n";
    }

    if (cfg.common.faults.anyEnabled() || cfg.common.auditEveryCycles > 0 ||
        cfg.common.watchdogStallCycles > 0) {
        std::cout << "\n" << sim.faultReport().summaryText();
    }
    return 0;
}

/**
 * @file
 * Watch tree saturation happen (Pfister & Norton, Section 4.2.1 of
 * the paper).  With 5 % of traffic aimed at node 0, the switches
 * on the paths to the hot sink fill up first at the last stage,
 * then the stage before it, and so on back to the sources — a tree
 * rooted at the hot spot.  This example samples per-stage buffer
 * occupancy (split into switches on / off the hot tree) as the
 * simulation runs, then shows that DAMQ and FIFO both cap at the
 * same ~0.24 throughput.
 *
 *   hotspot_tree_saturation [--buffer damq] [--load 0.3]
 *       [--buffer-policy static|dt|delay|qos] [--voq]
 */

#include <iostream>
#include <vector>

#include "common/arg_parser.hh"
#include "common/string_util.hh"
#include "network/network_sim.hh"
#include "runner/sim_flags.hh"
#include "stats/text_table.hh"

using namespace damq;

namespace {

/** Mean buffered packets per switch at one stage, hot tree only. */
double
stageOccupancy(NetworkSimulator &sim, std::uint32_t stage, bool hot)
{
    // The tree of switches leading to sink 0: at the last stage the
    // single switch 0; one stage earlier every switch that feeds
    // it, etc.  With the omega shuffle, switch s of stage k feeds
    // switch (s*radix % perStage ... ) — rather than recompute the
    // wiring here, classify by whether the switch can reach switch
    // 0 of the next stage, walking backwards from the sink.
    const auto &topo = sim.topology();
    const std::uint32_t per_stage = topo.switchesPerStage();

    // reachable[k] = set of switch indices at stage k on the tree.
    std::vector<std::vector<bool>> on_tree(
        topo.numStages(), std::vector<bool>(per_stage, false));
    on_tree[topo.numStages() - 1][0] = true; // sink 0's switch
    for (std::uint32_t k = topo.numStages() - 1; k > 0; --k) {
        for (std::uint32_t s = 0; s < per_stage; ++s) {
            for (PortId p = 0; p < topo.radix(); ++p) {
                const StageCoord next =
                    topo.nextStageInput(k - 1, s, p);
                if (on_tree[k][next.switchIndex])
                    on_tree[k - 1][s] = true;
            }
        }
    }

    double total = 0.0;
    int count = 0;
    for (std::uint32_t s = 0; s < per_stage; ++s) {
        if (on_tree[stage][s] != hot)
            continue;
        total += sim.switchAt(stage, s).totalPackets();
        ++count;
    }
    return count == 0 ? 0.0 : total / count;
}

} // namespace

int
main(int argc, char **argv)
{
    ArgParser args("hotspot_tree_saturation",
                   "Demonstrate hot-spot tree saturation");
    args.addOption("buffer", "damq", kBufferTypeChoices);
    args.addOption("load", "0.30", "offered load (above the 0.24 "
                                   "hot-spot cap to force "
                                   "saturation)");
    addBufferPolicyFlags(args);
    args.parse(argc, argv);

    NetworkConfig cfg;
    cfg.bufferType = bufferTypeOption(args, "buffer");
    applyBufferPolicyFlags(args, cfg.bufferType, cfg.sharing,
                           cfg.trafficClasses);
    cfg.traffic = "hotspot";
    cfg.offeredLoad = args.getDouble("load");
    cfg.common.seed = 11;

    std::cout << "Tree saturation with "
              << bufferTypeName(cfg.bufferType) << " buffers ("
              << sharingPolicyName(cfg.sharing.kind)
              << " admission) at "
              << formatFixed(cfg.offeredLoad, 2)
              << " offered load, 5% of packets to node 0\n\n";

    NetworkSimulator sim(cfg);
    TextTable table;
    table.setHeader({"cycle", "stage2 hot", "stage2 cold",
                     "stage1 hot", "stage1 cold", "stage0 hot",
                     "stage0 cold"});
    for (int chunk = 0; chunk <= 10; ++chunk) {
        table.startRow();
        table.addCell(std::to_string(sim.now()));
        for (int stage = 2; stage >= 0; --stage) {
            table.addCell(formatFixed(
                stageOccupancy(sim, stage, true), 1));
            table.addCell(formatFixed(
                stageOccupancy(sim, stage, false), 1));
        }
        for (int c = 0; c < 300; ++c)
            sim.step();
    }
    std::cout << table.render()
              << "\nReading the table: the hot columns fill to "
                 "capacity stage by stage, back to\nfront (the "
                 "saturation tree growing from the hot sink toward "
                 "the sources), while\ncold switches stay nearly "
                 "empty.\n\n";

    // The punchline: buffer organization cannot fix tree
    // saturation.
    std::cout << "Delivered throughput at full offered load:\n";
    for (const BufferType type :
         {BufferType::Fifo, BufferType::Damq}) {
        NetworkConfig sat_cfg = cfg;
        sat_cfg.bufferType = type;
        sat_cfg.offeredLoad = 1.0;
        sat_cfg.common.warmupCycles = 4000;
        sat_cfg.common.measureCycles = 10000;
        NetworkSimulator sat(sat_cfg);
        std::cout << "  " << bufferTypeName(type) << ": "
                  << formatFixed(sat.run().deliveredThroughput, 3)
                  << "  (analytic hot-spot cap: 0.241)\n";
    }
    return 0;
}

/**
 * @file
 * Side-by-side buffer behaviour on one scripted arrival pattern —
 * a compact illustration of Section 2's comparison (Figure 1).
 *
 * The script: four packets arrive at ONE input port, three of them
 * for output 2 and one for output 0, and then output 2 goes busy.
 * Watch what each organization can still do:
 *
 *  - FIFO: the head packet (for busy output 2) blocks everything;
 *  - SAMQ/SAFC: the packet for output 0 flows, but the partition
 *    for output 2 overflows and a packet is rejected;
 *  - DAMQ: all packets accepted, and output 0 is served while the
 *    output-2 queue waits.
 */

#include <iostream>
#include <memory>
#include <vector>

#include "common/string_util.hh"
#include "queueing/buffer_factory.hh"
#include "stats/text_table.hh"

using namespace damq;

namespace {

Packet
makePacket(PacketId id, PortId out)
{
    Packet p;
    p.id = id;
    p.outPort = out;
    p.lengthSlots = 1;
    return p;
}

} // namespace

int
main()
{
    std::cout
        << "One input buffer, 4 slots, 4 outputs.  Arrivals: "
           "packets 1,2,3 for output 2,\npacket 4 for output 0.  "
           "Output 2 is busy; output 0 is idle.\n\n";

    TextTable table;
    table.setHeader({"Buffer", "accepted", "rejected",
                     "can serve output 0?", "note"});

    for (const BufferType type :
         {BufferType::Fifo, BufferType::Samq, BufferType::Safc,
          BufferType::Damq, BufferType::DamqR, BufferType::Voq}) {
        auto buf = makeBuffer(type, 4, 4);

        std::vector<PacketId> accepted;
        std::vector<PacketId> rejected;
        for (const Packet &p :
             {makePacket(1, 2), makePacket(2, 2), makePacket(3, 2),
              makePacket(4, 0)}) {
            if (buf->canAccept(p.outPort, 1)) {
                buf->push(p);
                accepted.push_back(p.id);
            } else {
                rejected.push_back(p.id);
            }
        }

        const Packet *head0 = buf->peek(0);
        std::string note;
        switch (type) {
          case BufferType::Fifo:
            note = "packet 4 is stuck behind the head of line";
            break;
          case BufferType::Samq:
          case BufferType::Safc:
            note = "output-2 partition (1 slot) overflowed";
            break;
          case BufferType::Damq:
            note = "shared pool + per-output queues: no loss, no "
                   "blocking";
            break;
          case BufferType::DamqR:
            note = "burst trimmed: slots stay reserved for the "
                   "quieter outputs";
            break;
          case BufferType::Voq:
            note = "private slot per output queue; at 1 slot this "
                   "matches DAMQR";
            break;
        }

        auto joined = [](const std::vector<PacketId> &ids) {
            std::string out;
            for (const PacketId id : ids) {
                if (!out.empty())
                    out += ",";
                out += std::to_string(id);
            }
            return out.empty() ? std::string("-") : out;
        };

        table.startRow();
        table.addCell(bufferTypeName(type));
        table.addCell(joined(accepted));
        table.addCell(joined(rejected));
        table.addCell(head0 ? "yes (packet " +
                                  std::to_string(head0->id) + ")"
                            : "no");
        table.addCell(note);
    }
    std::cout << table.render()
              << "\nThis is the whole paper in one table: DAMQ "
                 "combines the FIFO's storage\nflexibility with the "
                 "SAFC's freedom from head-of-line blocking, using "
                 "one\nread port and one shared pool.\n";
    return 0;
}

# Telemetry-off bit-identity check: run a bench binary and compare
# its stdout byte-for-byte against a saved baseline.  The PR-2
# baseline tables are a contract — the telemetry hooks must compile
# down to branch-on-null, so a bare bench invocation (no --trace, no
# --metrics-every) prints exactly the bytes it printed before the
# observability layer existed.
#
# Usage (as a ctest command):
#   cmake -DBENCH=<binary> -DBASELINE=<file> -DWORKDIR=<dir>
#         [-DTHREADS=<n>] -P compare_stdout.cmake
#
# THREADS exercises the parallel sweep runner; results are identical
# at any thread count, so the comparison doubles as a determinism
# check.  On mismatch the actual output is saved next to the run for
# `diff`-ing.

foreach(var BENCH BASELINE WORKDIR)
    if(NOT DEFINED ${var})
        message(FATAL_ERROR "compare_stdout.cmake: ${var} not set")
    endif()
endforeach()
if(NOT DEFINED THREADS)
    set(THREADS 1)
endif()

file(MAKE_DIRECTORY "${WORKDIR}")
execute_process(COMMAND "${BENCH}" --threads ${THREADS}
                WORKING_DIRECTORY "${WORKDIR}"
                OUTPUT_VARIABLE actual
                RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "${BENCH} exited with status ${rc}")
endif()

file(READ "${BASELINE}" expected)
if(NOT actual STREQUAL expected)
    file(WRITE "${WORKDIR}/actual_stdout.txt" "${actual}")
    message(FATAL_ERROR
        "stdout differs from baseline ${BASELINE}\n"
        "actual output saved to ${WORKDIR}/actual_stdout.txt")
endif()

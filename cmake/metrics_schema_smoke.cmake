# Metrics-output schema smoke test: run a bench with
# `--metrics-every` on a short schedule and assert the emitted
# metrics files carry the stable "damq-metrics-v1" schema — the
# contract downstream plotting scripts parse.
#
# Usage (as a ctest command):
#   cmake -DBENCH=<binary> -DWORKDIR=<dir> -P metrics_schema_smoke.cmake

foreach(var BENCH WORKDIR)
    if(NOT DEFINED ${var})
        message(FATAL_ERROR "metrics_schema_smoke.cmake: ${var} not set")
    endif()
endforeach()

file(REMOVE_RECURSE "${WORKDIR}")
file(MAKE_DIRECTORY "${WORKDIR}")
execute_process(COMMAND "${BENCH}" --threads 4
                        --warmup 200 --measure 2000
                        --metrics-every 100 --telemetry-out smoke
                WORKING_DIRECTORY "${WORKDIR}"
                RESULT_VARIABLE rc
                OUTPUT_QUIET)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "${BENCH} exited with status ${rc}")
endif()

# One metrics file per sweep task, prefix "smoke.<task label>".
file(GLOB json_files "${WORKDIR}/smoke.*.metrics.json")
file(GLOB csv_files "${WORKDIR}/smoke.*.metrics.csv")
if(NOT json_files)
    message(FATAL_ERROR "no smoke.*.metrics.json written in ${WORKDIR}")
endif()
if(NOT csv_files)
    message(FATAL_ERROR "no smoke.*.metrics.csv written in ${WORKDIR}")
endif()

list(GET json_files 0 json_file)
file(READ "${json_file}" body)
foreach(needle "\"schema\": \"damq-metrics-v1\"" "\"sampleStride\""
        "\"counters\"" "\"gauges\"" "\"histograms\"" "\"series\"")
    string(FIND "${body}" "${needle}" at)
    if(at EQUAL -1)
        message(FATAL_ERROR
            "${json_file} is missing '${needle}' — the "
            "damq-metrics-v1 schema changed without a version bump")
    endif()
endforeach()

list(GET csv_files 0 csv_file)
file(READ "${csv_file}" csv)
if(NOT csv MATCHES "^cycle,")
    message(FATAL_ERROR
        "${csv_file} does not start with the 'cycle,...' header")
endif()
